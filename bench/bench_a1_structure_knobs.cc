// A1 — Ablation of structural knobs called out in DESIGN.md: SSTable block
// size, restart interval, and WAL durability mode. Not tied to a single
// tutorial claim; quantifies the second-order design decisions every LSM
// engine exposes (tutorial §2.3: "hundreds of tuning knobs").

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumInserts = 60000;
constexpr uint64_t kNumReads = 6000;

struct Row {
  double sst_bytes_per_entry;   // Space: prefix compression effectiveness.
  double read_bytes_per_lookup; // Read granularity cost.
  double load_kops;
};

Row RunBlockKnobs(size_t block_size, int restart_interval) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.block_size = block_size;
  options.block_restart_interval = restart_interval;
  options.block_cache_capacity = 0;  // Expose raw read granularity.
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    return {};
  }
  WorkloadGenerator gen(WorkloadSpec::WriteOnly(kNumInserts));
  uint64_t t0 = SystemClock()->NowMicros();
  BenchCheck(Load(&stack, &gen, kNumInserts), "Load");
  BenchCheck(stack.db->CompactRange(), "CompactRange");
  uint64_t micros = SystemClock()->NowMicros() - t0;

  Row row;
  row.load_kops = static_cast<double>(kNumInserts) * 1000.0 /
                  static_cast<double>(micros);
  row.sst_bytes_per_entry = static_cast<double>(stack.db->TotalSstBytes()) /
                            static_cast<double>(kNumInserts);

  stack.env->ResetStats();
  Random rnd(3);
  ReadOptions ro;
  std::string value;
  for (uint64_t i = 0; i < kNumReads; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)),
                  &value);
  }
  row.read_bytes_per_lookup =
      static_cast<double>(stack.env->GetStats().bytes_read) /
      static_cast<double>(kNumReads);
  return row;
}

struct WalRow {
  double load_kops;
  uint64_t syncs;
};

WalRow RunWalMode(bool enable_wal, bool sync_every_write) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.enable_wal = enable_wal;
  options.sync_wal = sync_every_write;
  Status s = stack.Open(options);
  if (!s.ok()) {
    return {};
  }
  WorkloadGenerator gen(WorkloadSpec::WriteOnly(kNumInserts));
  uint64_t t0 = SystemClock()->NowMicros();
  BenchCheck(Load(&stack, &gen, kNumInserts), "Load");
  uint64_t micros = SystemClock()->NowMicros() - t0;
  WalRow row;
  row.load_kops = static_cast<double>(kNumInserts) * 1000.0 /
                  static_cast<double>(micros);
  row.syncs = stack.env->GetStats().syncs;
  return row;
}

void Run() {
  Banner("A1: structural knob ablation (block size, restarts, WAL mode)",
         "second-order knobs trade space vs read granularity vs durability "
         "cost (tutorial §2.3: the vast knob space)");

  std::printf("block size x restart interval:\n");
  PrintHeader({"block", "restarts", "sst bytes/entry", "read bytes/lookup",
               "load kops/s"});
  for (size_t block : {1024u, 4096u, 16384u}) {
    for (int restarts : {1, 16}) {
      Row row = RunBlockKnobs(block, restarts);
      PrintRow({FmtInt(block), FmtInt(static_cast<uint64_t>(restarts)),
                Fmt(row.sst_bytes_per_entry, 1),
                Fmt(row.read_bytes_per_lookup, 0), Fmt(row.load_kops, 1)});
    }
  }

  std::printf("\nWAL durability modes:\n");
  PrintHeader({"mode", "load kops/s", "fsyncs"});
  {
    WalRow row = RunWalMode(false, false);
    PrintRow({"no wal (bulk load)", Fmt(row.load_kops, 1), FmtInt(row.syncs)});
  }
  {
    WalRow row = RunWalMode(true, false);
    PrintRow({"wal, sync on flush", Fmt(row.load_kops, 1),
              FmtInt(row.syncs)});
  }
  {
    WalRow row = RunWalMode(true, true);
    PrintRow({"wal, sync every write", Fmt(row.load_kops, 1),
              FmtInt(row.syncs)});
  }
  std::printf(
      "\nshape check: bigger blocks & sparser restarts shrink the table but "
      "inflate bytes read per point lookup. Per-write durability multiplies "
      "the fsync count by ~100x (the in-memory env makes each sync free; on "
      "a real disk that column is the throughput collapse that motivates "
      "group commit).\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
