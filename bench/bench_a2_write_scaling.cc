// A2 — Multi-threaded ingestion scaling with group commit (tutorial
// §2.2.3, §2.2.5).
//
// Claim: with a leader/follower group-commit write path, multi-threaded
// ingestion throughput scales beyond the single-thread rate because queued
// writers are coalesced into one WAL record + one fsync per group; under
// sync writes the measured fsyncs per write drop well below 1. An emulated
// device (LatencyEnv) makes the per-I/O and per-fsync costs real on any
// machine.

#include <thread>

#include "bench/bench_util.h"
#include "io/latency_env.h"
#include "util/histogram.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kTotalOps = 4000;
constexpr size_t kValueSize = 100;

struct Row {
  double kops;
  uint64_t writes;
  uint64_t groups;
  double avg_group;
  double max_group;
  double syncs_per_write;
};

Row RunOne(int threads, bool sync) {
  auto mem_env = std::make_unique<MemEnv>();
  // A modest emulated SSD: every WAL append and fsync costs a device op.
  DeviceModel device;
  device.per_op_latency_micros = 25;
  device.bandwidth_bytes_per_sec = 512ull << 20;
  auto lat_env =
      std::make_unique<LatencyEnv>(mem_env.get(), device, SystemClock());

  Options options = SmallTreeOptions();
  options.env = lat_env.get();
  options.write_buffer_size = 1 << 20;  // Measure the WAL, not flush churn.
  options.background_threads = 2;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/a2", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  const uint64_t per_thread = kTotalOps / static_cast<uint64_t>(threads);
  WriteOptions wo;
  wo.sync = sync;

  uint64_t t0 = SystemClock()->NowMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < per_thread; ++i) {
        std::string key = WorkloadGenerator::FormatKey(
            static_cast<uint64_t>(t) * per_thread + i);
        std::string value = value_maker.MakeValue(key, kValueSize);
        BenchCheck(db->Put(wo, key, value), "Put");
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  uint64_t total = SystemClock()->NowMicros() - t0;
  BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");

  const Statistics* stats = db->statistics();
  Row row;
  row.writes = stats->writes.load();
  row.groups = stats->write_groups.load();
  row.kops = static_cast<double>(row.writes) * 1000.0 /
             static_cast<double>(total);
  row.avg_group = row.groups == 0 ? 0.0
                                  : static_cast<double>(row.writes) /
                                        static_cast<double>(row.groups);
  row.max_group = stats->WriteGroupSizes().max();
  row.syncs_per_write = stats->WalSyncsPerWrite();
  db.reset();
  return row;
}

void Run() {
  Banner("A2: multi-threaded write scaling via group commit",
         "a leader/follower writer queue coalesces concurrent writers into "
         "one WAL record + one fsync per group, so multi-threaded ingestion "
         "scales and sync-write fsyncs amortize (tutorial §2.2.3, §2.2.5)");

  const int thread_counts[] = {1, 2, 4, 8};
  for (bool sync : {false, true}) {
    std::printf("\n-- sync=%s --\n", sync ? "on" : "off");
    PrintHeader({"threads", "kops/s", "speedup", "groups", "avg group",
                 "max group", "fsync/write"});
    double base_kops = 0.0;
    for (int threads : thread_counts) {
      Row row = RunOne(threads, sync);
      if (threads == 1) {
        base_kops = row.kops;
      }
      PrintRow({FmtInt(static_cast<uint64_t>(threads)), Fmt(row.kops),
                Fmt(base_kops > 0 ? row.kops / base_kops : 0.0, 2) + "x",
                FmtInt(row.groups), Fmt(row.avg_group, 2),
                Fmt(row.max_group, 0), Fmt(row.syncs_per_write, 3)});
    }
  }
  std::printf(
      "\nshape check: single-thread throughput is fsync-bound (fsync/write "
      "= 1 under sync); adding writer threads grows group sizes, drops "
      "fsyncs per write well below 1, and raises aggregate throughput "
      "above the 1-thread rate.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
