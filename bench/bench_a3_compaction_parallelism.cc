// A3 — Parallel background engine: compaction throughput and write stalls
// vs background parallelism (tutorial §2.2.4).
//
// Claim: a job-based scheduler that admits multiple range-disjoint
// compactions concurrently — and splits large leveled merges into
// subcompaction shards — turns background threads into compaction
// bandwidth: with the same ingest stream, 4 background threads sustain a
// multiple of the 1-thread bytes-compacted/sec and spend less wall time
// stalled, because disjoint L1->L2 / L2->L3 merges overlap instead of
// queueing behind one global compaction slot. An emulated device
// (LatencyEnv) makes per-I/O latency and bandwidth real on any machine, so
// the parallelism is actually observable as wall time.

#include "bench/bench_util.h"
#include "io/latency_env.h"
#include "util/random.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kOps = 20000;
constexpr uint64_t kKeySpace = 4000;  // Overwrites force real merge work.
constexpr size_t kValueSize = 120;

struct Row {
  double wall_secs = 0;
  double compact_mb_per_sec = 0;
  uint64_t compact_bytes = 0;
  double stall_ms = 0;
  uint64_t compactions = 0;
  uint64_t max_parallel = 0;
  uint64_t shards = 0;
};

Row RunOne(int threads) {
  auto mem_env = std::make_unique<MemEnv>();
  // A modest emulated SSD: every table write pays latency + bandwidth, so
  // serialized compactions cost serialized wall time.
  DeviceModel device;
  device.per_op_latency_micros = 80;
  device.bandwidth_bytes_per_sec = 96ull << 20;
  auto lat_env =
      std::make_unique<LatencyEnv>(mem_env.get(), device, SystemClock());

  Options options;
  options.env = lat_env.get();
  options.write_buffer_size = 32 << 10;
  options.max_bytes_for_level_base = 128 << 10;
  options.target_file_size = 32 << 10;
  options.size_ratio = 4;
  options.compaction_granularity = CompactionGranularity::kPartial;
  options.background_threads = threads;
  options.max_subcompactions = threads;
  // No WAL: ingest runs at memtable speed, so wall time is governed by how
  // fast the background engine digests the backlog (stalls + drain) — the
  // quantity under test — not by foreground WAL appends on the slow device.
  options.enable_wal = false;
  options.info_log = nullptr;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/a3", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  Random rnd(301);
  WriteOptions wo;
  uint64_t t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < kOps; ++i) {
    std::string key = WorkloadGenerator::FormatKey(rnd.Uniform(kKeySpace));
    std::string value = value_maker.MakeValue(key, kValueSize);
    s = db->Put(wo, key, value);
    if (!s.ok()) {
      std::fprintf(stderr, "put: %s\n", s.ToString().c_str());
      return {};
    }
  }
  // Include the drain: a scheduler that merely defers work would otherwise
  // look fast.
  BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  uint64_t wall = SystemClock()->NowMicros() - t0;

  const Statistics* stats = db->statistics();
  Row row;
  row.wall_secs = static_cast<double>(wall) / 1e6;
  row.compact_bytes = stats->compaction_bytes_read.load() +
                      stats->compaction_bytes_written.load();
  row.compact_mb_per_sec = static_cast<double>(row.compact_bytes) /
                           (1 << 20) / row.wall_secs;
  row.stall_ms = static_cast<double>(stats->write_stall_micros.load() +
                                     stats->write_slowdown_micros.load()) /
                 1000.0;
  row.compactions = stats->compactions.load();
  row.max_parallel = stats->max_compactions_running.load();
  row.shards = stats->subcompactions.load();
  db.reset();
  return row;
}

void Run() {
  Banner("A3: compaction parallelism via the background job engine",
         "admitting range-disjoint compactions concurrently (plus "
         "subcompaction splitting of large leveled merges) converts "
         "background threads into compaction bandwidth: higher "
         "bytes-compacted/sec and fewer write stalls at equal ingest "
         "(tutorial §2.2.4)");

  PrintHeader({"bg threads", "wall s", "compact MB/s", "speedup", "stall ms",
               "jobs", "max parallel", "shards"});
  double base_rate = 0.0;
  double rate_at_4 = 0.0;
  for (int threads : {1, 2, 4}) {
    Row row = RunOne(threads);
    if (threads == 1) {
      base_rate = row.compact_mb_per_sec;
    }
    if (threads == 4) {
      rate_at_4 = row.compact_mb_per_sec;
    }
    PrintRow({FmtInt(static_cast<uint64_t>(threads)), Fmt(row.wall_secs),
              Fmt(row.compact_mb_per_sec),
              Fmt(base_rate > 0 ? row.compact_mb_per_sec / base_rate : 0.0,
                  2) +
                  "x",
              Fmt(row.stall_ms, 1), FmtInt(row.compactions),
              FmtInt(row.max_parallel), FmtInt(row.shards)});
  }
  std::printf(
      "\nshape check: 4 background threads should overlap jobs "
      "(max parallel > 1, shards > 0) and sustain >= 1.5x the 1-thread "
      "bytes-compacted/sec; measured 4-thread speedup = %.2fx.\n",
      base_rate > 0 ? rate_at_4 / base_rate : 0.0);
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
