// A4 — Multi-threaded point-lookup scaling on the low-contention read path.
//
// Claim: with ReadView snapshots (one atomic acquire per Get instead of a
// DB-mutex critical section), per-file pinned table readers (no table-cache
// mutex on warm files), and a sharded block cache, random point lookups on a
// cached working set scale with reader threads — the read path has no shared
// mutable state left to serialize on. MultiGet amortizes the remaining
// per-lookup overheads (view acquire, per-file reader resolution, filter
// probes before any data-block read) across a batch.
//
// Run with --smoke for a seconds-scale CI sanity pass (tiny workload, same
// code paths).

#include <atomic>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

struct Scale {
  uint64_t num_keys;
  uint64_t gets_per_thread;
  uint64_t multiget_ops;  // Batches per measurement.
  size_t batch_size;
};

constexpr Scale kFull = {20000, 40000, 2000, 64};
constexpr Scale kSmoke = {2000, 2000, 100, 32};

/// Tiny per-thread RNG so threads share no state while generating keys.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

struct Fixture {
  TestStack stack;
  uint64_t num_keys = 0;

  void Fill(const Scale& scale) {
    Options options = SmallTreeOptions();
    options.background_threads = 2;
    BenchCheck(stack.Open(options, "/a4"), "Open");
    num_keys = scale.num_keys;

    WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
    WriteOptions wo;
    for (uint64_t i = 0; i < num_keys; ++i) {
      std::string key = WorkloadGenerator::FormatKey(i);
      BenchCheck(stack.db->Put(wo, key, value_maker.MakeValue(key, 100)),
                 "Put");
    }
    BenchCheck(stack.db->Flush(), "Flush");
    BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");

    // Warm every file's reader pin and the block cache so the measured
    // phase exercises the steady-state path: view acquire, pinned reader
    // load, filter probe, cached block read.
    ReadOptions ro;
    std::string value;
    for (uint64_t i = 0; i < num_keys; ++i) {
      BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(i), &value);
    }
  }
};

/// Random Gets from `threads` concurrent readers; returns kops/s aggregate.
double MeasureGets(DB* db, uint64_t num_keys, int threads,
                   uint64_t gets_per_thread) {
  std::atomic<uint64_t> total_found{0};
  uint64_t t0 = SystemClock()->NowMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t);
      ReadOptions ro;
      std::string value;
      uint64_t found = 0;
      for (uint64_t i = 0; i < gets_per_thread; ++i) {
        std::string key =
            WorkloadGenerator::FormatKey(NextRand(&rng) % num_keys);
        Status s = db->Get(ro, key, &value);
        if (s.ok()) {
          ++found;
        } else if (!s.IsNotFound()) {
          BenchCheck(s, "Get");
        }
      }
      total_found.fetch_add(found, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  uint64_t micros = SystemClock()->NowMicros() - t0;
  if (total_found.load() != static_cast<uint64_t>(threads) * gets_per_thread) {
    std::fprintf(stderr, "bench: loaded keys went missing\n");
    std::abort();
  }
  return static_cast<double>(threads) * static_cast<double>(gets_per_thread) *
         1000.0 / static_cast<double>(micros);
}

/// Batched lookups through MultiGet; returns keys-resolved kops/s.
double MeasureMultiGet(DB* db, uint64_t num_keys, uint64_t ops,
                       size_t batch_size) {
  uint64_t rng = 0xdeadbeefcafef00dull;
  uint64_t t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < ops; ++i) {
    std::vector<std::string> key_storage;
    key_storage.reserve(batch_size);
    std::vector<Slice> keys;
    keys.reserve(batch_size);
    for (size_t k = 0; k < batch_size; ++k) {
      key_storage.push_back(
          WorkloadGenerator::FormatKey(NextRand(&rng) % num_keys));
      keys.emplace_back(key_storage.back());
    }
    std::vector<std::string> values;
    std::vector<Status> statuses = db->MultiGet(ReadOptions(), keys, &values);
    for (const Status& s : statuses) {
      BenchCheck(s, "MultiGet");
    }
  }
  uint64_t micros = SystemClock()->NowMicros() - t0;
  return static_cast<double>(ops) * static_cast<double>(batch_size) * 1000.0 /
         static_cast<double>(micros);
}

void Run(bool smoke) {
  const Scale& scale = smoke ? kSmoke : kFull;
  Banner("A4: multi-threaded read scaling on the lock-free read path",
         "ReadView snapshots + pinned table readers remove every DB-wide "
         "mutex from steady-state Gets, so cached point lookups scale with "
         "reader threads; MultiGet amortizes per-lookup overhead per batch");

  Fixture fx;
  fx.Fill(scale);
  DB* db = fx.stack.db.get();
  std::printf("\ntree after load:\n%s\n", db->DebugLevelSummary().c_str());

  const int thread_counts[] = {1, 2, 4, 8};
  PrintHeader({"threads", "get kops/s", "speedup"});
  double base_kops = 0.0;
  for (int threads : thread_counts) {
    double kops =
        MeasureGets(db, fx.num_keys, threads, scale.gets_per_thread);
    if (threads == 1) {
      base_kops = kops;
    }
    PrintRow({FmtInt(static_cast<uint64_t>(threads)), Fmt(kops),
              Fmt(base_kops > 0 ? kops / base_kops : 0.0, 2) + "x"});
  }

  std::printf("\n");
  PrintHeader({"api", "kops/s"});
  double get_kops = MeasureGets(db, fx.num_keys, 1, scale.gets_per_thread);
  double mget_kops =
      MeasureMultiGet(db, fx.num_keys, scale.multiget_ops, scale.batch_size);
  PrintRow({"Get (1 thread)", Fmt(get_kops)});
  PrintRow({"MultiGet (batch=" + FmtInt(scale.batch_size) + ")",
            Fmt(mget_kops)});

  const Statistics* stats = db->statistics();
  std::printf(
      "\nread-path stats: views published=%llu, table cache hits=%llu "
      "misses=%llu, multiget batches=%llu (%llu keys), block cache "
      "shards=%d\n",
      static_cast<unsigned long long>(stats->read_views_published.load()),
      static_cast<unsigned long long>(stats->table_cache_hits.load()),
      static_cast<unsigned long long>(stats->table_cache_misses.load()),
      static_cast<unsigned long long>(stats->multiget_batches.load()),
      static_cast<unsigned long long>(stats->multiget_keys.load()),
      db->block_cache() != nullptr ? db->block_cache()->num_shards() : 0);
  std::printf(
      "\nshape check: with the working set cached, Get throughput grows "
      "with threads (up to the machine's core count) because the steady "
      "state takes no DB-wide mutex; table cache misses stay flat during "
      "measurement (readers come from per-file pins).\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  lsmlab::bench::Run(smoke);
  return 0;
}
