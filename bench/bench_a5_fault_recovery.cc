// A5 — Background-error recovery: retry/backoff vs sticky first error.
//
// Claim: classifying background failures by severity and retrying soft
// errors (a failed flush/compaction publishes nothing, so it is safe to
// re-run) with capped exponential backoff turns a transient device fault
// window into a brief throughput dip that heals with no failed user writes
// and no operator action. The old sticky policy
// (max_background_error_retries = 0) poisons the DB on the first failed
// flush: every subsequent write fails fast until an operator notices and
// calls Resume() — and if the fault window outlasts one Resume(), again.
//
// The bench drives a fixed Put workload over FaultInjectionEnv, opens a
// transient fault window on table-file syncs partway through, and reports
// bucketed throughput plus failed writes, Resume() calls, and
// time-to-recovery for both policies.
//
// Run with --smoke for a seconds-scale CI sanity pass (same code paths).

#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "db/statistics.h"
#include "io/fault_injection_env.h"

namespace lsmlab::bench {
namespace {

struct Scale {
  uint64_t total_ops;
  int64_t fault_failures;  // Failed table syncs in the fault window.
};

constexpr Scale kFull = {60000, 4};
constexpr Scale kSmoke = {6000, 2};
constexpr int kBuckets = 12;
// Simulated operator reaction time for the sticky policy: how long after a
// write starts failing before someone calls Resume(). Generous to the
// sticky policy — a real pager round-trip is seconds to minutes.
constexpr uint64_t kOperatorDelayMicros = 2000;

struct RunResult {
  uint64_t total_ops = 0;
  double bucket_kops[kBuckets];
  uint64_t failed_writes = 0;
  uint64_t resume_calls = 0;
  uint64_t recovery_micros = 0;  // First failure symptom -> healthy again.
  uint64_t wall_micros = 0;
  uint64_t bg_soft = 0, bg_retries = 0, bg_retry_success = 0, bg_hard = 0;
};

RunResult RunPolicy(const Scale& scale, int max_retries) {
  MemEnv base;
  FaultInjectionEnv env(&base, /*seed=*/0x5eedULL + max_retries);

  Options options;
  options.env = &env;
  options.write_buffer_size = 8 << 10;  // Frequent flushes.
  options.max_bytes_for_level_base = 64 << 10;
  options.target_file_size = 16 << 10;
  options.background_threads = 2;
  options.max_background_error_retries = max_retries;
  options.background_error_retry_initial_micros = 200;
  options.background_error_retry_max_micros = 5000;
  options.info_log = nullptr;

  std::unique_ptr<DB> db;
  BenchCheck(DB::Open(options, "/a5", &db), "Open");

  const uint64_t fault_at = scale.total_ops / 3;
  const uint64_t per_bucket = scale.total_ops / kBuckets;
  RunResult r;
  r.total_ops = scale.total_ops;

  WriteOptions wo;
  std::string value(100, 'v');
  uint64_t first_symptom = 0;  // Micros of first failed write / soft error.
  uint64_t healthy_again = 0;
  const uint64_t start = SystemClock()->NowMicros();
  uint64_t bucket_start = start;
  int bucket = 0;
  uint64_t ops_in_bucket = 0;

  for (uint64_t i = 0; i < scale.total_ops; ++i) {
    if (i == fault_at) {
      // Transient device fault: the next N table-file syncs fail, then the
      // "device" heals on its own.
      FaultRule rule;
      rule.file_kinds = kFaultTable;
      rule.ops = kFaultOpSync;
      rule.one_in = 1;
      rule.max_failures = scale.fault_failures;
      env.AddRule(rule);
    }

    std::string key = WorkloadGenerator::FormatKey(i % 4096);
    Status s = db->Put(wo, key, value);
    while (!s.ok()) {
      // Sticky policy: the DB is read-only until an operator intervenes.
      // Model the intervention: notice after a delay, Resume(), retry.
      ++r.failed_writes;
      if (first_symptom == 0) {
        first_symptom = SystemClock()->NowMicros();
      }
      SystemClock()->SleepForMicros(kOperatorDelayMicros);
      BenchCheck(db->Resume(), "Resume");
      ++r.resume_calls;
      s = db->Put(wo, key, value);
    }
    if (first_symptom != 0 && healthy_again == 0) {
      // Healthy = the write stream flows and no background error is live.
      if (db->BackgroundErrorState().ok()) {
        healthy_again = SystemClock()->NowMicros();
      }
    }

    if (++ops_in_bucket == per_bucket && bucket < kBuckets) {
      const uint64_t now = SystemClock()->NowMicros();
      r.bucket_kops[bucket] =
          per_bucket * 1000.0 /
          static_cast<double>(now > bucket_start ? now - bucket_start : 1);
      bucket_start = now;
      ops_in_bucket = 0;
      ++bucket;
    }
  }
  BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  r.wall_micros = SystemClock()->NowMicros() - start;
  while (bucket < kBuckets) {
    r.bucket_kops[bucket++] = 0.0;
  }

  const Statistics* stats = db->statistics();
  r.bg_soft = stats->bg_error_soft.load();
  r.bg_retries = stats->bg_retries.load();
  r.bg_retry_success = stats->bg_retry_success.load();
  r.bg_hard = stats->bg_error_hard.load();
  if (first_symptom == 0) {
    // Auto-retry policy: the symptom is the first soft error, not a failed
    // write. Approximate recovery as the retry window; report 0 if the
    // window never opened (fault absorbed without a single soft error).
    r.recovery_micros = 0;
  } else {
    r.recovery_micros =
        (healthy_again > first_symptom ? healthy_again - first_symptom : 0);
  }
  return r;
}

void Report(const char* label, const RunResult& r) {
  std::printf("\n%s\n", label);
  PrintHeader({"metric", "value"});
  PrintRow({"throughput (kops/s)",
            Fmt(r.total_ops * 1000.0 / static_cast<double>(r.wall_micros),
                1)});
  PrintRow({"failed user writes", FmtInt(r.failed_writes)});
  PrintRow({"Resume() calls", FmtInt(r.resume_calls)});
  PrintRow({"write downtime (ms)", Fmt(r.recovery_micros / 1000.0, 2)});
  PrintRow({"bg soft errors", FmtInt(r.bg_soft)});
  PrintRow({"bg retries", FmtInt(r.bg_retries)});
  PrintRow({"bg retry successes", FmtInt(r.bg_retry_success)});
  PrintRow({"bg hard errors", FmtInt(r.bg_hard)});
  std::printf("bucketed kops/s:");
  for (int b = 0; b < kBuckets; ++b) {
    std::printf(" %.0f", r.bucket_kops[b]);
  }
  std::printf("\n");
}

void Run(const Scale& scale) {
  Banner("A5 — fault recovery: retry/backoff vs sticky background error",
         "soft-error retries heal a transient fault with zero failed writes; "
         "the sticky policy fails writes until Resume()");

  RunResult auto_retry = RunPolicy(scale, /*max_retries=*/8);
  RunResult sticky = RunPolicy(scale, /*max_retries=*/0);

  Report("retry/backoff (max_background_error_retries=8)", auto_retry);
  Report("sticky (max_background_error_retries=0, operator Resume())",
         sticky);

  std::printf(
      "\nsummary: auto-retry served %llu/%llu writes with %llu failures; "
      "sticky failed %llu writes and needed %llu Resume() calls\n",
      static_cast<unsigned long long>(scale.total_ops),
      static_cast<unsigned long long>(scale.total_ops),
      static_cast<unsigned long long>(auto_retry.failed_writes),
      static_cast<unsigned long long>(sticky.failed_writes),
      static_cast<unsigned long long>(sticky.resume_calls));
}

}  // namespace
}  // namespace lsmlab::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  lsmlab::bench::Run(smoke ? lsmlab::bench::kSmoke : lsmlab::bench::kFull);
  return 0;
}
