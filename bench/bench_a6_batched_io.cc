// A6 — Batched I/O: one submission per MultiGet round instead of one
// blocking pread per block.
//
// Claim: a queued device (NCQ/io_uring) charges a batch of k reads roughly
// one fixed op cost plus the total transfer, where a serial loop pays the
// fixed cost k times. Routing MultiGet's cold data-block reads through
// Env::MultiRead therefore speeds up batched point lookups by multiples on
// op-latency-bound devices, and iterator readahead turns a scan's one-pread-
// per-block pattern into a few large reads.
//
// Three measurements, the first two in deterministic virtual time
// (LatencyEnv over MockClock, SSD model):
//   1. Cold-cache MultiGet in 16-key batches, batched_io on vs off — the
//      acceptance gate is >= 1.5x.
//   2. Cold full scan, readahead on vs off, plus a warm-cache scan pair
//      (wall time) to show readahead costs ~nothing once blocks are cached.
//   3. Real-file backend matrix: the same 16-read batches through
//      PosixEnvWithBackend serial / threadpool / io_uring (when available),
//      in wall time.
//
// Run with --smoke for a seconds-scale CI sanity pass (same code paths).

#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "db/statistics.h"
#include "io/latency_env.h"
#include "util/random.h"

namespace lsmlab::bench {
namespace {

struct Scale {
  uint64_t keys;
  uint64_t batches;         // MultiGet batches per configuration.
  uint64_t backend_rounds;  // Batches per backend in the matrix.
};

constexpr Scale kFull = {20000, 400, 2000};
constexpr Scale kSmoke = {4000, 50, 100};
constexpr size_t kBatchKeys = 16;

/// DB over MemEnv -> LatencyEnv(SSD, MockClock): I/O cost is virtual and
/// exactly reproducible.
struct LatencyStack {
  MemEnv mem;
  MockClock clock;
  LatencyEnv env{&mem, DeviceModel::Ssd(), &clock};
  std::unique_ptr<DB> db;

  void OpenAndLoad(const Scale& scale) {
    Options options = SmallTreeOptions();
    options.env = &env;
    BenchCheck(DB::Open(options, "/a6", &db), "Open");
    WriteOptions wo;
    for (uint64_t i = 0; i < scale.keys; ++i) {
      BenchCheck(db->Put(wo, WorkloadGenerator::FormatKey(i),
                         std::string(100, 'v')),
                 "Put");
    }
    BenchCheck(db->Flush(), "Flush");
    BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  }

  /// Drops the block cache (it lives in the DB handle) without touching the
  /// on-"disk" state.
  void ReopenCold() {
    db.reset();
    Options options = SmallTreeOptions();
    options.env = &env;
    BenchCheck(DB::Open(options, "/a6", &db), "Reopen");
  }
};

struct MultiGetResult {
  uint64_t virtual_micros = 0;
  uint64_t io_batches = 0;
  uint64_t io_batch_reads = 0;
};

MultiGetResult RunMultiGet(const Scale& scale, bool batched) {
  LatencyStack stack;
  stack.OpenAndLoad(scale);
  stack.ReopenCold();

  ReadOptions ro;
  ro.batched_io = batched;
  ro.fill_cache = false;  // Keep every batch cold: this is the device story.
  Random rnd(0xa6);
  MultiGetResult r;
  std::vector<std::string> values;
  const uint64_t start = stack.clock.NowMicros();
  for (uint64_t b = 0; b < scale.batches; ++b) {
    std::vector<std::string> key_storage;
    for (size_t k = 0; k < kBatchKeys; ++k) {
      key_storage.push_back(
          WorkloadGenerator::FormatKey(rnd.Uniform(scale.keys)));
    }
    std::vector<Slice> keys(key_storage.begin(), key_storage.end());
    std::vector<Status> statuses = stack.db->MultiGet(ro, keys, &values);
    for (const Status& s : statuses) {
      BenchCheck(s, "MultiGet");
    }
  }
  r.virtual_micros = stack.clock.NowMicros() - start;
  r.io_batches = stack.db->statistics()->io_batches.load();
  r.io_batch_reads = stack.db->statistics()->io_batch_reads.load();
  return r;
}

void RunMultiGetExperiment(const Scale& scale) {
  std::printf("\ncold-cache MultiGet, %llu batches x %zu keys "
              "(virtual SSD time)\n",
              static_cast<unsigned long long>(scale.batches), kBatchKeys);
  MultiGetResult serial = RunMultiGet(scale, /*batched=*/false);
  MultiGetResult batched = RunMultiGet(scale, /*batched=*/true);

  const double speedup = static_cast<double>(serial.virtual_micros) /
                         static_cast<double>(batched.virtual_micros > 0
                                                 ? batched.virtual_micros
                                                 : 1);
  PrintHeader({"mode", "virtual ms", "us/batch", "io_batches",
               "reads/batch"});
  PrintRow({"serial (batched_io=off)", Fmt(serial.virtual_micros / 1000.0, 1),
            Fmt(static_cast<double>(serial.virtual_micros) / scale.batches, 1),
            FmtInt(serial.io_batches), "-"});
  PrintRow({"batched (batched_io=on)",
            Fmt(batched.virtual_micros / 1000.0, 1),
            Fmt(static_cast<double>(batched.virtual_micros) / scale.batches,
                1),
            FmtInt(batched.io_batches),
            Fmt(batched.io_batches > 0
                    ? static_cast<double>(batched.io_batch_reads) /
                          static_cast<double>(batched.io_batches)
                    : 0.0,
                1)});
  std::printf("MultiGet speedup: %.2fx %s\n", speedup,
              speedup >= 1.5 ? "(meets the >=1.5x gate)"
                             : "(BELOW the 1.5x gate)");
}

uint64_t ScanVirtualMicros(LatencyStack* stack, size_t readahead_bytes) {
  ReadOptions ro;
  ro.readahead_bytes = readahead_bytes;
  ro.fill_cache = false;
  const uint64_t start = stack->clock.NowMicros();
  auto iter = stack->db->NewIterator(ro);
  uint64_t entries = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ++entries;
  }
  BenchCheck(iter->status(), "scan");
  if (entries == 0) {
    BenchCheck(Status::Corruption("empty scan"), "scan");
  }
  return stack->clock.NowMicros() - start;
}

uint64_t ScanWallMicros(DB* db, size_t readahead_bytes) {
  ReadOptions ro;
  ro.readahead_bytes = readahead_bytes;
  const uint64_t start = SystemClock()->NowMicros();
  auto iter = db->NewIterator(ro);
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
  }
  BenchCheck(iter->status(), "scan");
  return SystemClock()->NowMicros() - start;
}

void RunScanExperiment(const Scale& scale) {
  std::printf("\nfull scan over %llu keys\n",
              static_cast<unsigned long long>(scale.keys));

  LatencyStack stack;
  stack.OpenAndLoad(scale);
  stack.ReopenCold();
  const uint64_t cold_off = ScanVirtualMicros(&stack, 0);
  stack.ReopenCold();
  const uint64_t cold_on = ScanVirtualMicros(&stack, 256 << 10);
  const uint64_t hits = stack.db->statistics()->readahead_hits.load();
  const uint64_t misses = stack.db->statistics()->readahead_misses.load();

  // Warm the cache, then compare wall time with the buffer in play vs not:
  // the lazy readahead file is only created on an uncached block load, so a
  // cached scan must not regress.
  MemEnv mem;
  std::unique_ptr<DB> db;
  {
    Options options = SmallTreeOptions();
    options.env = &mem;
    BenchCheck(DB::Open(options, "/a6w", &db), "Open");
    WriteOptions wo;
    for (uint64_t i = 0; i < scale.keys; ++i) {
      BenchCheck(db->Put(wo, WorkloadGenerator::FormatKey(i),
                         std::string(100, 'v')),
                 "Put");
    }
    BenchCheck(db->Flush(), "Flush");
    BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  }
  (void)ScanWallMicros(db.get(), 0);  // Warm the block cache.
  const uint64_t warm_off = ScanWallMicros(db.get(), 0);
  const uint64_t warm_on = ScanWallMicros(db.get(), 256 << 10);

  PrintHeader({"scan", "readahead off", "readahead on", "ratio"});
  PrintRow({"cold (virtual ms)", Fmt(cold_off / 1000.0, 1),
            Fmt(cold_on / 1000.0, 1),
            Fmt(static_cast<double>(cold_off) /
                    static_cast<double>(cold_on > 0 ? cold_on : 1),
                2) + "x faster"});
  PrintRow({"warm cache (wall ms)", Fmt(warm_off / 1000.0, 2),
            Fmt(warm_on / 1000.0, 2),
            Fmt(static_cast<double>(warm_on) /
                    static_cast<double>(warm_off > 0 ? warm_off : 1),
                2) + "x"});
  std::printf("cold-scan readahead buffer: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
}

void RunBackendMatrix(const Scale& scale) {
  std::printf("\nbackend matrix: %llu rounds of %zu x 4KB real-file reads "
              "(wall time; page-cache hot)\n",
              static_cast<unsigned long long>(scale.backend_rounds),
              kBatchKeys);

  Env* posix = Env::Default();
  const std::string dir = "/tmp/lsmlab_bench_a6_" + std::to_string(::getpid());
  BenchCheck(posix->CreateDir(dir), "CreateDir");
  const std::string fname = dir + "/data";
  constexpr size_t kFileSize = 8 << 20;
  {
    std::string content(kFileSize, 'x');
    BenchCheck(WriteStringToFile(posix, content, fname), "write data file");
  }

  PrintHeader({"backend", "wall ms", "us/batch"});
  const struct {
    BatchIoBackend backend;
    const char* name;
  } kBackends[] = {{BatchIoBackend::kSerial, "serial"},
                   {BatchIoBackend::kThreadPool, "threadpool"},
                   {BatchIoBackend::kIoUring, "io_uring"}};
  for (const auto& entry : kBackends) {
    Env* env = PosixEnvWithBackend(entry.backend);
    if (env == nullptr) {
      PrintRow({entry.name, "unavailable", "-"});
      continue;
    }
    std::unique_ptr<RandomAccessFile> file;
    BenchCheck(env->NewRandomAccessFile(fname, &file), "open data file");
    Random rnd(0xa6);
    std::vector<std::string> bufs(kBatchKeys, std::string(4096, '\0'));
    const uint64_t start = SystemClock()->NowMicros();
    for (uint64_t round = 0; round < scale.backend_rounds; ++round) {
      std::vector<ReadRequest> reqs(kBatchKeys);
      for (size_t i = 0; i < kBatchKeys; ++i) {
        reqs[i].file = file.get();
        reqs[i].offset = rnd.Uniform(kFileSize - 4096);
        reqs[i].len = 4096;
        reqs[i].scratch = bufs[i].data();
      }
      file->MultiRead(reqs.data(), kBatchKeys);
      for (const auto& req : reqs) {
        BenchCheck(req.status, "MultiRead");
      }
    }
    const uint64_t wall = SystemClock()->NowMicros() - start;
    PrintRow({entry.name, Fmt(wall / 1000.0, 1),
              Fmt(static_cast<double>(wall) / scale.backend_rounds, 1)});
  }

  (void)posix->RemoveFile(fname);
  (void)posix->RemoveDir(dir);
}

void Run(const Scale& scale) {
  Banner("A6 — batched I/O: MultiRead submission vs one pread per block",
         "a queued device charges a batch one op cost + total transfer; the "
         "serial loop pays the op cost per read");
  std::printf("io_uring backend: %s\n",
              IoUringAvailable() ? "available" : "unavailable (fallback)");
  RunMultiGetExperiment(scale);
  RunScanExperiment(scale);
  RunBackendMatrix(scale);
}

}  // namespace
}  // namespace lsmlab::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  lsmlab::bench::Run(smoke ? lsmlab::bench::kSmoke : lsmlab::bench::kFull);
  return 0;
}
