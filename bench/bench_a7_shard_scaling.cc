// A7 — Shard scaling: one writer queue per shard instead of one per DB.
//
// Claim: the single-engine write path serializes every writer through one
// queue (one WAL tail, one memtable arena, one big mutex). Range-sharding
// the DB into N independent ShardEngine cores gives concurrent writers N
// disjoint queues, so threads whose keys land in different shards stop
// contending; the N = 1 configuration must stay free (it bypasses every
// cross-shard code path). Cross-shard atomic batches pay for two-phase
// commit — one synced prepare per involved shard plus a synced commit
// record — which this bench prices explicitly.
//
// Three measurements over the real filesystem (PosixEnv, /tmp):
//   1. Concurrent fill: 64 client threads of scrambled-Zipfian puts
//      (theta 0.99, the YCSB default) at N in {1, 2, 4, 8}; ops/s per
//      configuration, N = 1 is the baseline.
//   2. Concurrent scrambled-Zipfian point reads over the filled DB,
//      same sweep.
//   3. 2PC overhead: single-shard batches vs 4-shard batches at N = 4,
//      same total operation count, with the prepare/commit stats printed.
//
// Run with --smoke for a seconds-scale CI sanity pass (same code paths).

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "db/statistics.h"
#include "util/random.h"

namespace lsmlab::bench {
namespace {

struct Scale {
  uint64_t keys;           // Key-space size (and fill operations).
  uint64_t reads;          // Point reads in the read phase.
  uint64_t batches;        // Atomic batches in the 2PC phase.
  int threads;
};

constexpr Scale kFull = {120000, 120000, 8000, 64};
constexpr Scale kSmoke = {8000, 8000, 400, 8};
constexpr int kShardCounts[] = {1, 2, 4, 8};
constexpr double kZipfTheta = 0.99;

/// YCSB-style scrambled Zipfian: ZipfianGenerator returns popularity
/// *ranks* (hot = 0, 1, 2, ...); hashing the rank spreads the hot set over
/// the whole key space so skew stresses every shard, not just shard 0.
uint64_t ScrambleRank(uint64_t rank, uint64_t keys) {
  return (rank * 0x9e3779b97f4a7c15ull) % keys;
}

std::string BenchDir(const char* tag) {
  return "/tmp/lsmlab_bench_a7_" + std::to_string(::getpid()) + "_" + tag;
}

/// Opens a fresh N-shard DB under /tmp with splits at the key-space
/// quantiles, so a uniform workload spreads evenly across shards.
std::unique_ptr<DB> OpenSharded(const std::string& dir, int num_shards,
                                uint64_t keys) {
  Options options = SmallTreeOptions();
  options.write_buffer_size = 256 << 10;
  options.env = Env::Default();
  options.num_shards = num_shards;
  for (int k = 1; k < num_shards; ++k) {
    options.shard_split_keys.push_back(
        WorkloadGenerator::FormatKey(keys * k / num_shards));
  }
  std::unique_ptr<DB> db;
  BenchCheck(DestroyDB(options, dir), "DestroyDB");
  BenchCheck(DB::Open(options, dir, &db), "Open");
  return db;
}

/// Runs `fn(thread_index)` on `threads` threads and returns wall micros for
/// the slowest one (they start together).
uint64_t RunThreads(int threads, const std::function<void(int)>& fn) {
  const uint64_t start = SystemClock()->NowMicros();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(fn, t);
  }
  for (auto& th : pool) {
    th.join();
  }
  return SystemClock()->NowMicros() - start;
}

void RunScalingSweep(const Scale& scale) {
  std::printf("\nconcurrent fill + point reads, %d threads, %llu keys, "
              "scrambled Zipf(%.2f) (wall time, PosixEnv)\n",
              scale.threads, static_cast<unsigned long long>(scale.keys),
              kZipfTheta);
  PrintHeader({"shards", "fill ops/s", "fill vs N=1", "read ops/s",
               "read vs N=1"});

  double fill_base = 0, read_base = 0;
  for (int n : kShardCounts) {
    const std::string dir = BenchDir("sweep");
    std::unique_ptr<DB> db = OpenSharded(dir, n, scale.keys);

    const uint64_t per_thread = scale.keys / scale.threads;
    const uint64_t fill_micros = RunThreads(scale.threads, [&](int t) {
      WriteOptions wo;
      ZipfianGenerator zipf(scale.keys, kZipfTheta, 0xa700 + t);
      for (uint64_t i = 0; i < per_thread; ++i) {
        const std::string key = WorkloadGenerator::FormatKey(
            ScrambleRank(zipf.Next(), scale.keys));
        BenchCheck(db->Put(wo, key, std::string(100, 'v')), "Put");
      }
    });
    BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");

    const uint64_t reads_per_thread = scale.reads / scale.threads;
    const uint64_t read_micros = RunThreads(scale.threads, [&](int t) {
      ReadOptions ro;
      ZipfianGenerator zipf(scale.keys, kZipfTheta, 0xa7f0 + t);
      std::string value;
      for (uint64_t i = 0; i < reads_per_thread; ++i) {
        BenchGet(db.get(), ro,
                 WorkloadGenerator::FormatKey(
                     ScrambleRank(zipf.Next(), scale.keys)),
                 &value);
      }
    });

    const double fill_ops =
        1e6 * static_cast<double>(per_thread * scale.threads) /
        static_cast<double>(fill_micros > 0 ? fill_micros : 1);
    const double read_ops =
        1e6 * static_cast<double>(reads_per_thread * scale.threads) /
        static_cast<double>(read_micros > 0 ? read_micros : 1);
    if (n == 1) {
      fill_base = fill_ops;
      read_base = read_ops;
    }
    PrintRow({FmtInt(n), FmtInt(static_cast<uint64_t>(fill_ops)),
              Fmt(fill_ops / fill_base, 2) + "x",
              FmtInt(static_cast<uint64_t>(read_ops)),
              Fmt(read_ops / read_base, 2) + "x"});

    db.reset();
    Options cleanup;
    cleanup.env = Env::Default();
    BenchCheck(DestroyDB(cleanup, dir), "DestroyDB");
  }
}

void RunTwoPhaseOverhead(const Scale& scale) {
  std::printf("\n2PC overhead at N=4: %llu atomic batches of 4 puts, "
              "single-shard vs cross-shard (wall time)\n",
              static_cast<unsigned long long>(scale.batches));

  const std::string dir = BenchDir("2pc");
  std::unique_ptr<DB> db = OpenSharded(dir, 4, scale.keys);
  WriteOptions wo;
  const uint64_t quarter = scale.keys / 4;

  PrintHeader({"batch shape", "wall ms", "us/batch", "prepares", "commits"});
  for (const bool cross : {false, true}) {
    const uint64_t p0 = db->statistics()->shard_prepares.load();
    const uint64_t c0 = db->statistics()->shard_commits.load();
    Random rnd(cross ? 0xa72c : 0xa721);
    const uint64_t start = SystemClock()->NowMicros();
    for (uint64_t b = 0; b < scale.batches; ++b) {
      WriteBatch batch;
      for (int i = 0; i < 4; ++i) {
        // Cross: one key per shard. Single: all four in shard 0's range.
        const uint64_t base = cross ? quarter * i : 0;
        batch.Put(WorkloadGenerator::FormatKey(base + rnd.Uniform(quarter)),
                  std::string(100, 'b'));
      }
      BenchCheck(db->Write(wo, &batch), "Write");
    }
    const uint64_t wall = SystemClock()->NowMicros() - start;
    PrintRow({cross ? "cross-shard (4 shards)" : "single-shard",
              Fmt(wall / 1000.0, 1),
              Fmt(static_cast<double>(wall) / scale.batches, 1),
              FmtInt(db->statistics()->shard_prepares.load() - p0),
              FmtInt(db->statistics()->shard_commits.load() - c0)});
  }
  std::printf("cross_shard_batches: %llu\n",
              static_cast<unsigned long long>(
                  db->statistics()->cross_shard_batches.load()));

  db.reset();
  Options cleanup;
  cleanup.env = Env::Default();
  BenchCheck(DestroyDB(cleanup, dir), "DestroyDB");
}

void Run(const Scale& scale) {
  Banner("A7 — shard scaling: N writer queues instead of one",
         "threads whose keys land in different shards stop contending on "
         "one WAL tail/memtable; N=1 stays the flat single-engine path");
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());
  RunScalingSweep(scale);
  RunTwoPhaseOverhead(scale);
}

}  // namespace
}  // namespace lsmlab::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  lsmlab::bench::Run(smoke ? lsmlab::bench::kSmoke : lsmlab::bench::kFull);
  return 0;
}
