// A8 — Pluggable per-SSTable learned indexes: PLR models vs binary-searched
// fence pointers (ROADMAP item 4; paper §2.1.3's index block made pluggable).
//
// Claim: once a table's data blocks are hot in cache, the per-lookup index
// cost is what separates point-read configurations. A fence index pays a
// binary search over per-block separator *strings*; an epsilon-bounded PLR
// model predicts the block with one segment lookup plus a <= (2*eps+3)-wide
// probe over fixed64 digests, and its serialized form is a fraction of the
// fence block's size — the win grows with table size, i.e. with level depth.
//
// Three measurements per emulated level (table sizes chosen like L1/L2/L3
// file budgets), fence vs learned on identical contents:
//   1. Fully-cached random point Gets (wall kops/s) — acceptance wants the
//      learned column >= 10% faster on at least one level.
//   2. Index bytes per entry, from the table's own properties — acceptance
//      wants >= 2x smaller at the bottommost level (hard gate in --smoke).
//   3. Table build time (wall ms) — the price of fitting the model.
//
// Run with --smoke for a seconds-scale CI sanity pass (same code paths;
// the byte gate stays on, the timing cells are informational).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/lru_cache.h"
#include "db/dbformat.h"
#include "db/statistics.h"
#include "table/table_builder.h"
#include "table/table_reader.h"

namespace lsmlab::bench {
namespace {

struct Scale {
  std::vector<uint64_t> level_keys;  // Emulated L1..Ln table sizes.
  uint64_t lookups;
};

const Scale kFull = {{8000, 64000, 512000}, 200000};
const Scale kSmoke = {{2000, 8000, 32000}, 20000};

std::string BenchKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i * 7));
  return buf;
}

struct BuiltTable {
  std::unique_ptr<TableReader> reader;
  uint64_t build_micros = 0;
  // Heap-held: Statistics is all atomics and not movable.
  std::unique_ptr<Statistics> stats = std::make_unique<Statistics>();
};

/// Builds one table of `keys` entries at "/a8.sst" in `env` and opens it
/// against `cache`. The file name is reused: MemEnv hands the old content's
/// buffer to existing readers, so sequential rebuilds are safe.
BuiltTable BuildTable(MemEnv* env, LruCache* cache,
                      const InternalKeyComparator* icmp, uint64_t keys,
                      IndexType index_type) {
  BuiltTable out;
  std::unique_ptr<WritableFile> file;
  BenchCheck(env->NewWritableFile("/a8.sst", &file), "NewWritableFile");

  TableBuilderOptions topt;
  topt.comparator = icmp;
  topt.block_size = 4096;
  topt.index_type = index_type;
  topt.learned_index_epsilon = 8;

  const uint64_t start = SystemClock()->NowMicros();
  TableBuilder builder(topt, file.get());
  std::string ikey;
  const std::string value(64, 'v');
  for (uint64_t i = 0; i < keys; ++i) {
    ikey.clear();
    AppendInternalKey(&ikey, ParsedInternalKey(BenchKey(i), i + 1,
                                               kTypeValue));
    builder.Add(ikey, value);
  }
  BenchCheck(builder.Finish(), "TableBuilder::Finish");
  BenchCheck(file->Close(), "Close");
  out.build_micros = SystemClock()->NowMicros() - start;

  uint64_t size = 0;
  BenchCheck(env->GetFileSize("/a8.sst", &size), "GetFileSize");
  std::unique_ptr<RandomAccessFile> read_file;
  BenchCheck(env->NewRandomAccessFile("/a8.sst", &read_file),
             "NewRandomAccessFile");
  TableReaderOptions ropt;
  ropt.comparator = icmp;
  ropt.block_cache = cache;
  ropt.statistics = out.stats.get();
  BenchCheck(TableReader::Open(ropt, std::move(read_file), size,
                               /*file_number=*/1, &out.reader),
             "TableReader::Open");
  return out;
}

/// Random present-key point lookups with every data block already cached:
/// pure index + in-block search cost.
uint64_t CachedGetMicros(TableReader* reader, uint64_t keys,
                         uint64_t lookups) {
  // Warm the block cache with one full scan.
  {
    auto iter = reader->NewIterator(ReadOptions());
    uint64_t n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ++n;
    }
    BenchCheck(iter->status(), "warm scan");
    if (n != keys) {
      BenchCheck(Status::Corruption("warm scan lost entries"), "warm scan");
    }
  }
  Random rnd(0xa8);
  std::string ikey, entry_key, entry_value;
  const uint64_t start = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < lookups; ++i) {
    ikey.clear();
    AppendInternalKey(&ikey,
                      ParsedInternalKey(BenchKey(rnd.Uniform(keys)),
                                        kMaxSequenceNumber, kValueTypeForSeek));
    bool found = false;
    BenchCheck(reader->InternalGet(ReadOptions(), ikey, &found, &entry_key,
                                   &entry_value),
               "InternalGet");
    if (!found) {
      BenchCheck(Status::Corruption("present key not found"), "InternalGet");
    }
  }
  return SystemClock()->NowMicros() - start;
}

void Run(bool smoke) {
  const Scale& scale = smoke ? kSmoke : kFull;
  Banner(
      "A8 — learned per-SSTable indexes (PLR) vs fence pointers",
      "a PLR index answers fully-cached point reads faster than a fence "
      "binary search and serializes >= 2x smaller at the bottom level");

  InternalKeyComparator icmp(BytewiseComparator());
  bool bytes_gate_ok = false;
  double best_speedup = 0.0;

  PrintHeader({"level", "keys", "index", "kops/s", "idx B/entry", "idx bytes",
               "build ms", "hit rate"});
  for (size_t level = 0; level < scale.level_keys.size(); ++level) {
    const uint64_t keys = scale.level_keys[level];
    double kops[2] = {0, 0};
    for (IndexType type :
         {IndexType::kBinarySearchFence, IndexType::kLearnedPLR}) {
      MemEnv env;
      LruCache cache(256 << 20);
      BuiltTable t = BuildTable(&env, &cache, &icmp, keys, type);
      const uint64_t micros =
          CachedGetMicros(t.reader.get(), keys, scale.lookups);
      const TableProperties& props = t.reader->properties();
      const bool learned = type == IndexType::kLearnedPLR;
      const uint64_t index_bytes =
          learned ? props.learned_index_bytes : props.fence_index_bytes;
      kops[learned ? 1 : 0] =
          micros > 0 ? static_cast<double>(scale.lookups) * 1000.0 /
                           static_cast<double>(micros)
                     : 0.0;
      const uint64_t hits = t.stats->learned_index_hits.load();
      const uint64_t falls = t.stats->learned_index_fallbacks.load();
      PrintRow({"L" + std::to_string(level + 1), FmtInt(keys),
                learned ? "learned-plr" : "fence",
                Fmt(kops[learned ? 1 : 0], 1),
                Fmt(static_cast<double>(index_bytes) /
                        static_cast<double>(keys),
                    3),
                FmtInt(index_bytes), Fmt(t.build_micros / 1000.0, 1),
                learned ? Fmt(hits + falls > 0
                                  ? 100.0 * static_cast<double>(hits) /
                                        static_cast<double>(hits + falls)
                                  : 0.0,
                              1) + "%"
                        : "-"});
      if (learned && level + 1 == scale.level_keys.size()) {
        bytes_gate_ok = props.learned_index_bytes * 2 <=
                        props.fence_index_bytes;
      }
    }
    if (kops[0] > 0) {
      best_speedup = std::max(best_speedup, kops[1] / kops[0]);
    }
  }

  std::printf("\nbest learned/fence Get speedup: %.2fx %s\n", best_speedup,
              best_speedup >= 1.10 ? "(meets the >=1.10x gate)"
                                   : "(below the 1.10x gate)");
  std::printf("bottom-level index bytes: %s\n",
              bytes_gate_ok ? "learned <= fence/2 (meets the >=2x gate)"
                            : "BELOW the 2x gate");
  if (smoke && !bytes_gate_ok) {
    // The byte ratio is a deterministic property of the format — a miss is
    // a regression, not noise, so the CI smoke run fails hard on it.
    std::exit(1);
  }
}

}  // namespace
}  // namespace lsmlab::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  lsmlab::bench::Run(smoke);
  return 0;
}
