// E10 — Compaction interference and SILK-style scheduling (tutorial
// §2.2.3, §2.3.2).
//
// Claim: unthrottled compactions monopolize the device and cause write
// latency spikes (p99.9 ≫ p50); capping compaction bandwidth (with flushes
// always prioritized) flattens the tail at a small throughput cost. An
// emulated device (LatencyEnv) makes the contention real on any machine.

#include "bench/bench_util.h"
#include "io/latency_env.h"
#include "util/histogram.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kOps = 40000;

struct Row {
  double throughput_kops;
  double p50_us;
  double p99_us;
  double p999_us;
  double max_ms;
  uint64_t stall_micros;
};

Row RunOne(uint64_t compaction_limit_bytes_per_sec) {
  auto mem_env = std::make_unique<MemEnv>();
  // A modest emulated SSD so that flush vs compaction contention matters.
  DeviceModel device;
  device.per_op_latency_micros = 0;
  device.bandwidth_bytes_per_sec = 64ull << 20;
  auto lat_env =
      std::make_unique<LatencyEnv>(mem_env.get(), device, SystemClock());

  Options options = SmallTreeOptions();
  options.env = lat_env.get();
  options.enable_wal = false;
  options.write_buffer_size = 32 << 10;
  options.background_threads = 2;  // Flush and compaction can overlap.
  options.compaction_rate_limit_bytes_per_sec = compaction_limit_bytes_per_sec;
  options.level0_slowdown_writes_trigger = 6;
  options.level0_stop_writes_trigger = 10;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/silk", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  Random rnd(3);
  WriteOptions wo;
  Histogram latencies;
  uint64_t t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < kOps; ++i) {
    std::string key = WorkloadGenerator::FormatKey(rnd.Uniform(200000));
    std::string value = value_maker.MakeValue(key, 256);
    uint64_t w0 = SystemClock()->NowMicros();
    BenchCheck(db->Put(wo, key, value), "Put");
    latencies.Add(static_cast<double>(SystemClock()->NowMicros() - w0));
  }
  uint64_t total = SystemClock()->NowMicros() - t0;

  Row row;
  row.throughput_kops =
      static_cast<double>(kOps) * 1000.0 / static_cast<double>(total);
  row.p50_us = latencies.Percentile(50);
  row.p99_us = latencies.Percentile(99);
  row.p999_us = latencies.Percentile(99.9);
  row.max_ms = latencies.max() / 1000.0;
  row.stall_micros = db->statistics()->write_stall_micros.load() +
                     db->statistics()->write_slowdown_micros.load();
  BenchCheck(db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  return row;
}

void Run() {
  Banner("E10: write-latency spikes and compaction throttling (SILK)",
         "unthrottled compactions cause tail-latency spikes; bandwidth-"
         "capped compactions with flush priority flatten p99.9 "
         "(tutorial §2.2.3, §2.3.2)");

  PrintHeader({"compaction limit", "kops/s", "p50 us", "p99 us", "p99.9 us",
               "max ms", "stall us"});
  struct Config {
    uint64_t limit;
    const char* name;
  };
  const Config configs[] = {
      {0, "unlimited"},
      {32ull << 20, "32 MiB/s"},
      {8ull << 20, "8 MiB/s"},
  };
  for (const auto& config : configs) {
    Row row = RunOne(config.limit);
    PrintRow({config.name, Fmt(row.throughput_kops), Fmt(row.p50_us, 1),
              Fmt(row.p99_us, 1), Fmt(row.p999_us, 1), Fmt(row.max_ms, 2),
              FmtInt(row.stall_micros)});
  }
  std::printf(
      "\nshape check: p99.9 and max latency shrink as the compaction cap "
      "tightens, while p50 and throughput change little — until the cap is "
      "so low that L0 backs up and stalls grow again.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
