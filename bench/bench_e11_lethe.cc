// E11 — Timely persistent deletion with tombstone TTLs (Lethe/FADE,
// tutorial §2.3.3).
//
// Claim: without delete-aware compaction, tombstones persist until ambient
// merge pressure happens to reach them — potentially unboundedly long. A
// tombstone TTL (FADE) forces files with overdue tombstones to compact,
// bounding delete persistence at a modest write-amplification premium.

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumKeys = 40000;
constexpr uint64_t kNumDeletes = 4000;

struct Row {
  double write_amp;
  uint64_t tombstones_dropped;
  uint64_t tombstones_remaining;
  uint64_t ttl_compactions;
};

Row RunOne(uint64_t ttl_micros, MockClock* clock) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.enable_wal = false;
  options.tombstone_ttl_micros = ttl_micros;
  options.clock = clock;
  options.file_pick_policy = FilePickPolicy::kMostTombstones;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  WriteOptions wo;
  // Phase 1: load the base data and settle it into deep levels.
  for (uint64_t i = 0; i < kNumKeys; ++i) {
    std::string key = WorkloadGenerator::FormatKey(i);
    std::string value = value_maker.MakeValue(key, 100);
    stack.user_bytes_written += key.size() + value.size();
    BenchCheck(stack.db->Put(wo, key, value), "Put");
    clock->Advance(10);
  }
  BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");

  // Phase 2: delete a spread of keys (GDPR-style erasure requests).
  Random rnd(77);
  for (uint64_t i = 0; i < kNumDeletes; ++i) {
    BenchCheck(stack.db->Delete(wo, WorkloadGenerator::FormatKey(rnd.Uniform(kNumKeys))), "Delete");
    stack.user_bytes_written += 20;
    clock->Advance(10);
  }
  BenchCheck(stack.db->Flush(), "Flush");
  BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");

  // Phase 3: light trickle of unrelated inserts while virtual time passes
  // beyond the TTL. Without FADE nothing forces the tombstones down.
  for (int step = 0; step < 50; ++step) {
    clock->Advance(ttl_micros > 0 ? ttl_micros / 10 : 1000000);
    for (int i = 0; i < 40; ++i) {
      std::string key =
          "zzz-trickle-" + std::to_string(step * 100 + i);  // Disjoint range.
      BenchCheck(stack.db->Put(wo, key, "x"), "Put");
      stack.user_bytes_written += key.size() + 1;
    }
    BenchCheck(stack.db->Flush(), "Flush");
    BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  }

  Row row;
  row.write_amp =
      stack.env->GetStats().WriteAmplification(stack.user_bytes_written);
  row.tombstones_dropped = stack.db->statistics()->tombstones_dropped.load();
  // Remaining tombstones = deletes whose persistence is still pending.
  uint64_t dropped = row.tombstones_dropped;
  row.tombstones_remaining = dropped >= kNumDeletes ? 0 : kNumDeletes - dropped;
  row.ttl_compactions = stack.db->statistics()->compactions.load();
  return row;
}

void Run() {
  Banner("E11: delete persistence with tombstone TTL (Lethe/FADE)",
         "a tombstone TTL bounds how long deletes stay logical, at a small "
         "write-amp premium (tutorial §2.3.3)");

  PrintHeader({"tombstone TTL", "write amp", "tombstones purged",
               "tombstones pending", "compactions"});
  struct Config {
    uint64_t ttl;
    const char* name;
  };
  const Config configs[] = {
      {0, "none (baseline)"},
      {60ull * 1000000, "60 s"},
      {10ull * 1000000, "10 s"},
  };
  for (const auto& config : configs) {
    MockClock clock(1000000);
    Row row = RunOne(config.ttl, &clock);
    PrintRow({config.name, Fmt(row.write_amp), FmtInt(row.tombstones_dropped),
              FmtInt(row.tombstones_remaining), FmtInt(row.ttl_compactions)});
  }
  std::printf(
      "\nshape check: with a TTL, pending tombstones drop to (near) zero "
      "once virtual time exceeds the TTL; the baseline leaves deletes "
      "logical indefinitely. Tighter TTLs cost more compactions.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
