// E12 — Block cache sizing and compaction-induced eviction (tutorial
// §2.1.3).
//
// Claim: hit ratio grows with cache size under skew; compactions invalidate
// cached blocks of their input files, knocking the hit ratio down right
// after they run; Leaper-style re-warming of compaction outputs restores it.

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumKeys = 60000;
constexpr uint64_t kReadsPerPhase = 15000;

struct Row {
  double hit_ratio_before;
  double hit_ratio_after;   // Right after a full compaction.
  double read_ios_after;
};

Row RunOne(size_t cache_bytes, bool rewarm) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.block_cache_capacity = cache_bytes;
  options.cache_rewarm_after_compaction = rewarm;
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  WriteOptions wo;
  for (uint64_t i = 0; i < kNumKeys; ++i) {
    std::string key = WorkloadGenerator::FormatKey(i);
    BenchCheck(stack.db->Put(wo, key, value_maker.MakeValue(key, 100)), "Put");
  }
  BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");

  // Phase 1: zipfian reads warm the cache; measure steady-state hits.
  ZipfianGenerator zipf(kNumKeys, 0.99, 11);
  ReadOptions ro;
  std::string value;
  for (uint64_t i = 0; i < kReadsPerPhase; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(zipf.Next()), &value);
  }
  stack.db->block_cache()->ResetStats();
  for (uint64_t i = 0; i < kReadsPerPhase; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(zipf.Next()), &value);
  }
  Row row;
  row.hit_ratio_before = stack.db->block_cache()->GetStats().HitRatio();

  // Phase 2: rewrite a third of the keys and force a full compaction: the
  // hot blocks belong to deleted input files afterwards.
  for (uint64_t i = 0; i < kNumKeys; i += 3) {
    std::string key = WorkloadGenerator::FormatKey(i);
    BenchCheck(stack.db->Put(wo, key, value_maker.MakeValue(key, 100)), "Put");
  }
  BenchCheck(stack.db->CompactRange(), "CompactRange");

  stack.db->block_cache()->ResetStats();
  stack.env->ResetStats();
  for (uint64_t i = 0; i < kReadsPerPhase; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(zipf.Next()), &value);
  }
  row.hit_ratio_after = stack.db->block_cache()->GetStats().HitRatio();
  row.read_ios_after = static_cast<double>(stack.env->GetStats().read_ops) /
                       static_cast<double>(kReadsPerPhase);
  return row;
}

void Run() {
  Banner("E12: block cache size and compaction-induced eviction",
         "compactions evict hot blocks with their input files; re-warming "
         "outputs (Leaper-style) restores the hit ratio (tutorial §2.1.3)");

  PrintHeader({"cache size", "re-warm", "hit ratio (steady)",
               "hit ratio (post-compaction)", "read I/O post"});
  for (size_t cache : {size_t{256} << 10, size_t{1} << 20, size_t{4} << 20}) {
    for (bool rewarm : {false, true}) {
      Row row = RunOne(cache, rewarm);
      PrintRow({FmtInt(cache >> 10) + " KiB", rewarm ? "yes" : "no",
                Fmt(row.hit_ratio_before, 3), Fmt(row.hit_ratio_after, 3),
                Fmt(row.read_ios_after, 3)});
    }
  }
  std::printf(
      "\nshape check: hit ratio rises with cache size; the post-compaction "
      "column drops vs steady state without re-warm and recovers with it.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
