// E13 — Cost-model fidelity and design-space navigation (tutorial §2.3.1).
//
// Claim: the closed-form model tracks the measured amplifications closely
// enough to rank designs, so the navigator's chosen design is at or near
// the empirically best one for a given mix.

#include <algorithm>

#include "bench/bench_util.h"
#include "tuning/navigator.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumInserts = 100000;
constexpr uint64_t kNumEmptyReads = 5000;

struct Measured {
  double write_amp;
  double empty_read_ios;
};

Measured MeasureDesign(DataLayout layout, int size_ratio) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.data_layout = layout;
  options.size_ratio = size_ratio;
  options.level0_file_num_compaction_trigger =
      layout == DataLayout::kLeveling ? 1 : size_ratio;
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }
  WorkloadSpec spec = WorkloadSpec::WriteOnly(kNumInserts);
  spec.value_size = 100;
  WorkloadGenerator gen(spec);
  BenchCheck(Load(&stack, &gen, kNumInserts), "Load");

  Measured m;
  m.write_amp =
      stack.env->GetStats().WriteAmplification(stack.user_bytes_written);

  stack.env->ResetStats();
  Random rnd(17);
  ReadOptions ro;
  std::string value;
  for (uint64_t i = 0; i < kNumEmptyReads; ++i) {
    BenchGet(stack.db.get(), 
        ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)) + "!x",
        &value);
  }
  m.empty_read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                     static_cast<double>(kNumEmptyReads);
  return m;
}

void Run() {
  Banner("E13: analytical model vs measurement; navigator sanity",
         "the closed-form cost model ranks designs the same way the "
         "measurements do (tutorial §2.3.1)");

  DataSpec data;
  data.num_entries = kNumInserts;
  data.entry_bytes = 120;

  PrintHeader({"layout", "T", "model write cost", "measured write amp",
               "model empty-read", "measured empty-read I/O"});
  struct Point {
    DataLayout layout;
    const char* name;
    int t;
    double model_write;
    double measured_write;
  };
  std::vector<Point> points;
  for (auto [layout, name] :
       std::vector<std::pair<DataLayout, const char*>>{
           {DataLayout::kLeveling, "leveling"},
           {DataLayout::kTiering, "tiering"},
           {DataLayout::kLazyLeveling, "lazy-leveling"}}) {
    for (int t : {3, 6, 10}) {
      LsmDesign design;
      design.layout = layout;
      design.size_ratio = t;
      design.buffer_bytes = 64 << 10;
      design.filter_bits_per_key = 10;
      CostModel model(design, data);
      Measured m = MeasureDesign(layout, t);
      // Model write cost is page I/Os per entry; convert to a write-amp
      // scale via entries-per-page for apples-to-apples.
      double model_write_amp =
          model.WriteCost() * data.EntriesPerPage() / 2.0;
      PrintRow({name, FmtInt(static_cast<uint64_t>(t)),
                Fmt(model_write_amp), Fmt(m.write_amp),
                Fmt(model.ZeroResultLookupCost(), 3),
                Fmt(m.empty_read_ios, 3)});
      points.push_back({layout, name, t, model_write_amp, m.write_amp});
    }
  }

  // Rank agreement on the layout dimension: at each T, does the model order
  // the layouts' write costs the same way the measurement does? (The
  // steady-state write formula is not meaningful for a tree still filling,
  // so absolute magnitudes and the T-sweep are indicative only.)
  int agreements = 0, comparisons = 0;
  for (int t : {3, 6, 10}) {
    std::vector<Point> at_t;
    for (const auto& p : points) {
      if (p.t == t) at_t.push_back(p);
    }
    for (size_t i = 0; i < at_t.size(); ++i) {
      for (size_t j = i + 1; j < at_t.size(); ++j) {
        ++comparisons;
        bool model_says = at_t[i].model_write < at_t[j].model_write;
        bool measured_says = at_t[i].measured_write < at_t[j].measured_write;
        if (model_says == measured_says) {
          ++agreements;
        }
      }
    }
  }
  std::printf(
      "\nlayout-ordering agreement at fixed T (pairwise): %d / %d\n",
      agreements, comparisons);

  std::printf("\nnavigator picks for three mixes (50M x 128B entries, "
              "64 MiB memory):\n");
  DataSpec nav_data;
  nav_data.num_entries = 50'000'000;
  nav_data.entry_bytes = 128;
  DesignSpaceSpec space;
  space.max_size_ratio = 10;
  PrintHeader({"mix", "chosen design"});
  PrintRow({"write-heavy (0.9/0.05/0.03/0.02)",
            NominalTuning(space, nav_data, WorkloadMix(0.9, 0.05, 0.03, 0.02))
                .Label()});
  PrintRow({"balanced   (0.25 each)",
            NominalTuning(space, nav_data,
                          WorkloadMix(0.25, 0.25, 0.25, 0.25))
                .Label()});
  PrintRow({"read-heavy (0.05/0.55/0.2/0.2)",
            NominalTuning(space, nav_data, WorkloadMix(0.05, 0.55, 0.2, 0.2))
                .Label()});
  std::printf(
      "\nshape check: model and measurement agree on who wins (tiering "
      "lowest write amp, leveling lowest read I/O); the navigator moves "
      "from tiering toward leveling as the mix shifts to reads.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
