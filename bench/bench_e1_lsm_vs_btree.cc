// E1 — LSM vs in-place B+-tree (tutorial §1, §2.1.1-A/B).
//
// Claim: out-of-place, batched LSM ingestion sustains far higher write
// throughput (and far lower write amplification) than an in-place B+-tree;
// the B+-tree answers point reads with fewer logical I/Os.

// Both engines run over the same emulated NVMe device (LatencyEnv): on a
// pure in-memory substrate the I/O cost the LSM design exists to avoid would
// be free and the comparison meaningless (DESIGN.md substitution table).
// WAL / logging is disabled on both sides to compare the index structures.

#include <memory>

#include "bench/bench_util.h"
#include "btree/bptree.h"
#include "io/latency_env.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumInserts = 30000;
constexpr uint64_t kNumReads = 5000;
constexpr size_t kValueSize = 100;

DeviceModel BenchDevice() {
  DeviceModel device;
  device.per_op_latency_micros = 20;            // NVMe-class op cost.
  device.bandwidth_bytes_per_sec = 2ull << 30;  // 2 GiB/s streaming.
  return device;
}

struct EngineResult {
  double insert_kops;
  double write_amp;
  double read_kops;
  double read_io_per_op;
};

EngineResult RunLsm() {
  auto mem_env = std::make_unique<MemEnv>();
  auto lat_env = std::make_unique<LatencyEnv>(mem_env.get(), BenchDevice(),
                                              SystemClock());
  auto env = std::make_unique<CountingEnv>(lat_env.get());

  Options options = SmallTreeOptions();
  options.env = env.get();
  options.enable_wal = false;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/bench", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }
  TestStack stack;  // Only used as a holder below.
  stack.db = std::move(db);
  stack.env = std::move(env);
  stack.mem_env = std::move(mem_env);
  static std::unique_ptr<LatencyEnv> latency_keepalive;
  latency_keepalive = std::move(lat_env);

  WorkloadSpec spec = WorkloadSpec::WriteOnly(kNumInserts);
  spec.value_size = kValueSize;
  // Random insertion order: the hard case for in-place trees.
  spec.distribution = KeyDistribution::kUniform;
  WorkloadGenerator gen(spec);

  uint64_t t0 = SystemClock()->NowMicros();
  BenchCheck(Load(&stack, &gen, kNumInserts), "Load");
  uint64_t insert_micros = SystemClock()->NowMicros() - t0;
  IoStats io = stack.env->GetStats();
  double write_amp = io.WriteAmplification(stack.user_bytes_written);

  stack.env->ResetStats();
  Random rnd(99);
  ReadOptions ro;
  std::string value;
  t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < kNumReads; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)),
                  &value);
  }
  uint64_t read_micros = SystemClock()->NowMicros() - t0;
  IoStats read_io = stack.env->GetStats();

  EngineResult r;
  r.insert_kops = static_cast<double>(kNumInserts) * 1000.0 /
                  static_cast<double>(insert_micros);
  r.write_amp = write_amp;
  r.read_kops = static_cast<double>(kNumReads) * 1000.0 /
                static_cast<double>(read_micros);
  r.read_io_per_op = static_cast<double>(read_io.read_ops) /
                     static_cast<double>(kNumReads);
  return r;
}

EngineResult RunBtree() {
  auto mem_env = std::make_unique<MemEnv>();
  auto lat_env = std::make_unique<LatencyEnv>(mem_env.get(), BenchDevice(),
                                              SystemClock());
  auto env = std::make_unique<CountingEnv>(lat_env.get());
  BPlusTreeOptions opt;
  opt.cache_pages = 256;  // Same order of memory as the LSM block cache.
  std::unique_ptr<BPlusTree> tree;
  Status s = BPlusTree::Open(opt, env.get(), "/tree", &tree);
  if (!s.ok()) {
    std::fprintf(stderr, "btree open failed: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadSpec spec = WorkloadSpec::WriteOnly(kNumInserts);
  spec.value_size = kValueSize;
  WorkloadGenerator gen(spec);

  uint64_t user_bytes = 0;
  uint64_t t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < kNumInserts; ++i) {
    Operation op = gen.Next();
    std::string value = gen.MakeValue(op.key, op.value_size);
    user_bytes += op.key.size() + value.size();
    BenchCheck(tree->Insert(op.key, value), "BPlusTree::Insert");
  }
  BenchCheck(tree->Flush(), "BPlusTree::Flush");
  uint64_t insert_micros = SystemClock()->NowMicros() - t0;
  IoStats io = env->GetStats();
  double write_amp = io.WriteAmplification(user_bytes);

  env->ResetStats();
  Random rnd(99);
  std::string value;
  t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < kNumReads; ++i) {
    Status gs =
        tree->Get(WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)),
                  &value);
    if (!gs.ok() && !gs.IsNotFound()) {
      BenchCheck(gs, "BPlusTree::Get");
    }
  }
  uint64_t read_micros = SystemClock()->NowMicros() - t0;
  IoStats read_io = env->GetStats();

  EngineResult r;
  r.insert_kops = static_cast<double>(kNumInserts) * 1000.0 /
                  static_cast<double>(insert_micros);
  r.write_amp = write_amp;
  r.read_kops = static_cast<double>(kNumReads) * 1000.0 /
                static_cast<double>(read_micros);
  r.read_io_per_op = static_cast<double>(read_io.read_ops) /
                     static_cast<double>(kNumReads);
  return r;
}

void Run() {
  Banner("E1: LSM-tree vs in-place B+-tree",
         "LSM ingests much faster with lower write amplification; the "
         "B+-tree pays a page write per update (tutorial §1, §2.1.1)");

  EngineResult lsm = RunLsm();
  EngineResult btree = RunBtree();

  PrintHeader({"engine", "insert kops/s", "write amp", "read kops/s",
               "read I/Os per lookup"});
  PrintRow({"lsm-tree (1-leveling)", Fmt(lsm.insert_kops), Fmt(lsm.write_amp),
            Fmt(lsm.read_kops), Fmt(lsm.read_io_per_op)});
  PrintRow({"b+tree (in-place)", Fmt(btree.insert_kops), Fmt(btree.write_amp),
            Fmt(btree.read_kops), Fmt(btree.read_io_per_op)});
  std::printf(
      "\nshape check: LSM insert throughput %.1fx the B+-tree; "
      "B+-tree write amp %.1fx the LSM.\n",
      lsm.insert_kops / btree.insert_kops,
      btree.write_amp / lsm.write_amp);
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
