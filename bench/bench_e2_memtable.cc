// E2 — Memtable (buffer) implementations (tutorial §2.2.1).
//
// Claim: a vector buffer has the highest insert throughput for write-only
// workloads, but collapses under interleaved reads (each read re-sorts);
// a skip list balances both. Hashed reps excel at point reads and pay on
// ordered scans. Uses google-benchmark timing over the raw MemTableRep.

#include <benchmark/benchmark.h>

#include "db/dbformat.h"
#include "memtable/memtable.h"
#include "util/comparator.h"
#include "util/random.h"
#include "workload/workload.h"

namespace lsmlab {
namespace {

MemTableRepType RepFor(int64_t index) {
  switch (index) {
    case 0:
      return MemTableRepType::kSkipList;
    case 1:
      return MemTableRepType::kVector;
    case 2:
      return MemTableRepType::kHashSkipList;
    default:
      return MemTableRepType::kHashLinkList;
  }
}

const char* RepName(int64_t index) {
  return MemTableRepTypeName(RepFor(index));
}

/// Write-only fill: the vector rep should dominate here.
void BM_MemTableFillSequentialWrites(benchmark::State& state) {
  const MemTableRepType rep = RepFor(state.range(0));
  InternalKeyComparator icmp(BytewiseComparator());
  for (auto _ : state) {
    MemTable table(&icmp, rep, 4096);
    SequenceNumber seq = 1;
    for (int i = 0; i < 20000; ++i) {
      table.Add(seq++, kTypeValue, WorkloadGenerator::FormatKey(
                                       static_cast<uint64_t>(i)),
                "value-payload-100-bytes");
    }
    benchmark::DoNotOptimize(table.Count());
  }
  state.SetLabel(RepName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_MemTableFillSequentialWrites)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Interleaved get/put: the tutorial's "mixed workload" case where the
/// vector rep degrades (it re-sorts on every read after a write).
void BM_MemTableMixedReadWrite(benchmark::State& state) {
  const MemTableRepType rep = RepFor(state.range(0));
  InternalKeyComparator icmp(BytewiseComparator());
  for (auto _ : state) {
    MemTable table(&icmp, rep, 4096);
    Random rnd(7);
    SequenceNumber seq = 1;
    std::string value;
    ValueType type;
    for (int i = 0; i < 4000; ++i) {
      std::string key = WorkloadGenerator::FormatKey(rnd.Uniform(4000));
      table.Add(seq++, kTypeValue, key, "v");
      // One read per write: worst case for sort-on-read reps.
      LookupKey lkey(WorkloadGenerator::FormatKey(rnd.Uniform(4000)),
                     kMaxSequenceNumber);
      benchmark::DoNotOptimize(table.Get(lkey, &value, &type));
    }
  }
  state.SetLabel(RepName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_MemTableMixedReadWrite)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Point-read-only over a filled buffer: hashed reps shine.
void BM_MemTablePointReads(benchmark::State& state) {
  const MemTableRepType rep = RepFor(state.range(0));
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable table(&icmp, rep, 4096);
  SequenceNumber seq = 1;
  for (int i = 0; i < 20000; ++i) {
    table.Add(seq++, kTypeValue,
              WorkloadGenerator::FormatKey(static_cast<uint64_t>(i)), "v");
  }
  Random rnd(13);
  std::string value;
  ValueType type;
  for (auto _ : state) {
    LookupKey lkey(WorkloadGenerator::FormatKey(rnd.Uniform(20000)),
                   kMaxSequenceNumber);
    benchmark::DoNotOptimize(table.Get(lkey, &value, &type));
  }
  state.SetLabel(RepName(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTablePointReads)->DenseRange(0, 3);

/// Full ordered scan (what a flush does): hashed reps pay a sort.
void BM_MemTableOrderedScan(benchmark::State& state) {
  const MemTableRepType rep = RepFor(state.range(0));
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable table(&icmp, rep, 4096);
  SequenceNumber seq = 1;
  Random rnd(3);
  for (int i = 0; i < 20000; ++i) {
    table.Add(seq++, kTypeValue,
              WorkloadGenerator::FormatKey(rnd.Uniform(10000000)), "v");
  }
  for (auto _ : state) {
    auto iter = table.NewIterator();
    uint64_t count = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel(RepName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_MemTableOrderedScan)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lsmlab

BENCHMARK_MAIN();
