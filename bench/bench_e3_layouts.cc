// E3 — Disk data layouts × size ratio T (tutorial §2.1.2, §2.2.2, §2.2.4).
//
// Claim: tiering minimizes write amplification at the cost of more sorted
// runs (worse point/range reads, more space); leveling is the opposite;
// lazy-leveling (Dostoevsky) keeps tiering-like writes with leveling-like
// point reads. Larger T flattens the tree: fewer levels, cheaper reads
// under leveling / costlier under tiering.

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumInserts = 120000;
constexpr uint64_t kUpdatesPerKeySpace = 3;  // Updates force merge work.
constexpr uint64_t kNumPointReads = 4000;
constexpr uint64_t kNumEmptyReads = 4000;
constexpr uint64_t kNumScans = 300;

struct Row {
  double write_amp;
  double read_ios;
  double empty_read_ios;
  double scan_ios;
  double space_amp;
  int runs;
};

Row RunOne(DataLayout layout, int size_ratio) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.data_layout = layout;
  options.size_ratio = size_ratio;
  options.level0_file_num_compaction_trigger =
      layout == DataLayout::kLeveling ? 1 : size_ratio;
  options.enable_wal = false;  // Isolate tree I/O from logging.
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  // Ingest with updates so compactions have shadowed data to merge.
  const uint64_t key_space = kNumInserts / kUpdatesPerKeySpace;
  WriteOptions wo;
  Random rnd(42);
  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  for (uint64_t i = 0; i < kNumInserts; ++i) {
    std::string key = WorkloadGenerator::FormatKey(rnd.Uniform(key_space));
    BenchCheck(stack.db->Put(wo, key, value_maker.MakeValue(key, 100)), "Put");
    stack.user_bytes_written += key.size() + 100;
  }
  BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");

  Row row;
  IoStats io = stack.env->GetStats();
  row.write_amp = io.WriteAmplification(stack.user_bytes_written);
  row.runs = stack.db->TotalSortedRuns();
  uint64_t live_bytes = stack.user_bytes_written / kUpdatesPerKeySpace;
  row.space_amp = static_cast<double>(stack.db->TotalSstBytes()) /
                  static_cast<double>(live_bytes);

  // Point reads of existing keys.
  stack.env->ResetStats();
  ReadOptions ro;
  std::string value;
  for (uint64_t i = 0; i < kNumPointReads; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(rnd.Uniform(key_space)),
                  &value);
  }
  row.read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                 static_cast<double>(kNumPointReads);

  // Zero-result reads (inside the key range; only filters help).
  stack.env->ResetStats();
  for (uint64_t i = 0; i < kNumEmptyReads; ++i) {
    BenchGet(stack.db.get(), 
        ro, WorkloadGenerator::FormatKey(rnd.Uniform(key_space)) + "!absent",
        &value);
  }
  row.empty_read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                       static_cast<double>(kNumEmptyReads);

  // Short scans: touch every run.
  stack.env->ResetStats();
  for (uint64_t i = 0; i < kNumScans; ++i) {
    auto iter = stack.db->NewIterator(ro);
    int remaining = 20;
    for (iter->Seek(WorkloadGenerator::FormatKey(rnd.Uniform(key_space)));
         iter->Valid() && remaining > 0; iter->Next()) {
      --remaining;
    }
  }
  row.scan_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                 static_cast<double>(kNumScans);
  return row;
}

void Run() {
  Banner("E3: data layouts x size ratio T",
         "tiering = cheap writes / costly reads & space; leveling = the "
         "reverse; lazy-leveling in between (tutorial §2.2.2, §2.2.4)");

  PrintHeader({"layout", "T", "write amp", "pt-read I/O", "empty-read I/O",
               "scan I/O", "space amp", "runs"});
  struct Config {
    DataLayout layout;
    const char* name;
  };
  const Config configs[] = {
      {DataLayout::kLeveling, "leveling"},
      {DataLayout::kTiering, "tiering"},
      {DataLayout::kLazyLeveling, "lazy-leveling"},
      {DataLayout::kOneLeveling, "1-leveling"},
  };
  for (const auto& config : configs) {
    for (int t : {2, 4, 6, 10}) {
      Row row = RunOne(config.layout, t);
      PrintRow({config.name, FmtInt(static_cast<uint64_t>(t)),
                Fmt(row.write_amp), Fmt(row.read_ios), Fmt(row.empty_read_ios),
                Fmt(row.scan_ios), Fmt(row.space_amp),
                FmtInt(static_cast<uint64_t>(row.runs))});
    }
  }
  std::printf(
      "\nshape check: for each T, write amp should order "
      "tiering < lazy-leveling < leveling, and scan I/O the reverse.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
