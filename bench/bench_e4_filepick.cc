// E4 — Partial compaction file-picking policies (tutorial §2.2.3).
//
// Claim: with partial compaction, *which* file is picked matters:
// least-overlap minimizes write amplification; most-tombstones purges
// deletes earliest (fewest lingering tombstones); round-robin is the
// neutral baseline. Whole-level compaction moves the most data per job.

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kOps = 150000;

struct Row {
  double write_amp;
  uint64_t compactions;
  uint64_t lingering_tombstones;
};

Row RunOne(CompactionGranularity granularity, FilePickPolicy policy) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.data_layout = DataLayout::kOneLeveling;
  options.compaction_granularity = granularity;
  options.file_pick_policy = policy;
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  // Update + delete heavy workload over a modest key space: compactions
  // constantly have shadowed entries and tombstones to deal with.
  WorkloadSpec spec;
  spec.num_preloaded_keys = 20000;
  spec.update_fraction = 0.55;
  spec.delete_fraction = 0.15;
  spec.value_size = 100;
  spec.seed = 7;
  WorkloadGenerator gen(spec);

  // Preload.
  BenchCheck(Load(&stack, &gen, spec.num_preloaded_keys), "Load");

  WriteOptions wo;
  for (uint64_t i = 0; i < kOps; ++i) {
    Operation op = gen.Next();
    if (op.type == Operation::Type::kDelete) {
      BenchCheck(stack.db->Delete(wo, op.key), "Delete");
      stack.user_bytes_written += op.key.size();
    } else {
      std::string value = gen.MakeValue(op.key, 100);
      BenchCheck(stack.db->Put(wo, op.key, value), "Put");
      stack.user_bytes_written += op.key.size() + value.size();
    }
  }
  BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");

  Row row;
  IoStats io = stack.env->GetStats();
  row.write_amp = io.WriteAmplification(stack.user_bytes_written);
  row.compactions = stack.db->statistics()->compactions.load();

  // Tombstones still alive anywhere in the tree = deletes not yet persisted.
  // (Dropped-tombstone count is the complement.)
  row.lingering_tombstones =
      stack.db->statistics()->tombstones_dropped.load();
  return row;
}

void Run() {
  Banner("E4: compaction granularity and file-picking policy",
         "partial compaction amortizes I/O; least-overlap minimizes write "
         "amp; most-tombstones purges deletes earliest (tutorial §2.2.3)");

  PrintHeader({"granularity/policy", "write amp", "compactions",
               "tombstones purged"});
  {
    Row row = RunOne(CompactionGranularity::kWholeLevel,
                     FilePickPolicy::kRoundRobin);
    PrintRow({"whole-level", Fmt(row.write_amp), FmtInt(row.compactions),
              FmtInt(row.lingering_tombstones)});
  }
  struct Policy {
    FilePickPolicy policy;
    const char* name;
  };
  const Policy policies[] = {
      {FilePickPolicy::kRoundRobin, "partial/round-robin"},
      {FilePickPolicy::kLeastOverlap, "partial/least-overlap"},
      {FilePickPolicy::kMostTombstones, "partial/most-tombstones"},
      {FilePickPolicy::kOldestFirst, "partial/oldest-first"},
      {FilePickPolicy::kWidestRange, "partial/widest-range"},
  };
  for (const auto& p : policies) {
    Row row = RunOne(CompactionGranularity::kPartial, p.policy);
    PrintRow({p.name, Fmt(row.write_amp), FmtInt(row.compactions),
              FmtInt(row.lingering_tombstones)});
  }
  std::printf(
      "\nshape check: least-overlap should have the lowest write amp of the "
      "partial policies; most-tombstones the highest purge count.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
