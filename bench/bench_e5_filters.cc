// E5 — Point-query filters and the Monkey allocation (tutorial §2.1.3).
//
// Claim: Bloom filters eliminate almost all superfluous run probes for
// zero-result lookups; for a fixed memory budget, Monkey's per-level
// allocation beats uniform bits-per-key on expected I/Os.

#include "bench/bench_util.h"
#include "tuning/monkey.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumInserts = 150000;
constexpr uint64_t kNumEmptyReads = 10000;
constexpr uint64_t kNumReads = 10000;

struct Row {
  double empty_read_ios;   // Disk read ops per zero-result lookup.
  double read_ios;         // Per existing-key lookup.
  double filter_fpr;       // Measured false-positive rate.
  double runs_skipped_per_empty;
};

Row RunOne(double bits_per_key, FilterAllocation allocation) {
  TestStack stack;
  Options options = SmallTreeOptions();
  // Tiering gives many runs: the setting where filters matter most.
  options.data_layout = DataLayout::kTiering;
  options.size_ratio = 4;
  options.filter_policy =
      bits_per_key > 0 ? NewBloomFilterPolicy(bits_per_key) : nullptr;
  options.filter_allocation = allocation;
  options.filter_bits_per_key = bits_per_key;
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadSpec spec = WorkloadSpec::WriteOnly(kNumInserts);
  spec.value_size = 64;
  WorkloadGenerator gen(spec);
  BenchCheck(Load(&stack, &gen, kNumInserts), "Load");

  Row row;
  Random rnd(21);
  ReadOptions ro;
  std::string value;

  stack.db->statistics()->Reset();
  stack.env->ResetStats();
  for (uint64_t i = 0; i < kNumEmptyReads; ++i) {
    BenchGet(stack.db.get(), 
        ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)) + "!none",
        &value);
  }
  row.empty_read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                       static_cast<double>(kNumEmptyReads);
  row.filter_fpr = stack.db->statistics()->FilterFalsePositiveRate();
  row.runs_skipped_per_empty =
      static_cast<double>(
          stack.db->statistics()->runs_skipped_by_filter.load()) /
      static_cast<double>(kNumEmptyReads);

  stack.env->ResetStats();
  for (uint64_t i = 0; i < kNumReads; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)),
                  &value);
  }
  row.read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                 static_cast<double>(kNumReads);
  return row;
}

void Run() {
  Banner("E5: Bloom filters and Monkey allocation",
         "filters cut zero-result lookup I/O by orders of magnitude; Monkey "
         "beats uniform allocation at equal memory (tutorial §2.1.3)");

  PrintHeader({"filter config", "empty-read I/O", "pt-read I/O",
               "measured FPR", "runs skipped/empty-read"});
  {
    Row row = RunOne(0, FilterAllocation::kUniform);
    PrintRow({"no filter", Fmt(row.empty_read_ios), Fmt(row.read_ios),
              Fmt(row.filter_fpr, 4), Fmt(row.runs_skipped_per_empty)});
  }
  for (double bits : {2.0, 5.0, 10.0}) {
    Row row = RunOne(bits, FilterAllocation::kUniform);
    char label[64];
    std::snprintf(label, sizeof(label), "uniform %.0f bits/key", bits);
    PrintRow({label, Fmt(row.empty_read_ios), Fmt(row.read_ios),
              Fmt(row.filter_fpr, 4), Fmt(row.runs_skipped_per_empty)});
  }
  for (double bits : {2.0, 5.0, 10.0}) {
    Row row = RunOne(bits, FilterAllocation::kMonkey);
    char label[64];
    std::snprintf(label, sizeof(label), "monkey %.0f bits/key", bits);
    PrintRow({label, Fmt(row.empty_read_ios), Fmt(row.read_ios),
              Fmt(row.filter_fpr, 4), Fmt(row.runs_skipped_per_empty)});
  }

  // Model-side comparison at matching parameters.
  std::printf("\nanalytical expectation (sum of per-run FPRs, 5 bits/key):\n");
  auto monkey_bits = MonkeyBitsPerLevel(5.0, 4, 4);
  std::vector<double> uniform_bits(4, 5.0);
  std::printf("  uniform: %.3f expected superfluous I/Os\n",
              ExpectedFalsePositiveIos(uniform_bits));
  std::printf("  monkey : %.3f expected superfluous I/Os\n",
              ExpectedFalsePositiveIos(monkey_bits));
  std::printf(
      "\nshape check: empty-read I/O drops steeply with bits/key; monkey <= "
      "uniform at every budget.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
