// E6 — Range filters (tutorial §2.1.3).
//
// Claim: range filters avoid probing runs that cannot contain any key of
// the queried range. Rosetta (hierarchical Blooms) excels at short ranges;
// prefix Blooms handle long ranges that align with coarse prefixes. Without
// a range filter every run is probed.

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "filter/range_filter.h"

namespace lsmlab::bench {
namespace {

constexpr int kNumRuns = 16;
constexpr int kKeysPerRun = 8000;
constexpr uint64_t kKeySpace = 400000000;
constexpr int kNumQueries = 3000;

uint64_t NumCodec(const Slice& key) {
  uint64_t v = 0;
  for (size_t i = 4; i < key.size(); ++i) {  // Skip the "user" prefix.
    char c = key[i];
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

struct Result {
  double probes_per_query;      // Runs touched per range query.
  double useless_probe_ratio;   // Probes that found nothing in range.
  size_t memory_bytes;
};

enum class FilterKind { kNone, kPrefix, kRosetta };

Result RunOne(FilterKind kind, uint64_t range_width,
              const std::vector<std::set<uint64_t>>& runs) {
  // Build one filter per run.
  std::vector<std::unique_ptr<RangeFilter>> filters;
  size_t memory = 0;
  if (kind != FilterKind::kNone) {
    for (const auto& run : runs) {
      std::unique_ptr<RangeFilter> f;
      if (kind == FilterKind::kPrefix) {
        // 12-digit prefixes: each covers 1e3 consecutive keys (long-range
        // oriented resolution at this key density).
        f = NewPrefixBloomRangeFilter(4 + 12, 14.0);
      } else {
        f = NewRosettaRangeFilter(24.0, 22, NumCodec);
      }
      for (uint64_t k : run) {
        f->AddKey(WorkloadGenerator::FormatKey(k));
      }
      f->Finish();
      memory += f->MemoryUsage();
      filters.push_back(std::move(f));
    }
  }

  Random rnd(5);
  uint64_t probes = 0, useless = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    uint64_t lo = rnd.Uniform(kKeySpace - range_width);
    uint64_t hi = lo + range_width - 1;
    std::string lo_key = WorkloadGenerator::FormatKey(lo);
    std::string hi_key = WorkloadGenerator::FormatKey(hi);
    for (int r = 0; r < kNumRuns; ++r) {
      if (kind != FilterKind::kNone &&
          !filters[static_cast<size_t>(r)]->MayContainRange(lo_key, hi_key)) {
        continue;  // Run skipped: no disk touch.
      }
      ++probes;
      auto it = runs[static_cast<size_t>(r)].lower_bound(lo);
      bool hit = it != runs[static_cast<size_t>(r)].end() && *it <= hi;
      if (!hit) {
        ++useless;
      }
    }
  }
  Result result;
  result.probes_per_query =
      static_cast<double>(probes) / static_cast<double>(kNumQueries);
  result.useless_probe_ratio =
      probes == 0 ? 0
                  : static_cast<double>(useless) / static_cast<double>(probes);
  result.memory_bytes = memory;
  return result;
}

void Run() {
  Banner("E6: range filters for short and long scans",
         "range filters skip runs with no key in the queried range; Rosetta "
         "fits short ranges, prefix Bloom long ranges (tutorial §2.1.3)");

  // Synthesize the runs of a tiered tree: each run holds random keys.
  Random rnd(31);
  std::vector<std::set<uint64_t>> runs(kNumRuns);
  for (auto& run : runs) {
    while (run.size() < kKeysPerRun) {
      run.insert(rnd.Uniform(kKeySpace));
    }
  }

  PrintHeader({"filter", "range width", "runs probed/query",
               "useless probes", "filter KiB/run"});
  struct Config {
    FilterKind kind;
    const char* name;
  };
  const Config configs[] = {
      {FilterKind::kNone, "none"},
      {FilterKind::kPrefix, "prefix-bloom"},
      {FilterKind::kRosetta, "rosetta"},
  };
  for (uint64_t width : {16ull, 256ull, 100000ull}) {
    for (const auto& config : configs) {
      Result r = RunOne(config.kind, width, runs);
      PrintRow({config.name, FmtInt(width), Fmt(r.probes_per_query),
                Fmt(r.useless_probe_ratio),
                Fmt(static_cast<double>(r.memory_bytes) / 1024.0 / kNumRuns)});
    }
  }
  std::printf(
      "\nshape check: without filters every query probes all %d runs; "
      "rosetta wins on short ranges, prefix-bloom narrows the gap as ranges "
      "lengthen.\n",
      kNumRuns);
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
