// E7 — Memory split between buffer and filters (tutorial §2.1.3, §2.3.1).
//
// Claim: for a fixed memory budget, the buffer/filter split navigates the
// RUM tradeoff: all-buffer minimizes write cost (fewer, larger flushes)
// but leaves lookups unprotected; all-filter does the reverse. A balanced
// split sits near the workload-optimal point, which shifts with the mix.

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kMemoryBudget = 1 << 20;  // 1 MiB to split.
constexpr uint64_t kNumInserts = 120000;
constexpr uint64_t kNumEmptyReads = 8000;

struct Row {
  double write_amp;
  double empty_read_ios;
  double mixed_cost;  // write_amp weighted + empty read I/O weighted.
};

Row RunOne(double buffer_fraction, double write_weight) {
  TestStack stack;
  Options options = SmallTreeOptions();
  uint64_t buffer = static_cast<uint64_t>(
      static_cast<double>(kMemoryBudget) * buffer_fraction);
  options.write_buffer_size = std::max<uint64_t>(buffer, 16 << 10);
  uint64_t filter_bytes = kMemoryBudget - buffer;
  double bits_per_key = static_cast<double>(filter_bytes) * 8.0 /
                        static_cast<double>(kNumInserts);
  options.filter_policy =
      bits_per_key >= 0.5 ? NewBloomFilterPolicy(bits_per_key) : nullptr;
  options.filter_bits_per_key = bits_per_key;
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadSpec spec = WorkloadSpec::WriteOnly(kNumInserts);
  spec.value_size = 64;
  WorkloadGenerator gen(spec);
  BenchCheck(Load(&stack, &gen, kNumInserts), "Load");

  Row row;
  row.write_amp =
      stack.env->GetStats().WriteAmplification(stack.user_bytes_written);

  stack.env->ResetStats();
  Random rnd(3);
  ReadOptions ro;
  std::string value;
  for (uint64_t i = 0; i < kNumEmptyReads; ++i) {
    BenchGet(stack.db.get(), 
        ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)) + "!nil",
        &value);
  }
  row.empty_read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                       static_cast<double>(kNumEmptyReads);
  row.mixed_cost = write_weight * row.write_amp +
                   (1 - write_weight) * row.empty_read_ios * 10.0;
  return row;
}

void Run() {
  Banner("E7: buffer-vs-filter memory split (RUM navigation)",
         "all-buffer favors writes, all-filter favors lookups; the optimum "
         "moves with the workload mix (tutorial §2.1.3, §2.3.1)");

  const double kFractions[] = {0.06, 0.125, 0.25, 0.5, 0.75, 0.94};
  PrintHeader({"buffer %", "filter bits/key", "write amp", "empty-read I/O",
               "write-heavy cost", "read-heavy cost"});
  for (double fraction : kFractions) {
    Row write_view = RunOne(fraction, 0.9);
    Row read_view = RunOne(fraction, 0.1);
    double bits = (1 - fraction) * kMemoryBudget * 8.0 / kNumInserts;
    PrintRow({Fmt(fraction * 100, 0), Fmt(bits, 1), Fmt(write_view.write_amp),
              Fmt(write_view.empty_read_ios), Fmt(write_view.mixed_cost),
              Fmt(read_view.mixed_cost)});
  }
  std::printf(
      "\nshape check: write amp falls as the buffer share grows; empty-read "
      "I/O rises once filter bits/key drop below ~5. The cost-minimizing "
      "split differs between the write-heavy and read-heavy columns.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
