// E8 — Key-value separation (WiscKey, tutorial §2.2.2).
//
// Claim: storing values in a separate log and only (key, pointer) in the
// LSM slashes compaction traffic — write amplification drops by roughly the
// value/key size ratio (the paper reports ~4x and faster loads), growing
// with value size. Point reads pay one extra vlog seek.

#include "bench/bench_util.h"

namespace lsmlab::bench {
namespace {

constexpr uint64_t kNumInserts = 15000;
constexpr uint64_t kUpdateRounds = 2;
constexpr uint64_t kNumReads = 3000;

struct Row {
  double write_amp;
  double load_kops;
  double read_ios;
};

Row RunOne(bool kv_separation, size_t value_size) {
  TestStack stack;
  Options options = SmallTreeOptions();
  options.kv_separation = kv_separation;
  options.kv_separation_threshold = 64;
  options.enable_wal = false;
  Status s = stack.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return {};
  }

  WorkloadGenerator value_maker(WorkloadSpec::WriteOnly(1));
  WriteOptions wo;
  Random rnd(9);
  uint64_t t0 = SystemClock()->NowMicros();
  // Insert then update: updates force the merge traffic that separation
  // avoids moving values through.
  for (uint64_t round = 0; round <= kUpdateRounds; ++round) {
    for (uint64_t i = 0; i < kNumInserts; ++i) {
      std::string key = WorkloadGenerator::FormatKey(i);
      std::string value = value_maker.MakeValue(key, value_size);
      stack.user_bytes_written += key.size() + value.size();
      BenchCheck(stack.db->Put(wo, key, value), "Put");
    }
  }
  BenchCheck(stack.db->WaitForBackgroundWork(), "WaitForBackgroundWork");
  uint64_t micros = SystemClock()->NowMicros() - t0;

  Row row;
  row.write_amp =
      stack.env->GetStats().WriteAmplification(stack.user_bytes_written);
  row.load_kops = static_cast<double>(kNumInserts * (kUpdateRounds + 1)) *
                  1000.0 / static_cast<double>(micros);

  stack.env->ResetStats();
  ReadOptions ro;
  std::string value;
  for (uint64_t i = 0; i < kNumReads; ++i) {
    BenchGet(stack.db.get(), ro, WorkloadGenerator::FormatKey(rnd.Uniform(kNumInserts)),
                  &value);
  }
  row.read_ios = static_cast<double>(stack.env->GetStats().read_ops) /
                 static_cast<double>(kNumReads);
  return row;
}

void Run() {
  Banner("E8: WiscKey key-value separation",
         "separating values into a log cuts write amplification roughly by "
         "the value:entry size ratio; reads pay one vlog access "
         "(tutorial §2.2.2)");

  PrintHeader({"value size", "engine", "write amp", "load kops/s",
               "read I/O/lookup"});
  for (size_t value_size : {64u, 256u, 1024u, 4096u}) {
    Row plain = RunOne(false, value_size);
    Row sep = RunOne(true, value_size);
    PrintRow({FmtInt(value_size), "lsm", Fmt(plain.write_amp),
              Fmt(plain.load_kops), Fmt(plain.read_ios)});
    PrintRow({FmtInt(value_size), "lsm+vlog", Fmt(sep.write_amp),
              Fmt(sep.load_kops), Fmt(sep.read_ios)});
  }
  std::printf(
      "\nshape check: the write-amp gap (lsm / lsm+vlog) widens with value "
      "size, crossing ~4x for KB-scale values; lsm+vlog reads cost ~1 extra "
      "I/O.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
