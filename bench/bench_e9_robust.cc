// E9 — Robust vs nominal tuning under workload shift (Endure, §2.3.2).
//
// Claim: tuning for the expected workload is optimal when the expectation
// holds but degrades sharply when the observed workload shifts; min-max
// robust tuning gives up a little nominal performance for far better
// worst-case behaviour.

#include "bench/bench_util.h"
#include "tuning/navigator.h"

namespace lsmlab::bench {
namespace {

void Run() {
  Banner("E9: nominal vs robust (Endure-style) tuning",
         "robust tuning minimizes worst-case cost within a workload "
         "neighbourhood, trading a sliver of nominal optimality "
         "(tutorial §2.3.2)");

  DataSpec data;
  data.num_entries = 50'000'000;
  data.entry_bytes = 128;
  DesignSpaceSpec space;
  space.max_size_ratio = 12;

  // Believed write-heavy; in production the mix may drift toward reads.
  WorkloadMix expected(0.90, 0.05, 0.03, 0.02);

  PrintHeader({"rho (shift radius)", "tuning", "design", "cost@expected",
               "worst-case cost"});
  for (double rho : {0.0, 0.2, 0.5, 1.0}) {
    LsmDesign nominal = NominalTuning(space, data, expected);
    LsmDesign robust = RobustTuning(space, data, expected, rho);
    CostModel nm(nominal, data), rm(robust, data);

    PrintRow({Fmt(rho, 1), "nominal", nominal.Label(),
              Fmt(nm.WorkloadCost(expected), 4),
              Fmt(WorstCaseCost(nominal, data, expected, rho), 4)});
    PrintRow({Fmt(rho, 1), "robust", robust.Label(),
              Fmt(rm.WorkloadCost(expected), 4),
              Fmt(WorstCaseCost(robust, data, expected, rho), 4)});
  }

  // Concrete shifted-workload evaluation: what each tuning pays if the mix
  // actually flips to read-heavy.
  WorkloadMix shifted(0.20, 0.45, 0.20, 0.15);
  LsmDesign nominal = NominalTuning(space, data, expected);
  LsmDesign robust = RobustTuning(space, data, expected, 1.0);
  CostModel nm(nominal, data), rm(robust, data);
  std::printf("\nconcrete shift to read-heavy mix (w=0.2, r=0.45):\n");
  PrintHeader({"tuning", "design", "cost@expected", "cost@shifted"});
  PrintRow({"nominal", nominal.Label(), Fmt(nm.WorkloadCost(expected), 4),
            Fmt(nm.WorkloadCost(shifted), 4)});
  PrintRow({"robust", robust.Label(), Fmt(rm.WorkloadCost(expected), 4),
            Fmt(rm.WorkloadCost(shifted), 4)});
  std::printf(
      "\nshape check: nominal wins at the expected mix; robust wins at the "
      "shifted mix and at every worst case with rho > 0.\n");
}

}  // namespace
}  // namespace lsmlab::bench

int main() {
  lsmlab::bench::Run();
  return 0;
}
