#ifndef LSMLAB_BENCH_BENCH_UTIL_H_
#define LSMLAB_BENCH_BENCH_UTIL_H_

// Shared harness for the experiment benches (DESIGN.md §2). Each bench
// prints the rows/series a tutorial-style figure would plot; I/O counts come
// from CountingEnv so the *shape* of every tradeoff is reproducible on any
// machine.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "db/db.h"
#include "io/counting_env.h"
#include "io/mem_env.h"
#include "util/clock.h"
#include "workload/workload.h"

namespace lsmlab::bench {

/// Aborts the bench on an unexpected error: timings measured over failing
/// operations are meaningless, so there is no point continuing.
inline void BenchCheck(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

/// Point read that tolerates NotFound (empty reads are part of the measured
/// workloads) but aborts on a real error.
inline void BenchGet(DB* db, const ReadOptions& ro, const std::string& key,
                     std::string* value) {
  Status s = db->Get(ro, key, value);
  if (!s.ok() && !s.IsNotFound()) {
    BenchCheck(s, "Get");
  }
}

/// A DB stack over a counting in-memory env: deterministic I/O accounting.
struct TestStack {
  std::unique_ptr<MemEnv> mem_env;
  std::unique_ptr<CountingEnv> env;
  std::unique_ptr<DB> db;
  uint64_t user_bytes_written = 0;

  Status Open(Options options, const std::string& name = "/bench") {
    mem_env = std::make_unique<MemEnv>();
    env = std::make_unique<CountingEnv>(mem_env.get());
    options.env = env.get();
    return DB::Open(options, name, &db);
  }

  void Close() { db.reset(); }
};

/// Baseline options shared by the experiments: small enough that a laptop
/// run exercises multi-level trees in seconds.
inline Options SmallTreeOptions() {
  Options options;
  options.write_buffer_size = 64 << 10;
  options.max_bytes_for_level_base = 256 << 10;
  options.target_file_size = 64 << 10;
  options.block_size = 4096;
  options.block_cache_capacity = 4 << 20;
  options.filter_policy = NewBloomFilterPolicy(10.0);
  options.info_log = nullptr;
  return options;
}

/// Loads `n` entries through the write path, driving flushes/compactions.
inline Status Load(TestStack* stack, WorkloadGenerator* gen, uint64_t n) {
  WriteOptions wo;
  for (uint64_t i = 0; i < n; ++i) {
    Operation op = gen->Next();
    std::string value = gen->MakeValue(op.key, op.value_size);
    stack->user_bytes_written += op.key.size() + value.size();
    Status s = stack->db->Put(wo, op.key, value);
    if (!s.ok()) {
      return s;
    }
  }
  return stack->db->WaitForBackgroundWork();
}

/// Executes `ops` mixed operations, returning wall micros spent.
inline uint64_t RunMixed(TestStack* stack, WorkloadGenerator* gen,
                         uint64_t ops) {
  WriteOptions wo;
  ReadOptions ro;
  std::string value;
  uint64_t start = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < ops; ++i) {
    Operation op = gen->Next();
    switch (op.type) {
      case Operation::Type::kInsert:
      case Operation::Type::kUpdate: {
        std::string v = gen->MakeValue(op.key, op.value_size);
        stack->user_bytes_written += op.key.size() + v.size();
        BenchCheck(stack->db->Put(wo, op.key, v), "Put");
        break;
      }
      case Operation::Type::kRead:
      case Operation::Type::kEmptyRead: {
        Status gs = stack->db->Get(ro, op.key, &value);
        if (!gs.ok() && !gs.IsNotFound()) {
          BenchCheck(gs, "Get");
        }
        break;
      }
      case Operation::Type::kScan: {
        auto iter = stack->db->NewIterator(ro);
        int remaining = op.scan_length;
        for (iter->Seek(op.key); iter->Valid() && remaining > 0;
             iter->Next()) {
          --remaining;
        }
        break;
      }
      case Operation::Type::kDelete:
        BenchCheck(stack->db->Delete(wo, op.key), "Delete");
        break;
    }
  }
  return SystemClock()->NowMicros() - start;
}

/// Markdown-style table printing (copy-pastable into EXPERIMENTS.md).
inline void PrintHeader(const std::vector<std::string>& columns) {
  std::string line = "|", rule = "|";
  for (const auto& c : columns) {
    line += " " + c + " |";
    rule += "---|";
  }
  std::printf("%s\n%s\n", line.c_str(), rule.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  std::string line = "|";
  for (const auto& c : cells) {
    line += " " + c + " |";
  }
  std::printf("%s\n", line.c_str());
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

inline std::string FmtInt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace lsmlab::bench

#endif  // LSMLAB_BENCH_BENCH_UTIL_H_
