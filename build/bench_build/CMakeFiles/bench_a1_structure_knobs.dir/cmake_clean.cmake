file(REMOVE_RECURSE
  "../bench/bench_a1_structure_knobs"
  "../bench/bench_a1_structure_knobs.pdb"
  "CMakeFiles/bench_a1_structure_knobs.dir/bench_a1_structure_knobs.cc.o"
  "CMakeFiles/bench_a1_structure_knobs.dir/bench_a1_structure_knobs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_structure_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
