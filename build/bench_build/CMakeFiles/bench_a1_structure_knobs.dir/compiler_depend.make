# Empty compiler generated dependencies file for bench_a1_structure_knobs.
# This may be replaced when dependencies are built.
