file(REMOVE_RECURSE
  "../bench/bench_e10_silk"
  "../bench/bench_e10_silk.pdb"
  "CMakeFiles/bench_e10_silk.dir/bench_e10_silk.cc.o"
  "CMakeFiles/bench_e10_silk.dir/bench_e10_silk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_silk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
