# Empty compiler generated dependencies file for bench_e10_silk.
# This may be replaced when dependencies are built.
