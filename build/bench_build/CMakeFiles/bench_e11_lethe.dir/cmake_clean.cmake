file(REMOVE_RECURSE
  "../bench/bench_e11_lethe"
  "../bench/bench_e11_lethe.pdb"
  "CMakeFiles/bench_e11_lethe.dir/bench_e11_lethe.cc.o"
  "CMakeFiles/bench_e11_lethe.dir/bench_e11_lethe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_lethe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
