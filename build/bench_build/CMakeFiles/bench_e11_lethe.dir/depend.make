# Empty dependencies file for bench_e11_lethe.
# This may be replaced when dependencies are built.
