file(REMOVE_RECURSE
  "../bench/bench_e12_cache"
  "../bench/bench_e12_cache.pdb"
  "CMakeFiles/bench_e12_cache.dir/bench_e12_cache.cc.o"
  "CMakeFiles/bench_e12_cache.dir/bench_e12_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
