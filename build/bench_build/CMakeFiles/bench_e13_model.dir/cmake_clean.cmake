file(REMOVE_RECURSE
  "../bench/bench_e13_model"
  "../bench/bench_e13_model.pdb"
  "CMakeFiles/bench_e13_model.dir/bench_e13_model.cc.o"
  "CMakeFiles/bench_e13_model.dir/bench_e13_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
