# Empty dependencies file for bench_e13_model.
# This may be replaced when dependencies are built.
