file(REMOVE_RECURSE
  "../bench/bench_e1_lsm_vs_btree"
  "../bench/bench_e1_lsm_vs_btree.pdb"
  "CMakeFiles/bench_e1_lsm_vs_btree.dir/bench_e1_lsm_vs_btree.cc.o"
  "CMakeFiles/bench_e1_lsm_vs_btree.dir/bench_e1_lsm_vs_btree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_lsm_vs_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
