# Empty compiler generated dependencies file for bench_e1_lsm_vs_btree.
# This may be replaced when dependencies are built.
