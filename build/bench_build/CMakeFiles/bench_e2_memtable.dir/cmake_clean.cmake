file(REMOVE_RECURSE
  "../bench/bench_e2_memtable"
  "../bench/bench_e2_memtable.pdb"
  "CMakeFiles/bench_e2_memtable.dir/bench_e2_memtable.cc.o"
  "CMakeFiles/bench_e2_memtable.dir/bench_e2_memtable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_memtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
