file(REMOVE_RECURSE
  "../bench/bench_e3_layouts"
  "../bench/bench_e3_layouts.pdb"
  "CMakeFiles/bench_e3_layouts.dir/bench_e3_layouts.cc.o"
  "CMakeFiles/bench_e3_layouts.dir/bench_e3_layouts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
