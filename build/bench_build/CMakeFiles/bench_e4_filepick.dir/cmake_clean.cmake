file(REMOVE_RECURSE
  "../bench/bench_e4_filepick"
  "../bench/bench_e4_filepick.pdb"
  "CMakeFiles/bench_e4_filepick.dir/bench_e4_filepick.cc.o"
  "CMakeFiles/bench_e4_filepick.dir/bench_e4_filepick.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_filepick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
