# Empty dependencies file for bench_e4_filepick.
# This may be replaced when dependencies are built.
