file(REMOVE_RECURSE
  "../bench/bench_e5_filters"
  "../bench/bench_e5_filters.pdb"
  "CMakeFiles/bench_e5_filters.dir/bench_e5_filters.cc.o"
  "CMakeFiles/bench_e5_filters.dir/bench_e5_filters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
