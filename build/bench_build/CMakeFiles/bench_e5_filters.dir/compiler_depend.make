# Empty compiler generated dependencies file for bench_e5_filters.
# This may be replaced when dependencies are built.
