file(REMOVE_RECURSE
  "../bench/bench_e6_rangefilters"
  "../bench/bench_e6_rangefilters.pdb"
  "CMakeFiles/bench_e6_rangefilters.dir/bench_e6_rangefilters.cc.o"
  "CMakeFiles/bench_e6_rangefilters.dir/bench_e6_rangefilters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_rangefilters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
