# Empty dependencies file for bench_e6_rangefilters.
# This may be replaced when dependencies are built.
