file(REMOVE_RECURSE
  "../bench/bench_e7_memsplit"
  "../bench/bench_e7_memsplit.pdb"
  "CMakeFiles/bench_e7_memsplit.dir/bench_e7_memsplit.cc.o"
  "CMakeFiles/bench_e7_memsplit.dir/bench_e7_memsplit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_memsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
