# Empty dependencies file for bench_e7_memsplit.
# This may be replaced when dependencies are built.
