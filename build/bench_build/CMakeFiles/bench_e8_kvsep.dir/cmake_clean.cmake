file(REMOVE_RECURSE
  "../bench/bench_e8_kvsep"
  "../bench/bench_e8_kvsep.pdb"
  "CMakeFiles/bench_e8_kvsep.dir/bench_e8_kvsep.cc.o"
  "CMakeFiles/bench_e8_kvsep.dir/bench_e8_kvsep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_kvsep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
