file(REMOVE_RECURSE
  "../bench/bench_e9_robust"
  "../bench/bench_e9_robust.pdb"
  "CMakeFiles/bench_e9_robust.dir/bench_e9_robust.cc.o"
  "CMakeFiles/bench_e9_robust.dir/bench_e9_robust.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
