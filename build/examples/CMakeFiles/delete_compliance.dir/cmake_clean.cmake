file(REMOVE_RECURSE
  "CMakeFiles/delete_compliance.dir/delete_compliance.cpp.o"
  "CMakeFiles/delete_compliance.dir/delete_compliance.cpp.o.d"
  "delete_compliance"
  "delete_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delete_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
