# Empty dependencies file for delete_compliance.
# This may be replaced when dependencies are built.
