file(REMOVE_RECURSE
  "CMakeFiles/ycsb_workbench.dir/ycsb_workbench.cpp.o"
  "CMakeFiles/ycsb_workbench.dir/ycsb_workbench.cpp.o.d"
  "ycsb_workbench"
  "ycsb_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
