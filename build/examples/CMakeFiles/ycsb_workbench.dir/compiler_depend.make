# Empty compiler generated dependencies file for ycsb_workbench.
# This may be replaced when dependencies are built.
