
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/bptree.cc" "src/CMakeFiles/lsmlab.dir/btree/bptree.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/btree/bptree.cc.o.d"
  "/root/repo/src/cache/lru_cache.cc" "src/CMakeFiles/lsmlab.dir/cache/lru_cache.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/cache/lru_cache.cc.o.d"
  "/root/repo/src/compaction/compaction.cc" "src/CMakeFiles/lsmlab.dir/compaction/compaction.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/compaction/compaction.cc.o.d"
  "/root/repo/src/compaction/compaction_picker.cc" "src/CMakeFiles/lsmlab.dir/compaction/compaction_picker.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/compaction/compaction_picker.cc.o.d"
  "/root/repo/src/db/db.cc" "src/CMakeFiles/lsmlab.dir/db/db.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/db.cc.o.d"
  "/root/repo/src/db/db_background.cc" "src/CMakeFiles/lsmlab.dir/db/db_background.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/db_background.cc.o.d"
  "/root/repo/src/db/dbformat.cc" "src/CMakeFiles/lsmlab.dir/db/dbformat.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/dbformat.cc.o.d"
  "/root/repo/src/db/filename.cc" "src/CMakeFiles/lsmlab.dir/db/filename.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/filename.cc.o.d"
  "/root/repo/src/db/merge_operator.cc" "src/CMakeFiles/lsmlab.dir/db/merge_operator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/merge_operator.cc.o.d"
  "/root/repo/src/db/table_cache.cc" "src/CMakeFiles/lsmlab.dir/db/table_cache.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/table_cache.cc.o.d"
  "/root/repo/src/db/write_batch.cc" "src/CMakeFiles/lsmlab.dir/db/write_batch.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/db/write_batch.cc.o.d"
  "/root/repo/src/filter/bloom.cc" "src/CMakeFiles/lsmlab.dir/filter/bloom.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/bloom.cc.o.d"
  "/root/repo/src/filter/cuckoo_filter.cc" "src/CMakeFiles/lsmlab.dir/filter/cuckoo_filter.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/cuckoo_filter.cc.o.d"
  "/root/repo/src/filter/range_filter.cc" "src/CMakeFiles/lsmlab.dir/filter/range_filter.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/range_filter.cc.o.d"
  "/root/repo/src/io/counting_env.cc" "src/CMakeFiles/lsmlab.dir/io/counting_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/counting_env.cc.o.d"
  "/root/repo/src/io/env.cc" "src/CMakeFiles/lsmlab.dir/io/env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/env.cc.o.d"
  "/root/repo/src/io/latency_env.cc" "src/CMakeFiles/lsmlab.dir/io/latency_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/latency_env.cc.o.d"
  "/root/repo/src/io/mem_env.cc" "src/CMakeFiles/lsmlab.dir/io/mem_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/mem_env.cc.o.d"
  "/root/repo/src/io/posix_env.cc" "src/CMakeFiles/lsmlab.dir/io/posix_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/posix_env.cc.o.d"
  "/root/repo/src/io/wal_reader.cc" "src/CMakeFiles/lsmlab.dir/io/wal_reader.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/wal_reader.cc.o.d"
  "/root/repo/src/io/wal_writer.cc" "src/CMakeFiles/lsmlab.dir/io/wal_writer.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/io/wal_writer.cc.o.d"
  "/root/repo/src/kvsep/vlog.cc" "src/CMakeFiles/lsmlab.dir/kvsep/vlog.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/kvsep/vlog.cc.o.d"
  "/root/repo/src/memtable/hash_linklist_rep.cc" "src/CMakeFiles/lsmlab.dir/memtable/hash_linklist_rep.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/hash_linklist_rep.cc.o.d"
  "/root/repo/src/memtable/hash_skiplist_rep.cc" "src/CMakeFiles/lsmlab.dir/memtable/hash_skiplist_rep.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/hash_skiplist_rep.cc.o.d"
  "/root/repo/src/memtable/memtable.cc" "src/CMakeFiles/lsmlab.dir/memtable/memtable.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/memtable.cc.o.d"
  "/root/repo/src/memtable/memtable_rep.cc" "src/CMakeFiles/lsmlab.dir/memtable/memtable_rep.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/memtable_rep.cc.o.d"
  "/root/repo/src/memtable/skiplist_rep.cc" "src/CMakeFiles/lsmlab.dir/memtable/skiplist_rep.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/skiplist_rep.cc.o.d"
  "/root/repo/src/memtable/vector_rep.cc" "src/CMakeFiles/lsmlab.dir/memtable/vector_rep.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/vector_rep.cc.o.d"
  "/root/repo/src/table/block.cc" "src/CMakeFiles/lsmlab.dir/table/block.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/block.cc.o.d"
  "/root/repo/src/table/block_builder.cc" "src/CMakeFiles/lsmlab.dir/table/block_builder.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/block_builder.cc.o.d"
  "/root/repo/src/table/format.cc" "src/CMakeFiles/lsmlab.dir/table/format.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/format.cc.o.d"
  "/root/repo/src/table/iterator.cc" "src/CMakeFiles/lsmlab.dir/table/iterator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/iterator.cc.o.d"
  "/root/repo/src/table/merging_iterator.cc" "src/CMakeFiles/lsmlab.dir/table/merging_iterator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/merging_iterator.cc.o.d"
  "/root/repo/src/table/table_builder.cc" "src/CMakeFiles/lsmlab.dir/table/table_builder.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/table_builder.cc.o.d"
  "/root/repo/src/table/table_properties.cc" "src/CMakeFiles/lsmlab.dir/table/table_properties.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/table_properties.cc.o.d"
  "/root/repo/src/table/table_reader.cc" "src/CMakeFiles/lsmlab.dir/table/table_reader.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/table/table_reader.cc.o.d"
  "/root/repo/src/tuning/cost_model.cc" "src/CMakeFiles/lsmlab.dir/tuning/cost_model.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/cost_model.cc.o.d"
  "/root/repo/src/tuning/monkey.cc" "src/CMakeFiles/lsmlab.dir/tuning/monkey.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/monkey.cc.o.d"
  "/root/repo/src/tuning/navigator.cc" "src/CMakeFiles/lsmlab.dir/tuning/navigator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/navigator.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/lsmlab.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/arena.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/lsmlab.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/clock.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/lsmlab.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/CMakeFiles/lsmlab.dir/util/comparator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/comparator.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/lsmlab.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/lsmlab.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/lsmlab.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/lsmlab.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/logging.cc.o.d"
  "/root/repo/src/util/options.cc" "src/CMakeFiles/lsmlab.dir/util/options.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/options.cc.o.d"
  "/root/repo/src/util/rate_limiter.cc" "src/CMakeFiles/lsmlab.dir/util/rate_limiter.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/rate_limiter.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/lsmlab.dir/util/status.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/lsmlab.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/version/version_edit.cc" "src/CMakeFiles/lsmlab.dir/version/version_edit.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/version/version_edit.cc.o.d"
  "/root/repo/src/version/version_set.cc" "src/CMakeFiles/lsmlab.dir/version/version_set.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/version/version_set.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/lsmlab.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
