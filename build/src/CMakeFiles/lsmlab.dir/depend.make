# Empty dependencies file for lsmlab.
# This may be replaced when dependencies are built.
