file(REMOVE_RECURSE
  "CMakeFiles/range_filter_test.dir/range_filter_test.cc.o"
  "CMakeFiles/range_filter_test.dir/range_filter_test.cc.o.d"
  "range_filter_test"
  "range_filter_test.pdb"
  "range_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
