# Empty dependencies file for range_filter_test.
# This may be replaced when dependencies are built.
