# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/memtable_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/range_filter_test[1]_include.cmake")
include("/root/repo/build/tests/compaction_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/write_batch_test[1]_include.cmake")
include("/root/repo/build/tests/vlog_test[1]_include.cmake")
