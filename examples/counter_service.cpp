// Counter service: per-event counters built on the merge operator
// (read-modify-write without reads, tutorial §2.2.6) and atomic WriteBatch
// commits. Simulates an analytics pipeline ingesting page-view events.
//
//   ./counter_service [num_events]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "db/db.h"
#include "db/merge_operator.h"
#include "io/mem_env.h"
#include "util/clock.h"
#include "util/random.h"

using namespace lsmlab;

namespace {

// Abort on unexpected failure; a real application would propagate the
// Status to its caller instead.
void CheckOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // anonymous namespace

int main(int argc, char** argv) {
  uint64_t num_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 256 << 10;
  options.merge_operator = NewInt64AddOperator();  // Counters = int64 adds.
  options.filter_policy = NewBloomFilterPolicy(10);

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/counters", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }

  // Ingest events: each event bumps three counters atomically — per page,
  // per country, and global. No reads on the hot path: each bump is a
  // buffered merge operand, folded lazily at query/compaction time.
  const char* kPages[] = {"home", "search", "product", "cart", "checkout"};
  const char* kCountries[] = {"us", "de", "jp", "br", "in"};
  std::map<std::string, long long> model;

  Random rnd(7);
  uint64_t t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < num_events; ++i) {
    std::string page = std::string("page:") + kPages[rnd.Uniform(5)];
    std::string country =
        std::string("country:") + kCountries[rnd.Uniform(5)];

    WriteBatch event;  // The three bumps commit atomically.
    event.Merge(page, "1");
    event.Merge(country, "1");
    event.Merge("global:views", "1");
    s = db->Write(WriteOptions(), &event);
    if (!s.ok()) {
      std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
      return 1;
    }
    model[page]++;
    model[country]++;
    model["global:views"]++;
  }
  uint64_t micros = SystemClock()->NowMicros() - t0;
  std::printf("ingested %llu events (3 counter bumps each) at %.1f kops/s\n",
              static_cast<unsigned long long>(num_events),
              static_cast<double>(num_events) * 1000.0 /
                  static_cast<double>(micros));

  // Query: scan all counters, verify against the in-memory model.
  std::printf("\ncounters (scan):\n");
  auto iter = db->NewIterator(ReadOptions());
  int mismatches = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    long long got = std::strtoll(iter->value().ToString().c_str(), nullptr, 10);
    if (got != model[key]) {
      ++mismatches;
    }
    std::printf("  %-16s %lld\n", key.c_str(), got);
  }
  std::printf("\nmodel check: %s\n",
              mismatches == 0 ? "all counters exact" : "MISMATCH!");

  // Compactions carry operand chains correctly; counts stay exact.
  CheckOk(db->CompactRange());
  std::string value;
  CheckOk(db->Get(ReadOptions(), "global:views", &value));
  std::printf("global:views after full compaction: %s (expected %lld)\n",
              value.c_str(), model["global:views"]);
  std::printf("tree: %d sorted runs, %llu compactions\n",
              db->TotalSortedRuns(),
              static_cast<unsigned long long>(
                  db->statistics()->compactions.load()));
  return mismatches == 0 ? 0 : 1;
}
