// Delete compliance demo (tutorial §2.3.3, Lethe/FADE): shows that a plain
// LSM keeps "deleted" data physically on disk indefinitely, and how a
// tombstone TTL bounds the delete persistence window — the mechanism that
// makes GDPR-style erasure deadlines enforceable.
//
//   ./delete_compliance

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "db/db.h"
#include "io/mem_env.h"
#include "util/clock.h"
#include "workload/workload.h"

using namespace lsmlab;

namespace {

// Abort on unexpected failure; a real application would propagate the
// Status to its caller instead.
void CheckOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // anonymous namespace

namespace {

/// Counts how many of the doomed user records are still physically present
/// in any SSTable (readable at an old snapshot or shadowed in deep runs).
/// We approximate physical presence by the engine's tombstone accounting:
/// a delete is "persisted" once its tombstone (and shadowed value) were
/// dropped by a bottommost merge.
void Report(DB* db, uint64_t total_deletes, const char* moment) {
  uint64_t dropped = db->statistics()->tombstones_dropped.load();
  uint64_t pending = dropped >= total_deletes ? 0 : total_deletes - dropped;
  std::printf("%-28s tombstones pending=%llu purged=%llu  (sst=%llu KiB)\n",
              moment, static_cast<unsigned long long>(pending),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(db->TotalSstBytes() >> 10));
}

}  // namespace

int main() {
  MemEnv env;
  MockClock clock(1'000'000);  // Virtual time so the demo is instant.

  constexpr uint64_t kTtlMicros = 30ull * 1000000;  // 30 s erasure deadline.
  constexpr uint64_t kNumKeys = 20000;
  constexpr uint64_t kNumDeletes = 2000;

  for (bool use_fade : {false, true}) {
    Options options;
    options.env = &env;
    options.clock = &clock;
    options.write_buffer_size = 64 << 10;
    options.max_bytes_for_level_base = 256 << 10;
    options.enable_wal = false;
    options.tombstone_ttl_micros = use_fade ? kTtlMicros : 0;
    options.file_pick_policy = FilePickPolicy::kMostTombstones;

    std::string path = use_fade ? "/fade" : "/plain";
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, path, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }

    std::printf("\n=== %s ===\n",
                use_fade ? "FADE: tombstone TTL = 30s"
                         : "baseline: no delete deadline");

    // Load user records and let them settle into deep levels.
    WorkloadGenerator values(WorkloadSpec::WriteOnly(1));
    for (uint64_t i = 0; i < kNumKeys; ++i) {
      std::string key = WorkloadGenerator::FormatKey(i);
      CheckOk(db->Put(WriteOptions(), key, values.MakeValue(key, 64)));
      clock.Advance(5);
    }
    CheckOk(db->WaitForBackgroundWork());

    // Users request erasure of a subset.
    Random rnd(4);
    for (uint64_t i = 0; i < kNumDeletes; ++i) {
      CheckOk(db->Delete(WriteOptions(), WorkloadGenerator::FormatKey(
                                             rnd.Uniform(kNumKeys))));
    }
    CheckOk(db->Flush());
    CheckOk(db->WaitForBackgroundWork());
    Report(db.get(), kNumDeletes, "right after delete requests:");

    // Time passes with only light unrelated traffic.
    for (int step = 0; step < 40; ++step) {
      clock.Advance(kTtlMicros / 10);
      for (int i = 0; i < 20; ++i) {
        std::string key = "audit-log-" + std::to_string(step * 100 + i);
        CheckOk(db->Put(WriteOptions(), key, "entry"));
      }
      CheckOk(db->Flush());
      CheckOk(db->WaitForBackgroundWork());
    }
    Report(db.get(), kNumDeletes, "after 4x TTL of light load:");
    std::printf("compactions run: %llu, write stalls: %llu us\n",
                static_cast<unsigned long long>(
                    db->statistics()->compactions.load()),
                static_cast<unsigned long long>(
                    db->statistics()->write_stall_micros.load()));
  }

  std::printf(
      "\ntakeaway: without a TTL the deleted data outlives the request "
      "indefinitely; FADE forces the overdue files through compaction and "
      "purges them within the deadline (tutorial §2.3.3).\n");
  return 0;
}
