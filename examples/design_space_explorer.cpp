// Design-space explorer: sweep the two first-order knobs (layout, size
// ratio) on a real engine instance and print the measured tradeoff grid —
// a hands-on version of the tutorial's Module III narrative.
//
//   ./design_space_explorer [num_inserts]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "db/db.h"
#include "io/counting_env.h"
#include "io/mem_env.h"
#include "workload/workload.h"

using namespace lsmlab;

namespace {

// Abort on unexpected failure; a real application would propagate the
// Status to its caller instead.
void CheckOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // anonymous namespace

namespace {

struct Cell {
  double write_amp;
  double empty_read_ios;
  int runs;
};

Cell Measure(DataLayout layout, int t, uint64_t num_inserts) {
  MemEnv mem_env;
  CountingEnv env(&mem_env);
  Options options;
  options.env = &env;
  options.data_layout = layout;
  options.size_ratio = t;
  options.write_buffer_size = 64 << 10;
  options.max_bytes_for_level_base = 256 << 10;
  options.target_file_size = 64 << 10;
  options.filter_policy = NewBloomFilterPolicy(10);
  options.enable_wal = false;
  options.level0_file_num_compaction_trigger =
      layout == DataLayout::kLeveling ? 1 : t;

  std::unique_ptr<DB> db;
  if (!DB::Open(options, "/explore", &db).ok()) {
    return {};
  }

  WorkloadGenerator gen(WorkloadSpec::WriteOnly(num_inserts));
  uint64_t user_bytes = 0;
  for (uint64_t i = 0; i < num_inserts; ++i) {
    Operation op = gen.Next();
    std::string value = gen.MakeValue(op.key, 100);
    user_bytes += op.key.size() + value.size();
    CheckOk(db->Put(WriteOptions(), op.key, value));
  }
  CheckOk(db->WaitForBackgroundWork());

  Cell cell;
  cell.write_amp = env.GetStats().WriteAmplification(user_bytes);
  cell.runs = db->TotalSortedRuns();

  env.ResetStats();
  Random rnd(3);
  std::string value;
  const int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    Status gs = db->Get(
        ReadOptions(),
        WorkloadGenerator::FormatKey(rnd.Uniform(num_inserts)) + "!no",
        &value);
    if (!gs.IsNotFound()) {
      CheckOk(gs);  // The probe key is absent by construction.
    }
  }
  cell.empty_read_ios =
      static_cast<double>(env.GetStats().read_ops) / kProbes;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_inserts =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;

  std::printf("measured design-space grid (%llu random inserts each):\n",
              static_cast<unsigned long long>(num_inserts));
  std::printf("cell = write-amp / empty-read-I/O / runs\n\n");

  const struct {
    DataLayout layout;
    const char* name;
  } layouts[] = {
      {DataLayout::kLeveling, "leveling     "},
      {DataLayout::kLazyLeveling, "lazy-leveling"},
      {DataLayout::kOneLeveling, "1-leveling   "},
      {DataLayout::kTiering, "tiering      "},
  };
  const int ratios[] = {2, 4, 8};

  std::printf("%-14s", "layout \\ T");
  for (int t : ratios) {
    std::printf("| T=%-18d", t);
  }
  std::printf("\n");
  for (const auto& l : layouts) {
    std::printf("%-14s", l.name);
    for (int t : ratios) {
      Cell cell = Measure(l.layout, t, num_inserts);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f / %.2f / %d", cell.write_amp,
                    cell.empty_read_ios, cell.runs);
      std::printf("| %-19s", buf);
    }
    std::printf("\n");
  }

  std::printf(
      "\nreading the grid (tutorial §2.2.4): moving down (leveling -> "
      "tiering) trades read cost for write cost; moving right (larger T) "
      "amplifies whichever cost the layout already favours.\n");
  return 0;
}
