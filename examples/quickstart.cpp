// Quickstart: open a database, write, read, scan, delete, and inspect the
// tree. Uses the real filesystem under /tmp (pass a path to override).
//
//   ./quickstart [db_path]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "db/db.h"

namespace {

// The demo aborts on any unexpected error; a real application would
// propagate the Status to its caller instead.
void CheckOk(const lsmlab::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsmlab;

  std::string path = argc > 1 ? argv[1] : "/tmp/lsmlab_quickstart";
  // Start fresh for the demo; "nothing to destroy" is fine.
  (void)DestroyDB(Options(), path);

  // 1. Configure the engine. Every design decision from the tutorial is an
  //    Options field; the defaults mirror a RocksDB-like 1-leveling tree.
  Options options;
  options.create_if_missing = true;
  options.write_buffer_size = 1 << 20;             // 1 MiB memtable.
  options.filter_policy = NewBloomFilterPolicy(10);  // Point-query filters.
  options.block_cache_capacity = 8 << 20;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("opened %s\n", path.c_str());

  // 2. Puts: buffered in the memtable, logged in the WAL (§2.1.1-A).
  for (int i = 0; i < 10000; ++i) {
    char key[32], value[32];
    std::snprintf(key, sizeof(key), "fruit:%05d", i);
    std::snprintf(value, sizeof(value), "crate-%d", i * 7);
    s = db->Put(WriteOptions(), key, value);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("wrote 10000 entries\n");

  // 3. Point lookup (memtable -> L0 -> deeper levels, §2.1.2).
  std::string value;
  s = db->Get(ReadOptions(), "fruit:00042", &value);
  std::printf("get fruit:00042 -> %s\n",
              s.ok() ? value.c_str() : s.ToString().c_str());

  // 4. Update and delete are both out-of-place writes (§2.1.1-B).
  CheckOk(db->Put(WriteOptions(), "fruit:00042", "crate-fresh"));
  CheckOk(db->Get(ReadOptions(), "fruit:00042", &value));
  std::printf("after update      -> %s\n", value.c_str());

  CheckOk(db->Delete(WriteOptions(), "fruit:00042"));
  s = db->Get(ReadOptions(), "fruit:00042", &value);
  std::printf("after delete      -> %s\n",
              s.IsNotFound() ? "NotFound (tombstoned)" : value.c_str());

  // 5. Range scan: one iterator over all sorted runs, merged (§2.1.2).
  std::printf("scan fruit:00100..fruit:00104:\n");
  auto iter = db->NewIterator(ReadOptions());
  int shown = 0;
  for (iter->Seek("fruit:00100"); iter->Valid() && shown < 5;
       iter->Next(), ++shown) {
    std::printf("  %s = %s\n", iter->key().ToString().c_str(),
                iter->value().ToString().c_str());
  }

  // 6. Force internal operations and look inside the black box.
  CheckOk(db->Flush());         // Memtable -> L0 run.
  CheckOk(db->CompactRange());  // Merge everything down.
  std::printf("\ntree shape after flush + full compaction:\n%s",
              db->LevelsDebugString().c_str());
  std::printf("sorted runs: %d, sst bytes: %llu\n", db->TotalSortedRuns(),
              static_cast<unsigned long long>(db->TotalSstBytes()));

  Statistics* stats = db->statistics();
  std::printf("flushes=%llu compactions=%llu filter-skips=%llu\n",
              static_cast<unsigned long long>(stats->flushes.load()),
              static_cast<unsigned long long>(stats->compactions.load()),
              static_cast<unsigned long long>(
                  stats->runs_skipped_by_filter.load()));
  return 0;
}
