// Tuning advisor: describe your workload and data; get back the navigated
// design point (tutorial §2.3.1) and its robust alternative (§2.3.2).
//
//   ./tuning_advisor <writes> <point_reads> <empty_reads> <scans>
//                    [entries] [entry_bytes] [memory_mb] [rho]
//
// Example: a 70% write, 20% read, 5% empty-read, 5% scan workload on 100M
// 128-byte entries with 256 MiB of memory and shift radius 0.3:
//   ./tuning_advisor 0.7 0.2 0.05 0.05 100000000 128 256 0.3

#include <cstdio>
#include <cstdlib>

#include "tuning/navigator.h"

using namespace lsmlab;

int main(int argc, char** argv) {
  WorkloadMix mix;
  if (argc >= 5) {
    mix.writes = std::atof(argv[1]);
    mix.point_reads = std::atof(argv[2]);
    mix.empty_point_reads = std::atof(argv[3]);
    mix.short_scans = std::atof(argv[4]);
  } else {
    std::printf("(no mix given; using the balanced default 0.25 each)\n");
  }
  double total = mix.writes + mix.point_reads + mix.empty_point_reads +
                 mix.short_scans;
  if (total <= 0) {
    std::fprintf(stderr, "mix fractions must sum to > 0\n");
    return 1;
  }
  mix.writes /= total;
  mix.point_reads /= total;
  mix.empty_point_reads /= total;
  mix.short_scans /= total;

  DataSpec data;
  if (argc >= 6) data.num_entries = std::strtoull(argv[5], nullptr, 10);
  if (argc >= 7) data.entry_bytes = std::strtoull(argv[6], nullptr, 10);
  DesignSpaceSpec space;
  if (argc >= 8) {
    space.memory_budget_bytes =
        std::strtoull(argv[7], nullptr, 10) << 20;
  }
  double rho = argc >= 9 ? std::atof(argv[8]) : 0.3;

  std::printf("workload: writes=%.2f reads=%.2f empty=%.2f scans=%.2f\n",
              mix.writes, mix.point_reads, mix.empty_point_reads,
              mix.short_scans);
  std::printf("data: %llu entries x %llu B; memory budget %llu MiB\n\n",
              static_cast<unsigned long long>(data.num_entries),
              static_cast<unsigned long long>(data.entry_bytes),
              static_cast<unsigned long long>(
                  space.memory_budget_bytes >> 20));

  auto designs = EnumerateDesigns(space, data, mix);
  std::printf("top 5 designs by modelled cost (of %zu enumerated):\n",
              designs.size());
  for (size_t i = 0; i < 5 && i < designs.size(); ++i) {
    CostModel model(designs[i].design, data);
    std::printf(
        "  %zu. %-40s cost=%.4f (w=%.3f r=%.3f e=%.3f s=%.3f, %d levels)\n",
        i + 1, designs[i].design.Label().c_str(), designs[i].cost,
        model.WriteCost(), model.PointLookupCost(),
        model.ZeroResultLookupCost(), model.ShortScanCost(),
        model.NumLevels());
  }

  LsmDesign nominal = designs.front().design;
  LsmDesign robust = RobustTuning(space, data, mix, rho);
  CostModel nm(nominal, data), rm(robust, data);
  std::printf("\nnominal tuning : %s\n", nominal.Label().c_str());
  std::printf("robust tuning  : %s (rho=%.2f)\n", robust.Label().c_str(),
              rho);
  std::printf("  cost at expected mix : nominal=%.4f robust=%.4f\n",
              nm.WorkloadCost(mix), rm.WorkloadCost(mix));
  std::printf("  worst case in radius : nominal=%.4f robust=%.4f\n",
              WorstCaseCost(nominal, data, mix, rho),
              WorstCaseCost(robust, data, mix, rho));

  std::printf("\nsuggested lsmlab::Options snippet (nominal):\n");
  std::printf("  options.data_layout = DataLayout::k%s;\n",
              nominal.layout == DataLayout::kLeveling       ? "Leveling"
              : nominal.layout == DataLayout::kTiering      ? "Tiering"
              : nominal.layout == DataLayout::kLazyLeveling ? "LazyLeveling"
                                                            : "OneLeveling");
  std::printf("  options.size_ratio = %d;\n", nominal.size_ratio);
  std::printf("  options.write_buffer_size = %llu;\n",
              static_cast<unsigned long long>(nominal.buffer_bytes));
  std::printf("  options.filter_policy = NewBloomFilterPolicy(%.1f);\n",
              nominal.filter_bits_per_key);
  if (nominal.monkey_allocation) {
    std::printf("  options.filter_allocation = FilterAllocation::kMonkey;\n");
  }
  return 0;
}
