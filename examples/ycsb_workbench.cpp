// YCSB-style workbench: run a standard mix against a chosen design point
// and report throughput plus the engine's internal counters.
//
//   ./ycsb_workbench [workload] [layout] [ops]
//     workload: a | b | c | e | write  (default a)
//     layout:   leveling | tiering | lazy | 1level  (default 1level)
//     ops:      operation count (default 100000)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "db/db.h"
#include "io/counting_env.h"
#include "io/mem_env.h"
#include "util/clock.h"
#include "workload/workload.h"

using namespace lsmlab;

namespace {

// Abort on unexpected failure; a real application would propagate the
// Status to its caller instead.
void CheckOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // anonymous namespace

namespace {

WorkloadSpec PickWorkload(const std::string& name, uint64_t ops) {
  if (name == "b") return WorkloadSpec::YcsbB(ops);
  if (name == "c") return WorkloadSpec::YcsbC(ops);
  if (name == "e") return WorkloadSpec::YcsbE(ops);
  if (name == "write") return WorkloadSpec::WriteOnly(ops);
  return WorkloadSpec::YcsbA(ops);
}

DataLayout PickLayout(const std::string& name) {
  if (name == "leveling") return DataLayout::kLeveling;
  if (name == "tiering") return DataLayout::kTiering;
  if (name == "lazy") return DataLayout::kLazyLeveling;
  return DataLayout::kOneLeveling;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = argc > 1 ? argv[1] : "a";
  std::string layout = argc > 2 ? argv[2] : "1level";
  uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;

  MemEnv mem_env;
  CountingEnv env(&mem_env);

  Options options;
  options.env = &env;
  options.data_layout = PickLayout(layout);
  options.write_buffer_size = 256 << 10;
  options.max_bytes_for_level_base = 1 << 20;
  options.filter_policy = NewBloomFilterPolicy(10);
  if (options.data_layout == DataLayout::kLeveling) {
    options.level0_file_num_compaction_trigger = 1;
  }

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/ycsb", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }

  WorkloadSpec spec = PickWorkload(workload, ops);
  WorkloadGenerator gen(spec);

  // Preload the key space the mix will read from.
  std::printf("preloading %llu keys...\n",
              static_cast<unsigned long long>(spec.num_preloaded_keys));
  for (uint64_t i = 0; i < spec.num_preloaded_keys; ++i) {
    std::string key = WorkloadGenerator::FormatKey(i);
    CheckOk(db->Put(WriteOptions(), key, gen.MakeValue(key, spec.value_size)));
  }
  CheckOk(db->WaitForBackgroundWork());
  env.ResetStats();
  db->statistics()->Reset();

  std::printf("running YCSB-%s (%llu ops) on %s...\n", workload.c_str(),
              static_cast<unsigned long long>(ops),
              DataLayoutName(options.data_layout));
  std::string value;
  uint64_t t0 = SystemClock()->NowMicros();
  for (uint64_t i = 0; i < ops; ++i) {
    Operation op = gen.Next();
    switch (op.type) {
      case Operation::Type::kInsert:
      case Operation::Type::kUpdate:
        CheckOk(db->Put(WriteOptions(), op.key, gen.MakeValue(op.key, op.value_size)));
        break;
      case Operation::Type::kRead:
      case Operation::Type::kEmptyRead:
        if (Status gs = db->Get(ReadOptions(), op.key, &value);
            !gs.ok() && !gs.IsNotFound()) {
          CheckOk(gs);
        }
        break;
      case Operation::Type::kScan: {
        auto iter = db->NewIterator(ReadOptions());
        int remaining = op.scan_length;
        for (iter->Seek(op.key); iter->Valid() && remaining > 0; iter->Next())
          --remaining;
        break;
      }
      case Operation::Type::kDelete:
        CheckOk(db->Delete(WriteOptions(), op.key));
        break;
    }
  }
  uint64_t micros = SystemClock()->NowMicros() - t0;
  CheckOk(db->WaitForBackgroundWork());

  Statistics* stats = db->statistics();
  IoStats io = env.GetStats();
  std::printf("\nthroughput: %.1f kops/s\n",
              static_cast<double>(ops) * 1000.0 /
                  static_cast<double>(micros));
  std::printf("tree:\n%s", db->LevelsDebugString().c_str());
  std::printf("sorted runs: %d\n", db->TotalSortedRuns());
  std::printf("io: read %llu MiB (%llu ops), wrote %llu MiB (%llu ops)\n",
              static_cast<unsigned long long>(io.bytes_read >> 20),
              static_cast<unsigned long long>(io.read_ops),
              static_cast<unsigned long long>(io.bytes_written >> 20),
              static_cast<unsigned long long>(io.write_ops));
  std::printf(
      "engine: flushes=%llu compactions=%llu stall-ms=%llu "
      "runs-skipped-by-filter=%llu fpr=%.4f\n",
      static_cast<unsigned long long>(stats->flushes.load()),
      static_cast<unsigned long long>(stats->compactions.load()),
      static_cast<unsigned long long>(stats->write_stall_micros.load() /
                                      1000),
      static_cast<unsigned long long>(stats->runs_skipped_by_filter.load()),
      stats->FilterFalsePositiveRate());
  return 0;
}
