/// Fuzz harness for the SSTable block decoder (restart array parsing, entry
/// header varints, shared-prefix reconstruction) plus the raw varint
/// decoders. Invariants: no crash and no over-read — a malformed block
/// yields an invalid/Corruption iterator, never UB. The uint32 overflow in
/// DecodeEntry's bounds check (non_shared + value_length wrapping) was
/// found by exactly this surface.

#include <cstdint>
#include <string>

#include "table/block.h"
#include "table/iterator.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/slice.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;

  const char* chars = reinterpret_cast<const char*>(data);

  // Raw varint decoders on the same bytes: must respect `limit` exactly.
  {
    uint32_t v32;
    uint64_t v64;
    const char* p = chars;
    const char* limit = chars + size;
    while (p != nullptr && p < limit) {
      p = GetVarint32Ptr(p, limit, &v32);
    }
    p = chars;
    while (p != nullptr && p < limit) {
      p = GetVarint64Ptr(p, limit, &v64);
    }
  }

  Block block{std::string(chars, size)};
  const Comparator* cmp = BytewiseComparator();

  // Full forward scan.
  {
    auto iter = block.NewIterator(cmp);
    size_t entries = 0;
    for (iter->SeekToFirst(); iter->Valid() && entries < 100000; iter->Next()) {
      (void)iter->key();
      (void)iter->value();
      ++entries;
    }
    (void)iter->status();
  }

  // Seeks: a key sliced from the input exercises the restart-point binary
  // search against whatever restart array the input declares.
  {
    auto iter = block.NewIterator(cmp);
    Slice target(chars, size < 16 ? size : 16);
    iter->Seek(target);
    if (iter->Valid()) {
      (void)iter->key();
      (void)iter->value();
      iter->Next();
    }
    (void)iter->status();
  }
  return 0;
}
