/// Fuzz harness for the learned-index (PLR) block decoder. The block is
/// untrusted input read straight from an SSTable, so a malformed or
/// truncated encoding must come back as Corruption — never a crash, an
/// over-read, or a model that later sends PredictBlock out of range.
/// Accepted models additionally get hammered with queries derived from the
/// input bytes, and must round-trip byte-identically through EncodeTo.

#include <cstdint>
#include <string>

#include "table/learned_index.h"
#include "util/slice.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;

  const char* chars = reinterpret_cast<const char*>(data);
  Slice input(chars, size);

  LearnedIndexModel model;
  Status s = LearnedIndexModel::DecodeFrom(input, &model);
  if (!s.ok()) {
    return 0;  // Rejected input: the only acceptable failure mode.
  }

  // Structural invariants the rest of the reader relies on.
  if (model.num_blocks == 0 ||
      model.offsets.size() != model.num_blocks + 1 ||
      model.digests.size() != model.num_blocks || model.segments.empty()) {
    __builtin_trap();
  }
  for (size_t i = 1; i < model.offsets.size(); ++i) {
    if (model.offsets[i] <= model.offsets[i - 1]) {
      __builtin_trap();
    }
  }

  // Predictions must stay in [0, num_blocks) for arbitrary query digests,
  // including ones synthesized from the input itself.
  uint64_t probes[] = {0,
                       ~uint64_t{0},
                       model.digests.front(),
                       model.digests.back(),
                       model.digests.front() + 1,
                       model.digests.back() - 1};
  for (uint64_t x : probes) {
    if (model.PredictBlock(x) >= model.num_blocks) {
      __builtin_trap();
    }
  }
  for (size_t pos = 0; pos + 8 <= size && pos < 256; pos += 8) {
    uint64_t x = 0;
    for (size_t i = 0; i < 8; ++i) {
      x = (x << 8) | static_cast<uint8_t>(chars[pos + i]);
    }
    if (model.PredictBlock(x) >= model.num_blocks) {
      __builtin_trap();
    }
  }

  // Keys sliced from the input exercise the prefix-clamp path.
  for (size_t len = 0; len <= size && len < 32; ++len) {
    (void)model.QueryDigest(Slice(chars, len));
  }

  // A decoded model re-encodes to something that decodes back to the same
  // model. (Not byte-identical: the decoder tolerates non-canonical varints,
  // the encoder always emits canonical ones.)
  std::string reencoded;
  model.EncodeTo(&reencoded);
  LearnedIndexModel redecoded;
  if (!LearnedIndexModel::DecodeFrom(Slice(reencoded), &redecoded).ok() ||
      redecoded.num_blocks != model.num_blocks ||
      redecoded.epsilon != model.epsilon || redecoded.prefix != model.prefix ||
      redecoded.offsets != model.offsets ||
      redecoded.digests != model.digests ||
      redecoded.segments.size() != model.segments.size()) {
    __builtin_trap();
  }
  (void)model.MemoryUsage();
  return 0;
}
