/// Fuzz harness for VersionEdit::DecodeFrom (the manifest record decoder).
/// Invariants: no crash, decode failures are Corruption Statuses, and any
/// accepted input survives an encode/decode round trip.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/slice.h"
#include "util/status.h"
#include "version/version_edit.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;

  VersionEdit edit;
  Status s = edit.DecodeFrom(
      Slice(reinterpret_cast<const char*>(data), size));
  if (!s.ok()) {
    if (!s.IsCorruption() && !s.IsInvalidArgument()) {
      std::fprintf(stderr, "non-corruption decode error: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
    return 0;
  }

  // Accepted input must re-encode into something the decoder accepts again:
  // the manifest roll path re-writes recovered state through EncodeTo.
  std::string reencoded;
  edit.EncodeTo(&reencoded);
  VersionEdit round_trip;
  Status rt = round_trip.DecodeFrom(reencoded);
  if (!rt.ok()) {
    std::fprintf(stderr, "round trip rejected: %s\n", rt.ToString().c_str());
    std::abort();
  }
  return 0;
}
