/// Fuzz harness for the WAL log-record reader plus the recovery-time record
/// dispatch, including the cross-shard 2PC record kinds (prepare tag 0x50,
/// commit marker tag 0x43 in byte 7 of the leading fixed64 — see
/// ShardEngine::RecoverLogFile). Invariants: no crash, no unbounded
/// allocation, and every failure surfaces as an error Status (or a
/// Reporter::Corruption callback), never as UB.

#include <cstdint>
#include <cstring>
#include <map>
#include <string>

#include "db/write_batch.h"
#include "io/env.h"
#include "io/wal_reader.h"
#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace {

using namespace lsmlab;

// Mirrors the constants in shard_engine.cc (file-local there by design: the
// WAL byte format, not an API).
constexpr uint8_t kPrepareRecordTag = 0x50;
constexpr uint8_t kCommitMarkerTag = 0x43;
constexpr uint64_t kTwoPhaseIdMask = (1ull << 56) - 1;

class BufferSequentialFile final : public SequentialFile {
 public:
  BufferSequentialFile(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    size_t available = size_ - std::min(pos_, size_);
    size_t to_read = std::min(n, available);
    std::memcpy(scratch, data_ + pos_, to_read);
    pos_ += to_read;
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

 private:
  const char* const data_;
  const size_t size_;
  size_t pos_ = 0;
};

struct CountingReporter : public wal::Reader::Reporter {
  size_t corruptions = 0;
  void Corruption(size_t, const Status&) override { ++corruptions; }
};

class CountingHandler : public WriteBatch::Handler {
 public:
  void Put(const Slice& k, const Slice& v) override { bytes_ += k.size() + v.size(); }
  void Delete(const Slice& k) override { bytes_ += k.size(); }
  void SingleDelete(const Slice& k) override { bytes_ += k.size(); }
  void Merge(const Slice& k, const Slice& v) override { bytes_ += k.size() + v.size(); }

 private:
  size_t bytes_ = 0;
};

void ConsumeBatch(const Slice& payload) {
  WriteBatch batch;
  Status s = batch.SetRep(payload);
  if (!s.ok()) {
    return;  // Error Status is the expected rejection path.
  }
  CountingHandler handler;
  (void)batch.Iterate(&handler);  // Result may be ok or Corruption.
  (void)batch.Count();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  BufferSequentialFile file(data, size);
  CountingReporter reporter;
  wal::Reader reader(&file, &reporter);

  std::map<uint64_t, std::string> prepare_stash;
  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() >= 8 &&
        static_cast<uint8_t>(record[7]) == kPrepareRecordTag) {
      uint64_t id = DecodeFixed64(record.data()) & kTwoPhaseIdMask;
      prepare_stash[id] = std::string(record.data() + 8, record.size() - 8);
      if (prepare_stash.size() > 1024) {
        prepare_stash.clear();  // Bound memory on adversarial tag floods.
      }
      continue;
    }
    if (record.size() >= 8 &&
        static_cast<uint8_t>(record[7]) == kCommitMarkerTag) {
      if (record.size() < 16) {
        continue;  // RecoverLogFile returns Corruption here; nothing to do.
      }
      uint64_t id = DecodeFixed64(record.data()) & kTwoPhaseIdMask;
      auto it = prepare_stash.find(id);
      if (it != prepare_stash.end()) {
        ConsumeBatch(it->second);
        prepare_stash.erase(it);
      }
      continue;
    }
    ConsumeBatch(record);
  }
  return 0;
}
