/// Fuzz harness for WriteBatch::SetRep + Iterate (the WAL payload decoder).
/// Invariants: no crash, malformed bytes surface as Corruption, and the
/// header count never causes Iterate to read past the declared records.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "db/write_batch.h"
#include "util/slice.h"
#include "util/status.h"

namespace {

class CountingHandler : public lsmlab::WriteBatch::Handler {
 public:
  void Put(const lsmlab::Slice&, const lsmlab::Slice&) override { ++ops_; }
  void Delete(const lsmlab::Slice&) override { ++ops_; }
  void SingleDelete(const lsmlab::Slice&) override { ++ops_; }
  void Merge(const lsmlab::Slice&, const lsmlab::Slice&) override { ++ops_; }

  uint64_t ops() const { return ops_; }

 private:
  uint64_t ops_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;

  WriteBatch batch;
  Status s = batch.SetRep(Slice(reinterpret_cast<const char*>(data), size));
  if (!s.ok()) {
    if (!s.IsCorruption()) {
      std::fprintf(stderr, "non-corruption SetRep error: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
    return 0;
  }

  CountingHandler handler;
  Status it = batch.Iterate(&handler);
  if (!it.ok() && !it.IsCorruption()) {
    std::fprintf(stderr, "non-corruption Iterate error: %s\n",
                 it.ToString().c_str());
    std::abort();
  }
  if (it.ok() && handler.ops() != batch.Count()) {
    std::fprintf(stderr, "count mismatch: header %u, replayed %llu\n",
                 batch.Count(),
                 static_cast<unsigned long long>(handler.ops()));
    std::abort();
  }
  return 0;
}
