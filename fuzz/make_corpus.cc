/// Generates the checked-in seed corpus under fuzz/corpus/<harness>/ from
/// the real encoders, so every fuzzer starts from well-formed inputs and
/// mutation explores the format's edge instead of random noise.
///
///   make_corpus <output-root>     (e.g. make_corpus fuzz/corpus)

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "db/dbformat.h"
#include "db/write_batch.h"
#include "io/env.h"
#include "io/mem_env.h"
#include "io/wal_writer.h"
#include "table/block_builder.h"
#include "table/learned_index.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "version/version_edit.h"

namespace {

using namespace lsmlab;

void WriteSeed(const std::filesystem::path& root, const std::string& harness,
               const std::string& name, const std::string& bytes) {
  std::filesystem::path dir = root / harness;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string SampleBatchRep(uint64_t seq) {
  WriteBatch batch;
  batch.SetSequence(seq);
  batch.Put("user.0001", "value-one");
  batch.Put("user.0002", std::string(200, 'x'));
  batch.Delete("user.0001");
  batch.SingleDelete("user.0003");
  batch.Merge("counter", "+1");
  batch.PutTyped(kTypeVlogPointer, "blob.key", "\x01\x02\x03\x04");
  return batch.rep();
}

std::string WalFile(MemEnv* env, const std::string& name,
                    const std::vector<std::string>& records) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(name, &file);
  if (!s.ok()) {
    std::abort();
  }
  wal::Writer writer(file.get());
  for (const std::string& rec : records) {
    if (!writer.AddRecord(rec).ok()) {
      std::abort();
    }
  }
  std::string contents;
  if (!ReadFileToString(env, name, &contents).ok()) {
    std::abort();
  }
  return contents;
}

std::string TaggedRecord(uint8_t tag, uint64_t id, const std::string& rest) {
  std::string rec;
  PutFixed64(&rec, (id & ((1ull << 56) - 1)) |
                       (static_cast<uint64_t>(tag) << 56));
  rec += rest;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 2;
  }
  std::filesystem::path root(argv[1]);
  MemEnv env;

  // --- fuzz_write_batch -------------------------------------------------
  WriteSeed(root, "fuzz_write_batch", "seed-basic.bin", SampleBatchRep(100));
  {
    WriteBatch empty;
    WriteSeed(root, "fuzz_write_batch", "seed-empty.bin", empty.rep());
  }

  // --- fuzz_wal_reader --------------------------------------------------
  WriteSeed(root, "fuzz_wal_reader", "seed-normal.bin",
            WalFile(&env, "normal", {SampleBatchRep(1), SampleBatchRep(7)}));
  {
    // 2PC shape: prepare (0x50) carrying a batch payload, then its commit
    // marker (0x43) with the apply sequence, then a plain record.
    std::string marker_rest;
    PutFixed64(&marker_rest, /*apply_seq=*/42);
    WriteSeed(root, "fuzz_wal_reader", "seed-2pc.bin",
              WalFile(&env, "twopc",
                      {TaggedRecord(0x50, 9, SampleBatchRep(0)),
                       TaggedRecord(0x43, 9, marker_rest),
                       SampleBatchRep(50)}));
  }
  {
    // Torn tail: a valid record followed by half of another.
    std::string whole =
        WalFile(&env, "torn", {SampleBatchRep(1), SampleBatchRep(2)});
    WriteSeed(root, "fuzz_wal_reader", "seed-torn-tail.bin",
              whole.substr(0, whole.size() - whole.size() / 4));
  }

  // --- fuzz_version_edit ------------------------------------------------
  {
    VersionEdit edit;
    edit.SetComparatorName("leveldb.BytewiseComparator");
    edit.SetLogNumber(12);
    edit.SetNextFileNumber(33);
    edit.SetLastSequence(777);
    FileMetaData f;
    f.file_number = 19;
    f.file_size = 4096;
    f.smallest = InternalKey("apple", 5, kTypeValue);
    f.largest = InternalKey("zebra", 90, kTypeDeletion);
    f.num_entries = 12;
    f.num_tombstones = 1;
    edit.AddFile(2, f);
    edit.RemoveFile(1, 7);
    std::string bytes;
    edit.EncodeTo(&bytes);
    WriteSeed(root, "fuzz_version_edit", "seed-full.bin", bytes);
  }
  {
    VersionEdit edit;
    edit.SetLogNumber(3);
    edit.SetNextFileNumber(4);
    edit.SetLastSequence(5);
    std::string bytes;
    edit.EncodeTo(&bytes);
    WriteSeed(root, "fuzz_version_edit", "seed-meta-only.bin", bytes);
  }

  // --- fuzz_block -------------------------------------------------------
  {
    BlockBuilder builder(BytewiseComparator(), /*restart_interval=*/4);
    char key[16];
    for (int i = 0; i < 40; ++i) {
      std::snprintf(key, sizeof(key), "key%04d", i);
      builder.Add(key, std::string(static_cast<size_t>(i % 17), 'v'));
    }
    Slice finished = builder.Finish();
    WriteSeed(root, "fuzz_block", "seed-block.bin", finished.ToString());
  }
  {
    BlockBuilder builder(BytewiseComparator(), /*restart_interval=*/16);
    builder.Add("only", "entry");
    WriteSeed(root, "fuzz_block", "seed-tiny.bin",
              builder.Finish().ToString());
  }

  // --- fuzz_learned_index -----------------------------------------------
  {
    LearnedIndexBuilder builder(/*epsilon=*/8);
    uint64_t offset = 0;
    char fence[24];
    for (int i = 0; i < 60; ++i) {
      std::snprintf(fence, sizeof(fence), "user%06d", i * 37);
      builder.AddBlock(fence, offset);
      offset += 900 + static_cast<uint64_t>(i % 13) * 40;
    }
    std::string bytes;
    uint64_t segments = 0;
    if (!builder.Finish(offset, &bytes, &segments)) {
      std::abort();
    }
    WriteSeed(root, "fuzz_learned_index", "seed-plr.bin", bytes);
  }
  {
    LearnedIndexBuilder builder(/*epsilon=*/1);
    builder.AddBlock("only-fence", 0);
    std::string bytes;
    uint64_t segments = 0;
    if (!builder.Finish(512, &bytes, &segments)) {
      std::abort();
    }
    WriteSeed(root, "fuzz_learned_index", "seed-single-block.bin", bytes);
  }

  std::printf("seed corpus written under %s\n", root.c_str());
  return 0;
}
