/// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
/// (non-clang toolchains). Two modes, composable:
///
///   fuzz_<target> <corpus-dir-or-file>...
///
/// 1. Replay: every file passed (or contained in a passed directory) is fed
///    to LLVMFuzzerTestOneInput once — the CI regression mode.
/// 2. Mutation rounds: unless FUZZ_ROUNDS=0, each seed then goes through
///    FUZZ_ROUNDS (default 256) deterministic mutations — bit flips, byte
///    stores, truncations, duplications, cross-seed splices — driven by a
///    fixed-seed xorshift PRNG, so failures reproduce bit-for-bit.
///
/// Under clang the harnesses link -fsanitize=fuzzer instead and this file
/// is not compiled.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t g_rng_state = 0x9e3779b97f4a7c15ull;

uint64_t NextRand() {
  uint64_t x = g_rng_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  g_rng_state = x;
  return x;
}

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

void Mutate(std::string* input, const std::vector<std::string>& corpus) {
  if (input->empty()) {
    input->push_back(static_cast<char>(NextRand()));
    return;
  }
  switch (NextRand() % 6) {
    case 0: {  // Flip one bit.
      size_t pos = NextRand() % input->size();
      (*input)[pos] ^= static_cast<char>(1u << (NextRand() % 8));
      break;
    }
    case 1: {  // Overwrite a byte with an interesting value.
      static const uint8_t kInteresting[] = {0x00, 0x01, 0x7f, 0x80,
                                             0xff, 0x50, 0x43, 0x10};
      size_t pos = NextRand() % input->size();
      (*input)[pos] = static_cast<char>(
          kInteresting[NextRand() % sizeof(kInteresting)]);
      break;
    }
    case 2:  // Truncate.
      input->resize(NextRand() % input->size());
      break;
    case 3: {  // Duplicate a chunk.
      size_t pos = NextRand() % input->size();
      size_t len = 1 + NextRand() % (input->size() - pos);
      input->insert(pos, input->substr(pos, len));
      break;
    }
    case 4: {  // Delete a chunk.
      size_t pos = NextRand() % input->size();
      size_t len = 1 + NextRand() % (input->size() - pos);
      input->erase(pos, len);
      break;
    }
    default: {  // Splice a window from another corpus entry.
      const std::string& other = corpus[NextRand() % corpus.size()];
      if (!other.empty()) {
        size_t from = NextRand() % other.size();
        size_t len = 1 + NextRand() % (other.size() - from);
        size_t pos = NextRand() % (input->size() + 1);
        input->insert(pos, other.substr(from, len));
      }
      break;
    }
  }
  if (input->size() > (1u << 20)) {
    input->resize(1u << 20);  // Mirror libFuzzer's default max_len spirit.
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path p(argv[i]);
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(p);
    }
    for (const auto& f : files) {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", f.c_str());
        return 2;
      }
      corpus.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
  }
  if (corpus.empty()) {
    corpus.emplace_back();  // At least probe the empty input.
  }

  for (const std::string& bytes : corpus) {
    RunOne(bytes);
  }

  long rounds = 256;
  if (const char* env = std::getenv("FUZZ_ROUNDS")) {
    rounds = std::strtol(env, nullptr, 10);
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (long r = 0; r < rounds; ++r) {
      std::string mutated = corpus[i];
      // A few stacked mutations per round reach deeper than single edits.
      int edits = 1 + static_cast<int>(NextRand() % 4);
      for (int e = 0; e < edits; ++e) {
        Mutate(&mutated, corpus);
      }
      RunOne(mutated);
    }
  }
  std::printf("standalone fuzz: %zu seeds, %ld rounds each: ok\n",
              corpus.size(), rounds);
  return 0;
}
