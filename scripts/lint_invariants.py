#!/usr/bin/env python3
"""Project-invariant lint: rules clang-tidy cannot express (ISSUE 8).

Runs over src/ (and any extra paths given) and enforces:

  raw-sync-primitive
      No raw std::mutex / std::condition_variable / std::lock_guard /
      std::unique_lock / std::scoped_lock / std::shared_mutex outside the
      two files allowed to use them: util/mutex.h (the annotated wrapper)
      and util/lock_rank.cc (the validator's own registry lock, which must
      not be a ranked Mutex or it would recurse into itself).

  unranked-mutex
      Every Mutex constructed in src/ names itself and declares its rank:
      `Mutex mu_{LockRank::kX, "component.mu"}`. An unranked Mutex is
      invisible to the runtime lock-rank validator's DAG (it still gets
      cycle detection, but no declared order and no I/O policy).

  unguarded-member-after-mutex
      Every mutable data member in the contiguous declaration block
      following a Mutex member carries GUARDED_BY(...). Exempt: const /
      constexpr / static members, function declarations, Mutex / CondVar /
      std::atomic members, and members with a trailing or directly
      preceding `//` rationale (e.g. "Set once at construction") or
      guarded-elsewhere note.
      The block ends at a blank line, an access specifier, or `};` — that
      is the "adjacent" scope; members declared before the Mutex or in a
      later block are the thread-safety analysis' problem, not this lint's.

  unexplained-void-cast
      `(void)expr` discards a Status (or other result). Allowed only with
      a rationale: a trailing `//` comment on the same line, or a comment
      line directly above the statement.

  empty-io-rationale
      lock_rank::IoAllowedSection must be constructed with a non-empty
      string-literal rationale — the escape hatch documents *why* I/O
      under that lock is the design, or it teaches nothing.

Exit status: 0 clean, 1 findings, 2 usage/IO error.
Usage: scripts/lint_invariants.py [path ...]   (default: src/)
"""

import os
import re
import sys

# Files allowed to touch raw standard-library synchronization primitives.
RAW_SYNC_ALLOWLIST = {
    os.path.join("util", "mutex.h"),
    os.path.join("util", "lock_rank.cc"),
}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock)\b")

# A Mutex member/local declaration: optional mutable, the type, a name,
# optional ordering annotation, then its initializer (or none).
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*"
    r"(?:ACQUIRED_(?:BEFORE|AFTER)\([^)]*\)\s*)?(\{|;|$)")

MEMBER_EXEMPT_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\b|constexpr\b|const\b|"
    r"(?:[\w:<>,\s*&]*\bconst\s+\w+)|Mutex\b|CondVar\b|std::atomic\b|"
    r"using\b|enum\b|struct\b|class\b|friend\b|typedef\b)")

VOID_CAST_RE = re.compile(r"^\s*\(void\)")
IO_SECTION_RE = re.compile(r"IoAllowedSection\s+\w+\s*[({]\s*(.*)")


def is_comment(line):
    s = line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def lint_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    in_block_comment = False
    mutex_block_guard = None  # Name of the Mutex whose adjacency block we're in.
    in_continuation = False  # Inside a multi-line declaration's tail.
    for i, line in enumerate(lines):
        lineno = i + 1
        stripped = line.strip()
        if in_continuation:
            if stripped.endswith(";"):
                in_continuation = False
            continue

        # Cheap block-comment tracking so commented-out code doesn't trip rules.
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue
        code = line.split("//", 1)[0]

        # --- raw-sync-primitive ------------------------------------------
        if rel not in RAW_SYNC_ALLOWLIST:
            m = RAW_SYNC_RE.search(code)
            if m:
                findings.append(
                    (rel, lineno, "raw-sync-primitive",
                     f"std::{m.group(1)} outside util/mutex.h — use the "
                     "ranked Mutex/CondVar wrappers"))

        # --- unranked-mutex + adjacency-block opening ---------------------
        m = MUTEX_DECL_RE.match(code)
        if m:
            name, tail = m.group(1), m.group(2)
            init = code[m.end(2) - 1:] if tail == "{" else ""
            if tail != "{" and i + 1 < len(lines):
                nxt = lines[i + 1].strip()
                if nxt.startswith("{"):
                    init = nxt
            if "LockRank::" not in init and "LockRank::" not in code:
                findings.append(
                    (rel, lineno, "unranked-mutex",
                     f"Mutex {name} constructed without a "
                     "{LockRank::k..., \"name\"} initializer"))
            if rel.endswith(".h"):
                mutex_block_guard = name
            if not stripped.endswith(";"):
                in_continuation = True  # Initializer spills onto more lines.
            continue

        # --- unguarded-member-after-mutex ---------------------------------
        if mutex_block_guard is not None:
            if (not stripped or stripped in ("};", "}")
                    or stripped.endswith(":")  # access specifier / label
                    or stripped.startswith("#")):
                mutex_block_guard = None
            elif is_comment(stripped):
                pass  # Doc comment inside the block: keep scanning.
            elif "(" in code and "=" not in code.split("(", 1)[0] \
                    and "{" not in code.split("(", 1)[0] and "GUARDED_BY" not in code:
                pass  # Function declaration, not a data member.
            elif MEMBER_EXEMPT_RE.match(code):
                pass
            elif "GUARDED_BY" in line:
                pass
            elif "//" in line or (i > 0 and is_comment(lines[i - 1])):
                pass  # Trailing or preceding rationale comment.
            elif code.rstrip().endswith(";"):
                findings.append(
                    (rel, lineno, "unguarded-member-after-mutex",
                     f"member adjacent to Mutex {mutex_block_guard} lacks "
                     "GUARDED_BY (or a trailing rationale comment)"))

        # --- unexplained-void-cast ----------------------------------------
        if VOID_CAST_RE.match(code):
            has_rationale = "//" in line
            if not has_rationale and i > 0:
                has_rationale = is_comment(lines[i - 1])
            if not has_rationale:
                findings.append(
                    (rel, lineno, "unexplained-void-cast",
                     "(void) discards a result without a rationale comment "
                     "on this line or the line above"))

        # --- empty-io-rationale -------------------------------------------
        m = IO_SECTION_RE.search(code)
        if m:
            rest = m.group(1).strip()
            # The rationale may start on the next line; only flag clearly
            # empty ones: `IoAllowedSection io("");` or `...()`.
            if rest.startswith('""') or rest.startswith(")"):
                findings.append(
                    (rel, lineno, "empty-io-rationale",
                     "IoAllowedSection needs a non-empty rationale string"))


def main(argv):
    roots = argv[1:] or ["src"]
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []
    files = []
    for root in roots:
        root = os.path.join(repo, root) if not os.path.isabs(root) else root
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    src_root = os.path.join(repo, "src")
    for path in sorted(files):
        rel = os.path.relpath(path, src_root)
        lint_file(path, rel, findings)

    for rel, lineno, rule, msg in findings:
        print(f"src/{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"\n{len(findings)} finding(s) across {len(files)} files")
        return 1
    print(f"lint_invariants: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
