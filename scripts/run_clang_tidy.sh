#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources using the compile database of an existing CMake build tree.
#
#   scripts/run_clang_tidy.sh [build_dir] [path...]
#
# Defaults: build_dir=build, paths=src. Requires a build configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level CMakeLists turns this
# on). Set CLANG_TIDY to point at a specific binary, e.g. clang-tidy-17.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [ "$#" -gt 0 ]; then shift; fi
PATHS=("$@")
if [ "${#PATHS[@]}" -eq 0 ]; then PATHS=(src); fi

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "error: $CLANG_TIDY not found (set CLANG_TIDY to override)" >&2
  exit 1
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json missing" >&2
  echo "hint: cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

mapfile -t FILES < <(find "${PATHS[@]}" \( -name '*.cc' -o -name '*.cpp' \) | sort)
echo "clang-tidy over ${#FILES[@]} files (${PATHS[*]})..."
exec "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
