#include "btree/bptree.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace lsmlab {

namespace {
constexpr uint32_t kMetaMagic = 0xb9273e11;
}  // namespace

size_t BPlusTree::Node::SerializedSize() const {
  size_t size = 1 + 4 + 4;  // leaf flag + entry count + next_leaf.
  for (const auto& k : keys) {
    size += 5 + k.size();
  }
  if (leaf) {
    for (const auto& v : values) {
      size += 5 + v.size();
    }
  } else {
    size += children.size() * 4 + 4;
  }
  return size;
}

BPlusTree::BPlusTree(const BPlusTreeOptions& options, Env* env,
                     std::string path)
    : options_(options), env_(env), path_(std::move(path)) {}

BPlusTree::~BPlusTree() {
  // A destructor cannot report the error; callers that need durability
  // must Flush() explicitly first.
  (void)Flush();
}

Status BPlusTree::Open(const BPlusTreeOptions& options, Env* env,
                       const std::string& path,
                       std::unique_ptr<BPlusTree>* tree) {
  tree->reset();
  auto t = std::unique_ptr<BPlusTree>(new BPlusTree(options, env, path));
  bool existed = env->FileExists(path);
  Status s = env->NewRandomRWFile(path, &t->file_);
  if (!s.ok()) {
    return s;
  }
  if (existed) {
    uint64_t size = 0;
    s = env->GetFileSize(path, &size);
    if (!s.ok()) {
      return s;
    }
    existed = size >= options.page_size;
  }
  if (existed) {
    s = t->LoadMeta();
  } else {
    // Fresh tree: an empty root leaf at page 1.
    Node root;
    root.leaf = true;
    s = t->WriteNode(1, root);
    if (s.ok()) {
      s = t->SaveMeta();
    }
  }
  if (!s.ok()) {
    return s;
  }
  *tree = std::move(t);
  return Status::OK();
}

Status BPlusTree::LoadMeta() {
  std::string scratch(options_.page_size, '\0');
  Slice result;
  Status s = file_->Read(0, options_.page_size, &result, scratch.data());
  if (!s.ok()) {
    return s;
  }
  if (result.size() < 20 || DecodeFixed32(result.data()) != kMetaMagic) {
    return Status::Corruption("bad b+tree meta page");
  }
  root_page_id_ = DecodeFixed32(result.data() + 4);
  next_page_id_ = DecodeFixed32(result.data() + 8);
  num_entries_ = DecodeFixed64(result.data() + 12);
  return Status::OK();
}

Status BPlusTree::SaveMeta() {
  std::string page(options_.page_size, '\0');
  EncodeFixed32(page.data(), kMetaMagic);
  EncodeFixed32(page.data() + 4, root_page_id_);
  EncodeFixed32(page.data() + 8, next_page_id_);
  EncodeFixed64(page.data() + 12, num_entries_);
  return file_->Write(0, page);
}

uint32_t BPlusTree::AllocatePage() { return next_page_id_++; }

Status BPlusTree::WriteNode(uint32_t page_id, const Node& node) {
  std::string page;
  page.reserve(options_.page_size);
  page.push_back(node.leaf ? 1 : 0);
  PutFixed32(&page, static_cast<uint32_t>(node.keys.size()));
  PutFixed32(&page, node.next_leaf);
  for (const auto& k : node.keys) {
    PutLengthPrefixedSlice(&page, k);
  }
  if (node.leaf) {
    for (const auto& v : node.values) {
      PutLengthPrefixedSlice(&page, v);
    }
  } else {
    PutFixed32(&page, static_cast<uint32_t>(node.children.size()));
    for (uint32_t child : node.children) {
      PutFixed32(&page, child);
    }
  }
  if (page.size() > options_.page_size) {
    return Status::Corruption("b+tree node overflows page");
  }
  page.resize(options_.page_size, '\0');
  return file_->Write(static_cast<uint64_t>(page_id) * options_.page_size,
                      page);
}

Status BPlusTree::GetNode(uint32_t page_id, std::shared_ptr<Node>* node) {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    *node = it->second.node;
    // Promote to MRU.
    lru_.splice(lru_.begin(), lru_, lru_pos_[page_id]);
    return Status::OK();
  }

  std::string scratch(options_.page_size, '\0');
  Slice result;
  Status s =
      file_->Read(static_cast<uint64_t>(page_id) * options_.page_size,
                  options_.page_size, &result, scratch.data());
  if (!s.ok()) {
    return s;
  }
  if (result.size() < 9) {
    return Status::Corruption("short b+tree page read");
  }

  auto n = std::make_shared<Node>();
  Slice input(result.data() + 9, result.size() - 9);
  n->leaf = result[0] != 0;
  uint32_t num_keys = DecodeFixed32(result.data() + 1);
  n->next_leaf = DecodeFixed32(result.data() + 5);
  n->keys.reserve(num_keys);
  for (uint32_t i = 0; i < num_keys; ++i) {
    Slice k;
    if (!GetLengthPrefixedSlice(&input, &k)) {
      return Status::Corruption("bad b+tree key");
    }
    n->keys.push_back(k.ToString());
  }
  if (n->leaf) {
    n->values.reserve(num_keys);
    for (uint32_t i = 0; i < num_keys; ++i) {
      Slice v;
      if (!GetLengthPrefixedSlice(&input, &v)) {
        return Status::Corruption("bad b+tree value");
      }
      n->values.push_back(v.ToString());
    }
  } else {
    uint32_t num_children;
    if (!GetFixed32(&input, &num_children)) {
      return Status::Corruption("bad b+tree child count");
    }
    n->children.reserve(num_children);
    for (uint32_t i = 0; i < num_children; ++i) {
      uint32_t child;
      if (!GetFixed32(&input, &child)) {
        return Status::Corruption("bad b+tree child");
      }
      n->children.push_back(child);
    }
  }

  cache_[page_id] = CacheEntry{n, false};
  lru_.push_front(page_id);
  lru_pos_[page_id] = lru_.begin();
  *node = std::move(n);
  return EvictIfNeeded();
}

void BPlusTree::MarkDirty(uint32_t page_id) {
  auto it = cache_.find(page_id);
  assert(it != cache_.end());
  it->second.dirty = true;
}

Status BPlusTree::EvictIfNeeded() {
  while (cache_.size() > options_.cache_pages && !lru_.empty()) {
    uint32_t victim = lru_.back();
    auto it = cache_.find(victim);
    if (it->second.dirty) {
      Status s = WriteNode(victim, *it->second.node);
      if (!s.ok()) {
        return s;
      }
    }
    cache_.erase(it);
    lru_pos_.erase(victim);
    lru_.pop_back();
  }
  return Status::OK();
}

Status BPlusTree::DescendToLeaf(const Slice& key, std::vector<uint32_t>* path,
                                std::shared_ptr<Node>* leaf) {
  path->clear();
  uint32_t page_id = root_page_id_;
  while (true) {
    path->push_back(page_id);
    std::shared_ptr<Node> node;
    Status s = GetNode(page_id, &node);
    if (!s.ok()) {
      return s;
    }
    if (node->leaf) {
      *leaf = std::move(node);
      return Status::OK();
    }
    // children[i] covers keys < keys[i]; the last child covers the rest.
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(),
                         key.ToString()) -
        node->keys.begin());
    page_id = node->children[i];
  }
}

Status BPlusTree::SplitIfNeeded(std::vector<uint32_t>* path) {
  while (!path->empty()) {
    uint32_t page_id = path->back();
    std::shared_ptr<Node> node;
    Status s = GetNode(page_id, &node);
    if (!s.ok()) {
      return s;
    }
    // Leave trailer slack for the fixed header fields.
    if (node->SerializedSize() <= options_.page_size - 16 ||
        node->keys.size() < 2) {
      return Status::OK();
    }

    // Split into [0, mid) and [mid, n).
    size_t mid = node->keys.size() / 2;
    auto right = std::make_shared<Node>();
    right->leaf = node->leaf;
    std::string separator;
    uint32_t right_page = AllocatePage();

    if (node->leaf) {
      right->keys.assign(node->keys.begin() + mid, node->keys.end());
      right->values.assign(node->values.begin() + mid, node->values.end());
      node->keys.resize(mid);
      node->values.resize(mid);
      right->next_leaf = node->next_leaf;
      node->next_leaf = right_page;
      separator = right->keys.front();
    } else {
      // The middle key moves up; children split around it.
      separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
      right->children.assign(node->children.begin() + mid + 1,
                             node->children.end());
      node->keys.resize(mid);
      node->children.resize(mid + 1);
    }

    // Persist the new right node via the cache.
    cache_[right_page] = CacheEntry{right, true};
    lru_.push_front(right_page);
    lru_pos_[right_page] = lru_.begin();
    MarkDirty(page_id);

    path->pop_back();
    if (path->empty()) {
      // Split the root: a new root with two children.
      auto new_root = std::make_shared<Node>();
      new_root->leaf = false;
      new_root->keys.push_back(separator);
      new_root->children.push_back(page_id);
      new_root->children.push_back(right_page);
      uint32_t new_root_page = AllocatePage();
      cache_[new_root_page] = CacheEntry{new_root, true};
      lru_.push_front(new_root_page);
      lru_pos_[new_root_page] = lru_.begin();
      root_page_id_ = new_root_page;
      return EvictIfNeeded();
    }

    // Insert the separator into the parent and loop to check its size.
    uint32_t parent_id = path->back();
    std::shared_ptr<Node> parent;
    s = GetNode(parent_id, &parent);
    if (!s.ok()) {
      return s;
    }
    size_t pos = static_cast<size_t>(
        std::upper_bound(parent->keys.begin(), parent->keys.end(),
                         separator) -
        parent->keys.begin());
    parent->keys.insert(parent->keys.begin() + pos, separator);
    parent->children.insert(parent->children.begin() + pos + 1, right_page);
    MarkDirty(parent_id);
    s = EvictIfNeeded();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status BPlusTree::Insert(const Slice& key, const Slice& value) {
  if (key.size() + value.size() > options_.page_size / 4) {
    return Status::InvalidArgument("entry too large for b+tree page");
  }
  std::vector<uint32_t> path;
  std::shared_ptr<Node> leaf;
  Status s = DescendToLeaf(key, &path, &leaf);
  if (!s.ok()) {
    return s;
  }

  std::string key_str = key.ToString();
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key_str);
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key_str) {
    leaf->values[pos] = value.ToString();  // In-place update.
  } else {
    leaf->keys.insert(it, key_str);
    leaf->values.insert(leaf->values.begin() + pos, value.ToString());
    ++num_entries_;
  }
  MarkDirty(path.back());

  // Write-through: an in-place engine pays the page write per update; this
  // is the behaviour the LSM comparison measures. The page cache still
  // absorbs re-reads.
  s = WriteNode(path.back(), *leaf);
  if (!s.ok()) {
    return s;
  }
  auto ce = cache_.find(path.back());
  if (ce != cache_.end()) {
    ce->second.dirty = false;
  }
  return SplitIfNeeded(&path);
}

Status BPlusTree::Get(const Slice& key, std::string* value) {
  std::vector<uint32_t> path;
  std::shared_ptr<Node> leaf;
  Status s = DescendToLeaf(key, &path, &leaf);
  if (!s.ok()) {
    return s;
  }
  std::string key_str = key.ToString();
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key_str);
  if (it == leaf->keys.end() || *it != key_str) {
    return Status::NotFound("key not in b+tree");
  }
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (leaf->values[pos].empty()) {
    return Status::NotFound("key deleted");
  }
  *value = leaf->values[pos];
  return Status::OK();
}

Status BPlusTree::Delete(const Slice& key) {
  // Logical delete: empty value marker.
  return Insert(key, Slice());
}

Status BPlusTree::Scan(
    const Slice& start, int count,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::vector<uint32_t> path;
  std::shared_ptr<Node> leaf;
  Status s = DescendToLeaf(start, &path, &leaf);
  if (!s.ok()) {
    return s;
  }
  std::string start_str = start.ToString();
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), start_str);
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  while (static_cast<int>(out->size()) < count) {
    if (pos >= leaf->keys.size()) {
      if (leaf->next_leaf == 0) {
        break;
      }
      uint32_t next = leaf->next_leaf;
      s = GetNode(next, &leaf);
      if (!s.ok()) {
        return s;
      }
      pos = 0;
      continue;
    }
    if (!leaf->values[pos].empty()) {
      out->emplace_back(leaf->keys[pos], leaf->values[pos]);
    }
    ++pos;
  }
  return Status::OK();
}

Status BPlusTree::Flush() {
  if (file_ == nullptr) {
    return Status::OK();
  }
  for (auto& [page_id, entry] : cache_) {
    if (entry.dirty) {
      Status s = WriteNode(page_id, *entry.node);
      if (!s.ok()) {
        return s;
      }
      entry.dirty = false;
    }
  }
  Status s = SaveMeta();
  if (s.ok() && options_.sync_on_flush) {
    s = file_->Sync();
  }
  return s;
}

}  // namespace lsmlab
