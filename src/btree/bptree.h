#ifndef LSMLAB_BTREE_BPTREE_H_
#define LSMLAB_BTREE_BPTREE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

struct BPlusTreeOptions {
  size_t page_size = 4096;
  /// Pages held in the in-memory page cache.
  size_t cache_pages = 256;
  /// Sync the page file on Flush().
  bool sync_on_flush = true;
};

/// A disk-based B+-tree with in-place updates: the classic index the LSM
/// paradigm is contrasted against (tutorial §1, §2.1). Every leaf update is
/// a read-modify-write of a page — the source of its poor ingestion
/// behaviour relative to out-of-place LSM writes.
///
/// Single-threaded by design (the comparison experiments drive it from one
/// thread). Keys and values must fit well within a page: key+value size is
/// limited to page_size / 4.
class BPlusTree {
 public:
  static Status Open(const BPlusTreeOptions& options, Env* env,
                     const std::string& path,
                     std::unique_ptr<BPlusTree>* tree);

  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Upserts (key, value) in place.
  Status Insert(const Slice& key, const Slice& value);

  Status Get(const Slice& key, std::string* value);

  /// Deletes by writing an empty-value marker (logical delete; page-level
  /// reclamation is out of scope for the baseline).
  Status Delete(const Slice& key);

  /// Collects up to `count` live entries with key >= `start`.
  Status Scan(const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Writes back all dirty pages and the meta page.
  Status Flush();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_pages() const { return next_page_id_; }

 private:
  struct Node {
    bool leaf = true;
    /// Separator keys. For leaves, keys.size() == values.size(); for
    /// internal nodes, children.size() == keys.size() + 1.
    std::vector<std::string> keys;
    std::vector<std::string> values;    // Leaves only.
    std::vector<uint32_t> children;     // Internal only.
    uint32_t next_leaf = 0;             // Leaf chain for scans (0 = none).

    size_t SerializedSize() const;
  };

  BPlusTree(const BPlusTreeOptions& options, Env* env, std::string path);

  Status LoadMeta();
  Status SaveMeta();

  /// Returns the (cached) node for `page_id`.
  Status GetNode(uint32_t page_id, std::shared_ptr<Node>* node);
  void MarkDirty(uint32_t page_id);
  uint32_t AllocatePage();
  Status WriteNode(uint32_t page_id, const Node& node);
  Status EvictIfNeeded();

  /// Descends to the leaf for `key`, recording the path (page ids + child
  /// indexes) for split propagation.
  Status DescendToLeaf(const Slice& key, std::vector<uint32_t>* path,
                       std::shared_ptr<Node>* leaf);

  /// Splits the node at path.back() if oversized, propagating upward.
  Status SplitIfNeeded(std::vector<uint32_t>* path);

  const BPlusTreeOptions options_;
  Env* const env_;
  const std::string path_;
  std::unique_ptr<RandomRWFile> file_;

  uint32_t root_page_id_ = 1;
  uint32_t next_page_id_ = 2;  // Page 0 is the meta page.
  uint64_t num_entries_ = 0;

  struct CacheEntry {
    std::shared_ptr<Node> node;
    bool dirty = false;
  };
  std::unordered_map<uint32_t, CacheEntry> cache_;
  std::list<uint32_t> lru_;  // Front = MRU.
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> lru_pos_;
};

}  // namespace lsmlab

#endif  // LSMLAB_BTREE_BPTREE_H_
