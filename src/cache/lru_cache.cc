#include "cache/lru_cache.h"

#include <thread>

#include "util/hash.h"

namespace lsmlab {

namespace {
int RoundUpToPowerOfTwo(int n) {
  int p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

int LruCache::DefaultShardCount() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 4) {
    hw = 4;  // hardware_concurrency may report 0; keep some striping.
  }
  if (hw > 64) {
    hw = 64;  // Diminishing returns; bound per-shard capacity skew.
  }
  return RoundUpToPowerOfTwo(hw);
}

LruCache::LruCache(size_t capacity, int num_shards) : capacity_(capacity) {
  if (num_shards <= 0) {
    num_shards = DefaultShardCount();
  }
  num_shards = RoundUpToPowerOfTwo(num_shards);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = capacity / static_cast<size_t>(num_shards);
    shards_.push_back(std::move(shard));
  }
}

LruCache::Shard& LruCache::ShardFor(const Slice& key) {
  size_t h = HashSlice64(key, 0x85ebca6b);
  return *shards_[h & (shards_.size() - 1)];
}

void LruCache::Shard::EvictIfNeeded() {
  while (usage > capacity && !lru.empty()) {
    Entry& victim = lru.back();
    usage -= victim.charge;
    index.erase(victim.key);
    lru.pop_back();
    ++evictions;
  }
}

void LruCache::Insert(const Slice& key, std::shared_ptr<const void> value,
                      size_t charge) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  std::string key_str = key.ToString();
  auto it = shard.index.find(key_str);
  if (it != shard.index.end()) {
    shard.usage -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{std::move(key_str), std::move(value), charge});
  shard.index[shard.lru.front().key] = shard.lru.begin();
  shard.usage += charge;
  ++shard.inserts;
  shard.EvictIfNeeded();
}

std::shared_ptr<const void> LruCache::Lookup(const Slice& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key.ToString());
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Promote to MRU.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return shard.lru.front().value;
}

void LruCache::Erase(const Slice& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key.ToString());
  if (it != shard.index.end()) {
    shard.usage -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

void LruCache::Prune() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->usage = 0;
  }
}

size_t LruCache::ShardEntryCount(int index) const {
  const Shard& shard = *shards_[static_cast<size_t>(index)];
  MutexLock lock(&shard.mu);
  return shard.index.size();
}

size_t LruCache::usage() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->usage;
  }
  return total;
}

CacheStats LruCache::GetStats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
  }
  return stats;
}

void LruCache::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->hits = shard->misses = shard->inserts = shard->evictions = 0;
  }
}

}  // namespace lsmlab
