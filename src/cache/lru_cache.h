#ifndef LSMLAB_CACHE_LRU_CACHE_H_
#define LSMLAB_CACHE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/slice.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Aggregate cache counters; the block-cache experiments (E12) report the
/// hit ratio under compaction churn.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;

  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded LRU cache charging entries by byte size — the block cache of
/// tutorial §2.1.3. Values are type-erased shared_ptrs so evicted entries
/// stay alive while readers hold them. Thread-safe.
class LruCache {
 public:
  /// Shard count used when the caller passes 0: the smallest power of two
  /// >= hardware_concurrency, clamped to [4, 64].
  static int DefaultShardCount();

  /// `capacity` is the total byte budget across all shards. `num_shards`
  /// is rounded up to a power of two (shards are mask-indexed); 0 means
  /// DefaultShardCount().
  explicit LruCache(size_t capacity, int num_shards = 0);

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts (or replaces) `key`; `charge` is the entry's byte cost.
  void Insert(const Slice& key, std::shared_ptr<const void> value,
              size_t charge);

  /// Returns the cached value or nullptr, promoting the entry to MRU.
  std::shared_ptr<const void> Lookup(const Slice& key);

  void Erase(const Slice& key);

  /// Drops everything (used to model cache-wiping events in experiments).
  void Prune();

  size_t usage() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Entries currently held by shard `index`; for shard-distribution tests.
  size_t ShardEntryCount(int index) const;
  CacheStats GetStats() const;
  void ResetStats();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    size_t charge;
  };

  struct Shard {
    mutable Mutex mu{LockRank::kBlockCacheShard, "block_cache.shard.mu"};
    std::list<Entry> lru GUARDED_BY(mu);  // Front = MRU.
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        GUARDED_BY(mu);
    size_t usage GUARDED_BY(mu) = 0;
    size_t capacity = 0;  // Set once at construction; read-only afterwards.
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t inserts GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;

    void EvictIfNeeded() REQUIRES(mu);
  };

  Shard& ShardFor(const Slice& key);

  const size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lsmlab

#endif  // LSMLAB_CACHE_LRU_CACHE_H_
