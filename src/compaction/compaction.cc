#include "compaction/compaction.h"

#include <cassert>
#include <cstdio>

#include "util/comparator.h"

namespace lsmlab {

const char* CompactionTriggerName(CompactionTrigger trigger) {
  switch (trigger) {
    case CompactionTrigger::kLevelSize:
      return "level-size";
    case CompactionTrigger::kRunCount:
      return "run-count";
    case CompactionTrigger::kTombstoneTtl:
      return "tombstone-ttl";
    case CompactionTrigger::kManual:
      return "manual";
  }
  return "unknown";
}

void CompactionPlan::KeyRange(std::string* smallest,
                              std::string* largest) const {
  assert(!inputs.empty());
  const Comparator* ucmp = BytewiseComparator();
  bool first = true;
  auto widen = [&](const FileMetaData& f) {
    if (first || ucmp->Compare(f.smallest.user_key(), *smallest) < 0) {
      *smallest = f.smallest.user_key().ToString();
    }
    if (first || ucmp->Compare(f.largest.user_key(), *largest) > 0) {
      *largest = f.largest.user_key().ToString();
    }
    first = false;
  };
  for (const auto& f : inputs) widen(f);
  for (const auto& f : overlap) widen(f);
}

std::string CompactionPlan::DebugString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "compaction[%s] L%d(%zu files) -> L%d(%zu overlap) %s",
                CompactionTriggerName(trigger), input_level, inputs.size(),
                output_level, overlap.size(),
                bottommost ? "bottommost" : "");
  return std::string(buf);
}

}  // namespace lsmlab
