#include "compaction/compaction.h"

#include <cstdio>

namespace lsmlab {

const char* CompactionTriggerName(CompactionTrigger trigger) {
  switch (trigger) {
    case CompactionTrigger::kLevelSize:
      return "level-size";
    case CompactionTrigger::kRunCount:
      return "run-count";
    case CompactionTrigger::kTombstoneTtl:
      return "tombstone-ttl";
    case CompactionTrigger::kManual:
      return "manual";
  }
  return "unknown";
}

std::string CompactionJob::DebugString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "compaction[%s] L%d(%zu files) -> L%d(%zu overlap) %s",
                CompactionTriggerName(trigger), input_level, inputs.size(),
                output_level, overlap.size(),
                bottommost ? "bottommost" : "");
  return std::string(buf);
}

}  // namespace lsmlab
