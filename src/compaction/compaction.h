#ifndef LSMLAB_COMPACTION_COMPACTION_H_
#define LSMLAB_COMPACTION_COMPACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "version/version_edit.h"

namespace lsmlab {

/// What fired a compaction — the "trigger" primitive of the compaction
/// design space (tutorial §2.2.4).
enum class CompactionTrigger {
  kLevelSize,       // A leveled level exceeded its byte capacity.
  kRunCount,        // A tiered level accumulated too many runs.
  kTombstoneTtl,    // FADE: a file's tombstones exceeded their TTL (Lethe).
  kManual,          // CompactRange().
};

const char* CompactionTriggerName(CompactionTrigger trigger);

/// A fully specified compaction plan: the picker's output, a CompactionJob's
/// input. Together with CompactionTrigger this encodes all four primitives
/// of the design space: trigger, data layout (via which levels hold runs),
/// granularity (how many input files), and data-movement policy (which
/// files were picked).
struct CompactionPlan {
  CompactionTrigger trigger = CompactionTrigger::kLevelSize;
  int input_level = 0;
  int output_level = 0;
  /// Files taken from input_level.
  std::vector<FileMetaData> inputs;
  /// Files of output_level merged in (empty when the target level is tiered:
  /// the output then becomes a fresh run stacked on that level).
  std::vector<FileMetaData> overlap;
  /// True when tombstones (and the entries they shadow) may be dropped:
  /// nothing deeper can contain the affected keys.
  bool bottommost = false;

  uint64_t InputBytes() const {
    uint64_t total = 0;
    for (const auto& f : inputs) total += f.file_size;
    for (const auto& f : overlap) total += f.file_size;
    return total;
  }

  /// Inclusive user-key hull over inputs and overlap — the key range this
  /// plan claims at both its levels for conflict tracking. Requires at
  /// least one input file.
  void KeyRange(std::string* smallest, std::string* largest) const;

  std::string DebugString() const;
};

}  // namespace lsmlab

#endif  // LSMLAB_COMPACTION_COMPACTION_H_
