#include "compaction/compaction_job.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "db/filename.h"
#include "db/internal_iterators.h"
#include "table/merging_iterator.h"
#include "version/version_set.h"

namespace lsmlab {

namespace {
/// Charge the rate limiter in chunks so throttling is smooth but cheap.
constexpr uint64_t kRateLimitChunk = 256 << 10;
/// How many merge-loop iterations between shutdown-abort checks.
constexpr int kAbortCheckInterval = 512;
}  // namespace

CompactionJob::CompactionJob(uint64_t id, CompactionPlan plan, Context context)
    : id_(id),
      plan_(std::move(plan)),
      ctx_(std::move(context)),
      split_outputs_(!LevelIsTiered(ctx_.options->data_layout,
                                    plan_.output_level,
                                    ctx_.options->num_levels)) {}

Slice CompactionJob::CopyToArena(const Slice& key) {
  char* mem = arena_.Allocate(key.size());
  std::memcpy(mem, key.data(), key.size());
  return Slice(mem, key.size());
}

std::vector<Slice> CompactionJob::ComputeShardBoundaries() const {
  // Splitting is only sound when the output forms one sorted run built from
  // disjoint key shards — i.e. a leveled output. A tiered output must stay
  // a single file (one run), so it is never sharded.
  if (!split_outputs_ || ctx_.pool == nullptr ||
      ctx_.options->max_subcompactions <= 1) {
    return {};
  }

  // Candidate split points: the smallest user key of every input/overlap
  // file. File boundaries approximate an even byte distribution and are
  // cheap — no index sampling needed.
  const Comparator* ucmp = ctx_.options->comparator;
  std::vector<Slice> candidates;
  auto add = [&](const FileMetaData& f) {
    candidates.push_back(f.smallest.user_key());
  };
  for (const auto& f : plan_.inputs) add(f);
  for (const auto& f : plan_.overlap) add(f);
  std::sort(candidates.begin(), candidates.end(),
            [&](const Slice& a, const Slice& b) {
              return ucmp->Compare(a, b) < 0;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [&](const Slice& a, const Slice& b) {
                                 return ucmp->Compare(a, b) == 0;
                               }),
                   candidates.end());
  // The global minimum would open with an empty first shard; drop it.
  if (!candidates.empty()) {
    candidates.erase(candidates.begin());
  }
  if (candidates.empty()) {
    return {};
  }

  // Do not create more shards than the data can fill: at least one target
  // file's worth of input per shard, and never more than max_subcompactions.
  uint64_t by_bytes = std::max<uint64_t>(
      1, plan_.InputBytes() / std::max<uint64_t>(1, ctx_.options->target_file_size));
  size_t want = std::min<size_t>(
      static_cast<size_t>(ctx_.options->max_subcompactions),
      std::min(static_cast<size_t>(by_bytes), candidates.size() + 1));
  if (want <= 1) {
    return {};
  }

  std::vector<Slice> boundaries;
  boundaries.reserve(want - 1);
  for (size_t k = 1; k < want; ++k) {
    size_t idx = k * candidates.size() / want;
    boundaries.push_back(candidates[idx]);
  }
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end(),
                               [&](const Slice& a, const Slice& b) {
                                 return ucmp->Compare(a, b) == 0;
                               }),
                   boundaries.end());
  return boundaries;
}

Status CompactionJob::RunShard(Shard* shard) {
  const Comparator* ucmp = ctx_.options->comparator;

  // Open iterators over the files intersecting [begin, end), newest runs
  // first (tie order irrelevant: internal keys are unique, but keep it
  // anyway for clarity).
  std::vector<std::unique_ptr<Iterator>> children;
  uint64_t oldest_tombstone_hint = 0;
  auto add_file = [&](const FileMetaData& f) -> Status {
    if (shard->begin.has_value() &&
        ucmp->Compare(f.largest.user_key(), *shard->begin) < 0) {
      return Status::OK();  // Entirely below this shard.
    }
    if (shard->end.has_value() &&
        ucmp->Compare(f.smallest.user_key(), *shard->end) >= 0) {
      return Status::OK();  // Entirely at or above the shard's end.
    }
    std::shared_ptr<TableReader> reader;
    Status s = ctx_.table_cache->GetReader(ctx_.cache_dir_id, f.file_number,
                                           f.file_size, &reader);
    if (!s.ok()) {
      return s;
    }
    ReadOptions read_options;
    read_options.fill_cache = false;  // Compactions must not wipe the cache.
    // Prefetch input blocks so merge work overlaps the sequential reads.
    read_options.readahead_bytes = ctx_.options->compaction_readahead_bytes;
    auto iter = reader->NewIterator(read_options);
    children.push_back(std::make_unique<TableIteratorHolder>(
        std::move(reader), std::move(iter)));
    if (f.oldest_tombstone_time_micros != 0 &&
        (oldest_tombstone_hint == 0 ||
         f.oldest_tombstone_time_micros < oldest_tombstone_hint)) {
      oldest_tombstone_hint = f.oldest_tombstone_time_micros;
    }
    return Status::OK();
  };
  for (const auto& f : plan_.inputs) {
    Status s = add_file(f);
    if (!s.ok()) {
      return s;
    }
  }
  for (const auto& f : plan_.overlap) {
    Status s = add_file(f);
    if (!s.ok()) {
      return s;
    }
  }
  if (oldest_tombstone_hint == 0) {
    oldest_tombstone_hint = ctx_.options->clock->NowMicros();
  }

  auto input = NewMergingIterator(ctx_.icmp, std::move(children));
  if (shard->begin.has_value()) {
    // Seek to the first internal key of the shard's first user key.
    std::string seek_target;
    AppendInternalKey(
        &seek_target,
        ParsedInternalKey(*shard->begin, kMaxSequenceNumber,
                          kValueTypeForSeek));
    input->Seek(seek_target);
  } else {
    input->SeekToFirst();
  }

  // Merge loop with the LevelDB drop rules plus single-delete annihilation.
  TableBuilderOptions topt = ctx_.make_builder_options(plan_.output_level);
  topt.oldest_tombstone_time_micros = oldest_tombstone_hint;

  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t out_file_number = 0;
  InternalKey out_smallest, out_largest;
  uint64_t rate_limit_pending = 0;

  std::string current_user_key;
  bool has_current_user_key = false;
  // True once a full overwrite (value/tombstone/pointer — NOT a merge
  // operand) with seq <= oldest_snapshot has been seen for the current
  // user key: everything older is invisible to every reader and can drop.
  bool shadowed_below_snapshot = false;

  // Pending single-delete tombstone waiting to annihilate with an older put.
  bool pending_sd = false;
  std::string pending_sd_key;   // Internal key bytes.
  std::string pending_sd_ukey;  // Its user key.

  Status s;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) {
      return Status::OK();
    }
    Status fs = builder->Finish();
    if (fs.ok()) {
      fs = out_file->Sync();
    }
    if (fs.ok()) {
      fs = out_file->Close();
    }
    if (fs.ok()) {
      FileMetaData meta;
      meta.file_number = out_file_number;
      meta.file_size = builder->FileSize();
      meta.smallest = out_smallest;
      meta.largest = out_largest;
      meta.num_entries = builder->properties().num_entries;
      meta.num_tombstones = builder->properties().num_tombstones;
      meta.creation_time_micros = builder->properties().creation_time_micros;
      meta.oldest_tombstone_time_micros =
          meta.num_tombstones > 0 ? oldest_tombstone_hint : 0;
      shard->outputs.push_back(meta);
      shard->bytes_written += meta.file_size;
      ctx_.stats->compaction_bytes_written.fetch_add(
          meta.file_size, std::memory_order_relaxed);
    }
    builder.reset();
    out_file.reset();
    return fs;
  };

  auto emit = [&](const Slice& internal_key, const Slice& value) -> Status {
    // Cut outputs only on user-key boundaries: every version and merge
    // operand of a user key must land in one file, or a leveled level ends
    // up with two files sharing a boundary key — Get would stop at the
    // first and miss the entries in the second, and the level invariant
    // (disjoint user-key ranges) rejects the install.
    if (builder != nullptr && split_outputs_ &&
        builder->FileSize() >= ctx_.options->target_file_size &&
        ctx_.icmp->user_comparator()->Compare(ExtractUserKey(internal_key),
                                              out_largest.user_key()) != 0) {
      Status fs = finish_output();
      if (!fs.ok()) {
        return fs;
      }
    }
    if (builder == nullptr) {
      out_file_number = ctx_.pin_new_file_number();
      Status es = ctx_.options->env->NewWritableFile(
          TableFileName(ctx_.dbname, out_file_number), &out_file);
      if (!es.ok()) {
        ctx_.unpin_output(out_file_number);
        out_file_number = 0;
        return es;
      }
      builder = std::make_unique<TableBuilder>(topt, out_file.get());
      out_smallest.DecodeFrom(internal_key);
    }
    out_largest.DecodeFrom(internal_key);
    builder->Add(internal_key, value);

    // SILK-style bandwidth throttling; compactions request at low priority
    // so flushes pass them under contention.
    rate_limit_pending += internal_key.size() + value.size();
    if (rate_limit_pending >= kRateLimitChunk) {
      if (ctx_.rate_limiter != nullptr) {
        ctx_.rate_limiter->Request(rate_limit_pending,
                                   /*high_priority=*/false);
      }
      rate_limit_pending = 0;
    }
    return Status::OK();
  };

  auto flush_pending_sd = [&]() -> Status {
    if (!pending_sd) {
      return Status::OK();
    }
    pending_sd = false;
    SequenceNumber sd_seq = ExtractSequence(pending_sd_key);
    if (plan_.bottommost && sd_seq <= ctx_.oldest_snapshot) {
      // Nothing below can match it: the tombstone itself can go.
      ++shard->tombstones_dropped;
      return Status::OK();
    }
    return emit(pending_sd_key, Slice());
  };

  int since_abort_check = 0;
  for (; s.ok() && input->Valid(); input->Next()) {
    if (++since_abort_check >= kAbortCheckInterval) {
      since_abort_check = 0;
      if (failed_.load(std::memory_order_relaxed) ||
          (ctx_.should_abort && ctx_.should_abort())) {
        s = Status::Aborted("compaction job ", std::to_string(id_));
        break;
      }
    }

    Slice internal_key = input->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed)) {
      s = Status::Corruption("malformed key in compaction input");
      break;
    }
    if (shard->end.has_value() &&
        ucmp->Compare(parsed.user_key, *shard->end) >= 0) {
      break;  // Next shard's territory.
    }

    // Single-delete annihilation: the pending SD meets the next entry.
    if (pending_sd) {
      if (ucmp->Compare(parsed.user_key, pending_sd_ukey) == 0) {
        SequenceNumber sd_seq = ExtractSequence(pending_sd_key);
        if (parsed.type == kTypeValue &&
            parsed.sequence <= ctx_.oldest_snapshot &&
            sd_seq <= ctx_.oldest_snapshot) {
          // Annihilate the pair: drop both the SD and the put it deletes.
          pending_sd = false;
          ++shard->tombstones_dropped;
          ++shard->entries_dropped;
          if (parsed.type == kTypeVlogPointer && ctx_.vlog != nullptr) {
            VlogPointer ptr;
            if (ptr.DecodeFrom(input->value())) {
              shard->vlog_garbage.emplace_back(ptr.file_number, ptr.size);
            }
          }
          // Older versions of this key fall through to the normal rule
          // with the annihilated pair acting as the shadow.
          current_user_key = parsed.user_key.ToString();
          has_current_user_key = true;
          shadowed_below_snapshot = true;
          continue;
        }
        // Not annihilable: emit the SD, then process this entry normally.
        s = flush_pending_sd();
        if (!s.ok()) {
          break;
        }
      } else {
        s = flush_pending_sd();
        if (!s.ok()) {
          break;
        }
      }
    }

    bool drop = false;
    if (!has_current_user_key ||
        ucmp->Compare(parsed.user_key, Slice(current_user_key)) != 0) {
      // First occurrence (newest version) of this user key.
      current_user_key = parsed.user_key.ToString();
      has_current_user_key = true;
      shadowed_below_snapshot = false;
    }

    if (shadowed_below_snapshot) {
      // A newer full overwrite visible to every snapshot shadows this entry
      // (§2.1.1-B: updates/deletes applied lazily, here at merge time).
      drop = true;
      ++shard->entries_dropped;
      if (parsed.type == kTypeVlogPointer && ctx_.vlog != nullptr) {
        VlogPointer ptr;
        if (ptr.DecodeFrom(input->value())) {
          shard->vlog_garbage.emplace_back(ptr.file_number, ptr.size);
        }
      }
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= ctx_.oldest_snapshot && plan_.bottommost) {
      // Tombstone at the bottom: everything it shadows is gone, so the
      // tombstone itself is garbage (§2.1.2: delete persistence).
      drop = true;
      shadowed_below_snapshot = true;
      ++shard->tombstones_dropped;
    } else if (parsed.type == kTypeSingleDeletion &&
               parsed.sequence <= ctx_.oldest_snapshot) {
      // Buffer: it annihilates with the first older put of the same key.
      pending_sd = true;
      pending_sd_key.assign(internal_key.data(), internal_key.size());
      pending_sd_ukey = parsed.user_key.ToString();
      shadowed_below_snapshot = true;
      continue;
    } else if (parsed.type != kTypeMerge &&
               parsed.sequence <= ctx_.oldest_snapshot) {
      // Values, tombstones, and vlog pointers shadow everything older;
      // merge operands do NOT — they depend on the base value below them.
      shadowed_below_snapshot = true;
    }

    if (!drop) {
      s = emit(internal_key, input->value());
    }
  }
  if (s.ok()) {
    s = flush_pending_sd();
  }
  if (s.ok() && !input->status().ok()) {
    s = input->status();
  }
  if (s.ok()) {
    s = finish_output();
  }
  if (rate_limit_pending > 0 && ctx_.rate_limiter != nullptr) {
    ctx_.rate_limiter->Request(rate_limit_pending, /*high_priority=*/false);
  }

  if (!s.ok() && builder != nullptr) {
    // Abandon the in-progress output; completed shard outputs are removed
    // by Cleanup().
    builder->Abandon();
    builder.reset();
    out_file.reset();
    // Best effort; an orphan is reclaimed by RemoveObsoleteFiles.
    (void)ctx_.options->env->RemoveFile(
        TableFileName(ctx_.dbname, out_file_number));
    ctx_.unpin_output(out_file_number);
  }
  return s;
}

void CompactionJob::ExecuteShard(size_t index) {
  Shard* shard = &shards_[index];
  if (failed_.load(std::memory_order_relaxed)) {
    shard->status = Status::Aborted("sibling shard failed");
  } else {
    shard->status = RunShard(shard);
  }
  if (!shard->status.ok()) {
    failed_.store(true, std::memory_order_relaxed);
  }
  {
    // Notify while holding the lock: the coordinator may destroy this job
    // the moment its wait-predicate sees the final count, so the signal
    // must be ordered before the waiter can re-acquire shard_mu_.
    MutexLock lock(&shard_mu_);
    ++shards_done_;
    shard_cv_.SignalAll();
  }
}

Status CompactionJob::Run() {
  assert(!ran_);
  ran_ = true;

  bytes_read_ = plan_.InputBytes();
  ctx_.stats->compaction_bytes_read.fetch_add(bytes_read_,
                                              std::memory_order_relaxed);

  // Partition into shards. Boundary keys live in the job arena so the
  // concurrent shard loops can reference them safely.
  std::vector<Slice> boundaries;
  for (const Slice& b : ComputeShardBoundaries()) {
    boundaries.push_back(CopyToArena(b));
  }
  shards_.resize(boundaries.size() + 1);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) {
      shards_[i].begin = boundaries[i - 1];
    }
    if (i < boundaries.size()) {
      shards_[i].end = boundaries[i];
    }
  }

  if (shards_.size() == 1) {
    shards_[0].status = RunShard(&shards_[0]);
  } else {
    ctx_.stats->subcompactions.fetch_add(shards_.size(),
                                         std::memory_order_relaxed);
    // Coordinator runs shard 0 itself and helps drain the kMedium queue
    // while waiting, so progress is guaranteed even when every pool worker
    // is itself a coordinator.
    for (size_t i = 1; i < shards_.size(); ++i) {
      ctx_.pool->Schedule([this, i] { ExecuteShard(i); },
                          ThreadPool::Priority::kMedium);
    }
    ExecuteShard(0);
    while (true) {
      {
        MutexLock lock(&shard_mu_);
        if (shards_done_ == shards_.size()) {
          break;
        }
      }
      if (ctx_.pool->TryRunTask(ThreadPool::Priority::kMedium)) {
        continue;  // Ran someone's shard; re-check.
      }
      // Queue empty: every remaining shard is running on some thread and
      // will signal when done.
      MutexLock lock(&shard_mu_);
      while (shards_done_ != shards_.size()) {
        shard_cv_.Wait(shard_mu_);
      }
    }
  }

  // Error aggregation: real errors outrank aborts (an abort is often just
  // the echo of a sibling's failure).
  Status result;
  for (const auto& shard : shards_) {
    if (!shard.status.ok() && !shard.status.IsAborted()) {
      result = shard.status;
      break;
    }
  }
  if (result.ok()) {
    for (const auto& shard : shards_) {
      if (!shard.status.ok()) {
        result = shard.status;
        break;
      }
    }
  }
  if (!result.ok()) {
    return result;
  }

  // Stitch: shards are key-ordered, so concatenating their outputs yields
  // the sorted output run; one edit installs everything atomically.
  for (auto& shard : shards_) {
    for (auto& meta : shard.outputs) {
      outputs_.push_back(meta);
    }
    bytes_written_ += shard.bytes_written;
    tombstones_dropped_ += shard.tombstones_dropped;
    entries_dropped_ += shard.entries_dropped;
    if (ctx_.vlog != nullptr) {
      for (const auto& [file_number, size] : shard.vlog_garbage) {
        ctx_.vlog->AddGarbage(file_number, size);
      }
    }
  }
  ctx_.stats->tombstones_dropped.fetch_add(tombstones_dropped_,
                                           std::memory_order_relaxed);
  ctx_.stats->entries_dropped_obsolete.fetch_add(entries_dropped_,
                                                 std::memory_order_relaxed);

  for (const auto& f : plan_.inputs) {
    edit_.RemoveFile(plan_.input_level, f.file_number);
  }
  for (const auto& f : plan_.overlap) {
    edit_.RemoveFile(plan_.output_level, f.file_number);
  }
  for (const auto& meta : outputs_) {
    edit_.AddFile(plan_.output_level, meta);
  }
  return Status::OK();
}

void CompactionJob::Cleanup() {
  for (auto& shard : shards_) {
    for (const auto& meta : shard.outputs) {
      // Best effort; an orphan is reclaimed by RemoveObsoleteFiles.
      (void)ctx_.options->env->RemoveFile(
          TableFileName(ctx_.dbname, meta.file_number));
      ctx_.unpin_output(meta.file_number);
    }
    shard.outputs.clear();
  }
  outputs_.clear();
}

void CompactionJob::ReleaseOutputPins() {
  for (const auto& meta : outputs_) {
    ctx_.unpin_output(meta.file_number);
  }
}

}  // namespace lsmlab
