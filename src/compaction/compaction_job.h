#ifndef LSMLAB_COMPACTION_COMPACTION_JOB_H_
#define LSMLAB_COMPACTION_COMPACTION_JOB_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compaction/compaction.h"
#include "db/dbformat.h"
#include "db/statistics.h"
#include "db/table_cache.h"
#include "kvsep/vlog.h"
#include "table/table_builder.h"
#include "util/arena.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "version/version_edit.h"

namespace lsmlab {

/// One background compaction, extracted from the DB into a self-contained
/// job object: it owns its arena, per-job stats, output set, and the
/// VersionEdit that installs its result. The scheduler (DB) creates a job
/// from a CompactionPlan, calls Run() off the DB mutex, and either installs
/// edit() or calls Cleanup().
///
/// Subcompaction splitting: when the output level is leveled and
/// Options::max_subcompactions > 1, Run() partitions the input user-key
/// space at file-boundary keys into N disjoint shards, executes them in
/// parallel on the thread pool (Priority::kMedium), and stitches the shard
/// outputs back into one atomic edit. All versions of a user key land in
/// exactly one shard, so the merge drop rules (shadowing, bottommost
/// tombstone drop, single-delete annihilation) stay correct per shard.
/// While waiting for its shards the coordinating thread helps drain the
/// kMedium queue, so splitting cannot deadlock even on a 1-thread pool.
class CompactionJob {
 public:
  /// Everything a job needs from the engine. Callbacks must be safe to call
  /// without the DB mutex held (they take it internally).
  struct Context {
    const Options* options = nullptr;
    std::string dbname;
    const InternalKeyComparator* icmp = nullptr;
    TableCache* table_cache = nullptr;
    /// Scope id of `dbname` in the (shared) table cache.
    uint64_t cache_dir_id = 0;
    VlogManager* vlog = nullptr;           // Null without kv separation.
    RateLimiter* rate_limiter = nullptr;   // Null disables throttling.
    Statistics* stats = nullptr;
    ThreadPool* pool = nullptr;            // Null disables subcompactions.
    /// Snapshot floor for the drop rules, fixed at admission time.
    SequenceNumber oldest_snapshot = 0;
    /// Allocates a fresh file number and pins it in pending_outputs_.
    std::function<uint64_t()> pin_new_file_number;
    /// Erases a pin placed by pin_new_file_number.
    std::function<void(uint64_t)> unpin_output;
    /// True when the job should abandon work (engine shutdown).
    std::function<bool()> should_abort;
    /// Per-level table-builder options (Monkey filter bits etc.).
    std::function<TableBuilderOptions(int level)> make_builder_options;
  };

  CompactionJob(uint64_t id, CompactionPlan plan, Context context);

  CompactionJob(const CompactionJob&) = delete;
  CompactionJob& operator=(const CompactionJob&) = delete;

  /// Executes the merge (possibly sharded). Returns OK on success,
  /// Status::Aborted when should_abort() interrupted it, or the first I/O /
  /// corruption error. On non-OK the caller must invoke Cleanup().
  Status Run();

  /// Removes every output file this job wrote and releases their pins.
  /// Idempotent; for the failure/abort path.
  void Cleanup();

  /// Releases the pending-output pins without removing files; for the
  /// caller once outputs are installed (or doomed to orphan collection).
  void ReleaseOutputPins();

  uint64_t id() const { return id_; }
  const CompactionPlan& plan() const { return plan_; }
  /// The stitched edit: inputs and overlap removed, outputs added.
  VersionEdit* edit() { return &edit_; }
  const std::vector<FileMetaData>& outputs() const { return outputs_; }

  // Per-job stats, valid after Run().
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t tombstones_dropped() const { return tombstones_dropped_; }
  uint64_t entries_dropped() const { return entries_dropped_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// One key-range shard of the merge: [begin, end) over user keys, with
  /// nullopt meaning unbounded on that side.
  struct Shard {
    std::optional<Slice> begin;
    std::optional<Slice> end;
    std::vector<FileMetaData> outputs;
    /// Vlog garbage discovered by the shard, applied after all shards
    /// finish (VlogManager accounting is not assumed thread-safe).
    std::vector<std::pair<uint64_t, uint64_t>> vlog_garbage;
    uint64_t bytes_written = 0;
    uint64_t tombstones_dropped = 0;
    uint64_t entries_dropped = 0;
    Status status;
  };

  /// Copies `key` into the job arena; the result stays valid for the job's
  /// lifetime (shards reference boundary keys concurrently).
  Slice CopyToArena(const Slice& key);

  /// Chooses interior split keys from the input/overlap file boundaries.
  /// Empty result means "run unsharded".
  std::vector<Slice> ComputeShardBoundaries() const;

  /// Runs one shard's merge loop; called concurrently for distinct shards.
  Status RunShard(Shard* shard);

  /// Pool entry point: runs shard `index`, records its status, and signals
  /// the coordinator.
  void ExecuteShard(size_t index);

  const uint64_t id_;
  const CompactionPlan plan_;
  const Context ctx_;
  /// Whether output may be split into target_file_size files (leveled
  /// output) — also the precondition for subcompaction splitting.
  const bool split_outputs_;

  Arena arena_;  // Holds shard-boundary key copies.
  std::vector<Shard> shards_;
  VersionEdit edit_;
  std::vector<FileMetaData> outputs_;

  Mutex shard_mu_{LockRank::kCompactionJob, "compaction_job.shard_mu"};
  CondVar shard_cv_;
  size_t shards_done_ GUARDED_BY(shard_mu_) = 0;
  /// Set by the first failing/aborting shard so siblings bail out early.
  std::atomic<bool> failed_{false};

  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t tombstones_dropped_ = 0;
  uint64_t entries_dropped_ = 0;
  bool ran_ = false;
};

}  // namespace lsmlab

#endif  // LSMLAB_COMPACTION_COMPACTION_JOB_H_
