#include "compaction/compaction_picker.h"

#include <algorithm>
#include <cassert>

#include "util/comparator.h"

namespace lsmlab {

CompactionPicker::CompactionPicker(const Options* options)
    : options_(options),
      cursor_(static_cast<size_t>(options->num_levels)) {}

uint64_t CompactionPicker::MaxBytesForLevel(int level) const {
  assert(level >= 1);
  uint64_t bytes = options_->max_bytes_for_level_base;
  for (int i = 1; i < level; ++i) {
    bytes *= static_cast<uint64_t>(options_->size_ratio);
  }
  return bytes;
}

int CompactionPicker::RunCountTrigger(int level) const {
  if (level == 0) {
    // L0's trigger is its own knob in every layout (absorbs flush bursts).
    return options_->level0_file_num_compaction_trigger;
  }
  return options_->size_ratio;
}

double CompactionPicker::Score(const Version& version, int level) const {
  bool tiered =
      level == 0 || LevelIsTiered(options_->data_layout, level,
                                  options_->num_levels);
  if (tiered) {
    return static_cast<double>(version.NumFiles(level)) /
           static_cast<double>(RunCountTrigger(level));
  }
  if (level == 0) {
    return 0.0;
  }
  return static_cast<double>(version.LevelBytes(level)) /
         static_cast<double>(MaxBytesForLevel(level));
}

bool CompactionPicker::FileBusy(const FileMetaData& f,
                                const PickContext& ctx) const {
  return ctx.busy_files != nullptr &&
         ctx.busy_files->count(f.file_number) > 0;
}

bool CompactionPicker::PlanAdmissible(CompactionPlan* plan,
                                      const PickContext& ctx) const {
  for (const auto& f : plan->inputs) {
    if (FileBusy(f, ctx)) {
      return false;
    }
  }
  for (const auto& f : plan->overlap) {
    if (FileBusy(f, ctx)) {
      return false;
    }
  }
  if (ctx.claimed != nullptr && !ctx.claimed->empty()) {
    const Comparator* ucmp = BytewiseComparator();
    std::string smallest, largest;
    plan->KeyRange(&smallest, &largest);
    for (const auto& claim : *ctx.claimed) {
      if (claim.level != plan->input_level &&
          claim.level != plan->output_level) {
        continue;
      }
      bool disjoint = ucmp->Compare(Slice(claim.largest), Slice(smallest)) <
                          0 ||
                      ucmp->Compare(Slice(largest), Slice(claim.smallest)) < 0;
      if (!disjoint) {
        return false;
      }
    }
  }
  if (ctx.deepest_running_output >= plan->output_level) {
    // A running job at or below the output level may still hold versions of
    // the affected keys; dropping tombstones here could resurrect them.
    plan->bottommost = false;
  }
  return true;
}

std::optional<CompactionPlan> CompactionPicker::PickTtlCompaction(
    const Version& version, uint64_t now_micros, const PickContext& ctx) {
  if (options_->tombstone_ttl_micros == 0) {
    return std::nullopt;
  }
  // FADE (Lethe): the file whose oldest tombstone is most overdue becomes
  // the top priority, bounding how long a delete can stay logical. Overdue
  // files whose plan conflicts with a running job are passed over until the
  // conflict clears.
  struct Candidate {
    uint64_t age;
    int level;
    const FileMetaData* file;
  };
  std::vector<Candidate> overdue;
  for (int level = 0; level < version.num_levels(); ++level) {
    for (const auto& f : version.files(level)) {
      if (f.oldest_tombstone_time_micros == 0 || f.num_tombstones == 0) {
        continue;
      }
      // A tombstone at the last level is dropped on its next merge; files
      // already at the last level still need one more (in-place) merge.
      uint64_t age = now_micros > f.oldest_tombstone_time_micros
                         ? now_micros - f.oldest_tombstone_time_micros
                         : 0;
      if (age >= options_->tombstone_ttl_micros && !FileBusy(f, ctx)) {
        overdue.push_back({age, level, &f});
      }
    }
  }
  std::sort(overdue.begin(), overdue.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.age > b.age;
            });
  for (const auto& c : overdue) {
    auto plan = BuildPlan(version, CompactionTrigger::kTombstoneTtl, c.level,
                          {*c.file});
    if (PlanAdmissible(&plan, ctx)) {
      return plan;
    }
  }
  return std::nullopt;
}

const FileMetaData* CompactionPicker::ChooseByPolicy(
    const Version& version, int level,
    const std::vector<const FileMetaData*>& candidates) const {
  assert(!candidates.empty());
  const Comparator* ucmp = BytewiseComparator();
  auto overlap_bytes = [&](const FileMetaData& f) {
    uint64_t total = 0;
    Slice smallest = f.smallest.user_key();
    Slice largest = f.largest.user_key();
    if (level + 1 < version.num_levels()) {
      for (const auto* of :
           version.FilesOverlapping(level + 1, &smallest, &largest)) {
        total += of->file_size;
      }
    }
    return total;
  };

  const FileMetaData* picked = nullptr;
  switch (options_->file_pick_policy) {
    case FilePickPolicy::kRoundRobin: {
      // First file whose smallest key is past the cursor; wrap at the end.
      const std::string& cursor = cursor_[static_cast<size_t>(level)];
      for (const auto* f : candidates) {
        if (cursor.empty() ||
            ucmp->Compare(f->smallest.user_key(), cursor) > 0) {
          picked = f;
          break;
        }
      }
      if (picked == nullptr) {
        picked = candidates.front();
      }
      break;
    }
    case FilePickPolicy::kLeastOverlap: {
      uint64_t best = ~uint64_t{0};
      for (const auto* f : candidates) {
        uint64_t o = overlap_bytes(*f);
        if (o < best) {
          best = o;
          picked = f;
        }
      }
      break;
    }
    case FilePickPolicy::kMostTombstones: {
      double best = -1.0;
      for (const auto* f : candidates) {
        double density =
            f->num_entries == 0
                ? 0.0
                : static_cast<double>(f->num_tombstones) /
                      static_cast<double>(f->num_entries);
        if (density > best) {
          best = density;
          picked = f;
        }
      }
      break;
    }
    case FilePickPolicy::kOldestFirst: {
      uint64_t best = ~uint64_t{0};
      for (const auto* f : candidates) {
        if (f->creation_time_micros < best) {
          best = f->creation_time_micros;
          picked = f;
        }
      }
      break;
    }
    case FilePickPolicy::kWidestRange: {
      // Approximate "widest" by the byte span of overlap plus own size.
      uint64_t best = 0;
      picked = candidates.front();
      for (const auto* f : candidates) {
        uint64_t width = overlap_bytes(*f) + f->file_size;
        if (width >= best) {
          best = width;
          picked = f;
        }
      }
      break;
    }
  }
  assert(picked != nullptr);
  return picked;
}

CompactionPlan CompactionPicker::BuildPlan(const Version& version,
                                           CompactionTrigger trigger,
                                           int level,
                                           std::vector<FileMetaData> inputs) {
  CompactionPlan plan;
  plan.trigger = trigger;
  plan.input_level = level;
  plan.inputs = std::move(inputs);

  const int last_level = version.num_levels() - 1;
  bool at_last = (level == last_level);
  plan.output_level = at_last ? last_level : level + 1;

  bool target_tiered =
      !at_last && LevelIsTiered(options_->data_layout, plan.output_level,
                                options_->num_levels);

  if (target_tiered) {
    // Output stacks as a fresh run on the target level; no overlap merge.
    plan.overlap.clear();
  } else {
    // Merge with the overlapping files of the (leveled) target.
    Slice smallest, largest;
    bool first = true;
    std::string smallest_buf, largest_buf;
    const Comparator* ucmp = BytewiseComparator();
    for (const auto& f : plan.inputs) {
      if (first || ucmp->Compare(f.smallest.user_key(), smallest) < 0) {
        smallest_buf = f.smallest.user_key().ToString();
        smallest = Slice(smallest_buf);
      }
      if (first || ucmp->Compare(f.largest.user_key(), largest) > 0) {
        largest_buf = f.largest.user_key().ToString();
        largest = Slice(largest_buf);
      }
      first = false;
    }
    if (at_last) {
      // In-place merge of the last level's runs (pure tiering): all runs of
      // the level are the inputs; no separate overlap set.
      plan.overlap.clear();
    } else {
      for (const auto* f :
           version.FilesOverlapping(plan.output_level, &smallest, &largest)) {
        // Skip files already among the inputs (same level corner cases).
        plan.overlap.push_back(*f);
      }
    }
  }

  // Tombstones (and the entries they shadow) may drop only when, after this
  // merge, no other run anywhere can hold a version of the affected keys:
  //  (a) every level deeper than the output is empty,
  //  (b) a tiered output holds no other runs (a stacked sibling run could
  //      hold an older version a dropped tombstone would resurrect),
  //  (c) a tiered input is fully consumed (a leftover sibling run at the
  //      input level is *older* than nothing — it may hold stale versions
  //      of keys whose tombstone would otherwise be dropped below it).
  bool deeper_levels_empty = true;
  for (int l = plan.output_level + 1; l < version.num_levels(); ++l) {
    if (version.NumFiles(l) > 0) {
      deeper_levels_empty = false;
      break;
    }
  }
  bool input_level_tiered =
      level == 0 || LevelIsTiered(options_->data_layout, level,
                                  options_->num_levels);
  bool input_fully_consumed =
      !input_level_tiered ||
      plan.inputs.size() == version.files(level).size();
  bool output_has_sibling_runs =
      target_tiered && version.NumFiles(plan.output_level) > 0;
  plan.bottommost =
      deeper_levels_empty && input_fully_consumed && !output_has_sibling_runs;
  return plan;
}

std::optional<CompactionPlan> CompactionPicker::TryPickLevel(
    const Version& version, int level, const PickContext& ctx) {
  bool tiered = level == 0 || LevelIsTiered(options_->data_layout, level,
                                            options_->num_levels);
  if (tiered) {
    // Run-count trigger: merge all runs of the level — the whole level must
    // be free (an L0/tiered level's runs overlap arbitrarily, so there is
    // no safe partial-concurrency on it).
    auto plan = BuildPlan(version, CompactionTrigger::kRunCount, level,
                          version.files(level));
    if (PlanAdmissible(&plan, ctx)) {
      return plan;
    }
    return std::nullopt;
  }

  if (options_->compaction_granularity == CompactionGranularity::kWholeLevel) {
    auto plan = BuildPlan(version, CompactionTrigger::kLevelSize, level,
                          version.files(level));
    if (PlanAdmissible(&plan, ctx)) {
      return plan;
    }
    return std::nullopt;
  }

  // Partial pick: try files in policy order until one yields an admissible
  // plan. Each rejection removes the file from the candidate set, so this
  // terminates after at most NumFiles(level) attempts.
  std::vector<const FileMetaData*> candidates;
  candidates.reserve(version.files(level).size());
  for (const auto& f : version.files(level)) {
    if (!FileBusy(f, ctx)) {
      candidates.push_back(&f);
    }
  }
  while (!candidates.empty()) {
    const FileMetaData* picked = ChooseByPolicy(version, level, candidates);
    auto plan =
        BuildPlan(version, CompactionTrigger::kLevelSize, level, {*picked});
    if (PlanAdmissible(&plan, ctx)) {
      cursor_[static_cast<size_t>(level)] =
          picked->largest.user_key().ToString();
      return plan;
    }
    candidates.erase(
        std::find(candidates.begin(), candidates.end(), picked));
  }
  return std::nullopt;
}

std::optional<CompactionPlan> CompactionPicker::Pick(const Version& version,
                                                     uint64_t now_micros,
                                                     const PickContext& ctx) {
  MutexLock lock(&mu_);
  // FADE first: delete persistence is a correctness-adjacent deadline.
  auto ttl_plan = PickTtlCompaction(version, now_micros, ctx);
  if (ttl_plan.has_value()) {
    return ttl_plan;
  }

  // Otherwise compact under pressure, most-pressured level first; levels
  // whose files or ranges are claimed by running jobs are passed over so
  // disjoint work elsewhere can still be admitted.
  struct Scored {
    double score;
    int level;
  };
  std::vector<Scored> scored;
  for (int level = 0; level < version.num_levels(); ++level) {
    if (version.NumFiles(level) == 0) {
      continue;
    }
    double score = Score(version, level);
    if (score >= 1.0) {
      scored.push_back({score, level});
    }
  }
  // Ties break toward the deeper level (matches the historical single-job
  // picker, which scanned levels in order and kept the last best).
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.score != b.score ? a.score > b.score
                                        : a.level > b.level;
            });
  for (const auto& s : scored) {
    auto plan = TryPickLevel(version, s.level, ctx);
    if (plan.has_value()) {
      return plan;
    }
  }
  return std::nullopt;
}

std::optional<CompactionPlan> CompactionPicker::PickManual(
    const Version& version, int level) {
  if (version.NumFiles(level) == 0) {
    return std::nullopt;
  }
  return BuildPlan(version, CompactionTrigger::kManual, level,
                   version.files(level));
}

}  // namespace lsmlab
