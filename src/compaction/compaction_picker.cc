#include "compaction/compaction_picker.h"

#include <algorithm>
#include <cassert>

#include "util/comparator.h"

namespace lsmlab {

CompactionPicker::CompactionPicker(const Options* options)
    : options_(options),
      cursor_(static_cast<size_t>(options->num_levels)) {}

uint64_t CompactionPicker::MaxBytesForLevel(int level) const {
  assert(level >= 1);
  uint64_t bytes = options_->max_bytes_for_level_base;
  for (int i = 1; i < level; ++i) {
    bytes *= static_cast<uint64_t>(options_->size_ratio);
  }
  return bytes;
}

int CompactionPicker::RunCountTrigger(int level) const {
  if (level == 0) {
    // L0's trigger is its own knob in every layout (absorbs flush bursts).
    return options_->level0_file_num_compaction_trigger;
  }
  return options_->size_ratio;
}

double CompactionPicker::Score(const Version& version, int level) const {
  bool tiered =
      level == 0 || LevelIsTiered(options_->data_layout, level,
                                  options_->num_levels);
  if (tiered) {
    return static_cast<double>(version.NumFiles(level)) /
           static_cast<double>(RunCountTrigger(level));
  }
  if (level == 0) {
    return 0.0;
  }
  return static_cast<double>(version.LevelBytes(level)) /
         static_cast<double>(MaxBytesForLevel(level));
}

std::optional<CompactionJob> CompactionPicker::PickTtlCompaction(
    const Version& version, uint64_t now_micros) {
  if (options_->tombstone_ttl_micros == 0) {
    return std::nullopt;
  }
  // FADE (Lethe): the file whose oldest tombstone is most overdue becomes
  // the top priority, bounding how long a delete can stay logical.
  int best_level = -1;
  const FileMetaData* best_file = nullptr;
  uint64_t best_age = 0;
  for (int level = 0; level < version.num_levels(); ++level) {
    for (const auto& f : version.files(level)) {
      if (f.oldest_tombstone_time_micros == 0 ||
          f.num_tombstones == 0) {
        continue;
      }
      // A tombstone at the last level is dropped on its next merge; files
      // already at the last level still need one more (in-place) merge.
      uint64_t age = now_micros > f.oldest_tombstone_time_micros
                         ? now_micros - f.oldest_tombstone_time_micros
                         : 0;
      if (age >= options_->tombstone_ttl_micros && age > best_age) {
        best_age = age;
        best_level = level;
        best_file = &f;
      }
    }
  }
  if (best_file == nullptr) {
    return std::nullopt;
  }
  return BuildJob(version, CompactionTrigger::kTombstoneTtl, best_level,
                  {*best_file});
}

std::vector<FileMetaData> CompactionPicker::PickInputFiles(
    const Version& version, int level) {
  const auto& files = version.files(level);
  assert(!files.empty());
  if (options_->compaction_granularity == CompactionGranularity::kWholeLevel) {
    return files;
  }

  const Comparator* ucmp = BytewiseComparator();
  auto overlap_bytes = [&](const FileMetaData& f) {
    uint64_t total = 0;
    Slice smallest = f.smallest.user_key();
    Slice largest = f.largest.user_key();
    if (level + 1 < version.num_levels()) {
      for (const auto* of :
           version.FilesOverlapping(level + 1, &smallest, &largest)) {
        total += of->file_size;
      }
    }
    return total;
  };

  const FileMetaData* picked = nullptr;
  switch (options_->file_pick_policy) {
    case FilePickPolicy::kRoundRobin: {
      // First file whose smallest key is past the cursor; wrap at the end.
      std::string& cursor = cursor_[static_cast<size_t>(level)];
      for (const auto& f : files) {
        if (cursor.empty() ||
            ucmp->Compare(f.smallest.user_key(), cursor) > 0) {
          picked = &f;
          break;
        }
      }
      if (picked == nullptr) {
        picked = &files.front();
      }
      cursor = picked->largest.user_key().ToString();
      break;
    }
    case FilePickPolicy::kLeastOverlap: {
      uint64_t best = ~uint64_t{0};
      for (const auto& f : files) {
        uint64_t o = overlap_bytes(f);
        if (o < best) {
          best = o;
          picked = &f;
        }
      }
      break;
    }
    case FilePickPolicy::kMostTombstones: {
      double best = -1.0;
      for (const auto& f : files) {
        double density =
            f.num_entries == 0
                ? 0.0
                : static_cast<double>(f.num_tombstones) /
                      static_cast<double>(f.num_entries);
        if (density > best) {
          best = density;
          picked = &f;
        }
      }
      break;
    }
    case FilePickPolicy::kOldestFirst: {
      uint64_t best = ~uint64_t{0};
      for (const auto& f : files) {
        if (f.creation_time_micros < best) {
          best = f.creation_time_micros;
          picked = &f;
        }
      }
      break;
    }
    case FilePickPolicy::kWidestRange: {
      // Approximate "widest" by the byte span of overlap plus own size.
      uint64_t best = 0;
      picked = &files.front();
      for (const auto& f : files) {
        uint64_t width = overlap_bytes(f) + f.file_size;
        if (width >= best) {
          best = width;
          picked = &f;
        }
      }
      break;
    }
  }
  assert(picked != nullptr);
  return {*picked};
}

CompactionJob CompactionPicker::BuildJob(const Version& version,
                                         CompactionTrigger trigger, int level,
                                         std::vector<FileMetaData> inputs) {
  CompactionJob job;
  job.trigger = trigger;
  job.input_level = level;
  job.inputs = std::move(inputs);

  const int last_level = version.num_levels() - 1;
  bool at_last = (level == last_level);
  job.output_level = at_last ? last_level : level + 1;

  bool target_tiered =
      !at_last && LevelIsTiered(options_->data_layout, job.output_level,
                                options_->num_levels);

  if (target_tiered) {
    // Output stacks as a fresh run on the target level; no overlap merge.
    job.overlap.clear();
  } else {
    // Merge with the overlapping files of the (leveled) target.
    Slice smallest, largest;
    bool first = true;
    std::string smallest_buf, largest_buf;
    const Comparator* ucmp = BytewiseComparator();
    for (const auto& f : job.inputs) {
      if (first || ucmp->Compare(f.smallest.user_key(), smallest) < 0) {
        smallest_buf = f.smallest.user_key().ToString();
        smallest = Slice(smallest_buf);
      }
      if (first || ucmp->Compare(f.largest.user_key(), largest) > 0) {
        largest_buf = f.largest.user_key().ToString();
        largest = Slice(largest_buf);
      }
      first = false;
    }
    if (at_last) {
      // In-place merge of the last level's runs (pure tiering): all runs of
      // the level are the inputs; no separate overlap set.
      job.overlap.clear();
    } else {
      for (const auto* f :
           version.FilesOverlapping(job.output_level, &smallest, &largest)) {
        // Skip files already among the inputs (same level corner cases).
        job.overlap.push_back(*f);
      }
    }
  }

  // Tombstones (and the entries they shadow) may drop only when, after this
  // merge, no other run anywhere can hold a version of the affected keys:
  //  (a) every level deeper than the output is empty,
  //  (b) a tiered output holds no other runs (a stacked sibling run could
  //      hold an older version a dropped tombstone would resurrect),
  //  (c) a tiered input is fully consumed (a leftover sibling run at the
  //      input level is *older* than nothing — it may hold stale versions
  //      of keys whose tombstone would otherwise be dropped below it).
  bool deeper_levels_empty = true;
  for (int l = job.output_level + 1; l < version.num_levels(); ++l) {
    if (version.NumFiles(l) > 0) {
      deeper_levels_empty = false;
      break;
    }
  }
  bool input_level_tiered =
      level == 0 || LevelIsTiered(options_->data_layout, level,
                                  options_->num_levels);
  bool input_fully_consumed =
      !input_level_tiered ||
      job.inputs.size() == version.files(level).size();
  bool output_has_sibling_runs =
      target_tiered && version.NumFiles(job.output_level) > 0;
  job.bottommost =
      deeper_levels_empty && input_fully_consumed && !output_has_sibling_runs;
  return job;
}

std::optional<CompactionJob> CompactionPicker::Pick(const Version& version,
                                                    uint64_t now_micros) {
  // FADE first: delete persistence is a correctness-adjacent deadline.
  auto ttl_job = PickTtlCompaction(version, now_micros);
  if (ttl_job.has_value()) {
    return ttl_job;
  }

  // Otherwise compact the level under the most pressure.
  int best_level = -1;
  double best_score = 1.0;  // Only act on scores >= 1.
  for (int level = 0; level < version.num_levels(); ++level) {
    if (version.NumFiles(level) == 0) {
      continue;
    }
    double score = Score(version, level);
    if (score >= best_score) {
      best_score = score;
      best_level = level;
    }
  }
  if (best_level < 0) {
    return std::nullopt;
  }

  const int level = best_level;
  bool tiered = level == 0 || LevelIsTiered(options_->data_layout, level,
                                            options_->num_levels);
  std::vector<FileMetaData> inputs;
  if (tiered) {
    // Run-count trigger: merge all runs of the level.
    inputs = version.files(level);
    return BuildJob(version, CompactionTrigger::kRunCount, level,
                    std::move(inputs));
  }
  inputs = PickInputFiles(version, level);
  return BuildJob(version, CompactionTrigger::kLevelSize, level,
                  std::move(inputs));
}

std::optional<CompactionJob> CompactionPicker::PickManual(
    const Version& version, int level) {
  if (version.NumFiles(level) == 0) {
    return std::nullopt;
  }
  auto job = BuildJob(version, CompactionTrigger::kManual, level,
                      version.files(level));
  return job;
}

}  // namespace lsmlab
