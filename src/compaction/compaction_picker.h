#ifndef LSMLAB_COMPACTION_COMPACTION_PICKER_H_
#define LSMLAB_COMPACTION_COMPACTION_PICKER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "compaction/compaction.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/thread_annotations.h"
#include "version/version_set.h"

namespace lsmlab {

/// A {level, key-range} region claimed by a running compaction. A job
/// claims the user-key hull of its inputs and overlap at both its input and
/// output levels; candidate plans intersecting a claim are not admissible.
struct ClaimedRange {
  int level = 0;
  std::string smallest;  // Inclusive user-key bounds.
  std::string largest;
};

/// Conflict state handed to Pick() by the scheduler so concurrent
/// compactions stay disjoint. Default-constructed context means "nothing is
/// running" (single-job behavior).
struct PickContext {
  /// File numbers owned (as input or overlap) by running jobs; candidates
  /// touching any of them are skipped.
  const std::set<uint64_t>* busy_files = nullptr;
  /// Level/key-range claims of running jobs; a candidate whose hull
  /// intersects a claim at a shared level is skipped. This is what makes
  /// two single-file L0 picks into an empty L1 safe: their L1 claims are
  /// their input hulls, which must not intersect.
  const std::vector<ClaimedRange>* claimed = nullptr;
  /// Deepest output level among running jobs; bottommost is suppressed for
  /// plans at or above it (a concurrent job deeper in the tree may hold
  /// versions of keys whose tombstones would otherwise drop).
  int deepest_running_output = -1;
};

/// CompactionPicker decides *whether*, *where*, and *which files* to
/// compact — the trigger, granularity, and data-movement primitives of
/// tutorial §2.2.4 — for all four disk data layouts of §2.2.2. Stateful only
/// for the round-robin cursor, which sits behind an internal leaf mutex, so
/// every method is individually safe from any thread. The scheduler (DB)
/// additionally serializes Pick calls under its own mutex so that two
/// concurrent picks never see the same tree shape and claim the same work.
class CompactionPicker {
 public:
  explicit CompactionPicker(const Options* options);

  /// Returns the most urgent compaction admissible under `ctx`, or nullopt
  /// when the tree shape is within bounds or every needed file/range is
  /// claimed by a running job. `now_micros` feeds the FADE tombstone-TTL
  /// trigger. Levels are tried in descending pressure order, so a busy
  /// top-pressure level does not starve admissible work elsewhere.
  std::optional<CompactionPlan> Pick(const Version& version,
                                     uint64_t now_micros,
                                     const PickContext& ctx = {})
      EXCLUDES(mu_);

  /// A manual whole-range compaction of `level` into `level + 1`.
  std::optional<CompactionPlan> PickManual(const Version& version, int level);

  /// Byte capacity of a leveled level (level >= 1): base * T^(level-1).
  uint64_t MaxBytesForLevel(int level) const;

  /// Run-count trigger for a tiered level.
  int RunCountTrigger(int level) const;

  /// The compaction-pressure score of a level (>= 1.0 means "needs work").
  /// Exposed for tests and the design-space explorer example.
  double Score(const Version& version, int level) const;

 private:
  std::optional<CompactionPlan> PickTtlCompaction(const Version& version,
                                                  uint64_t now_micros,
                                                  const PickContext& ctx);
  /// Builds an admissible plan for `level`, or nullopt if every choice
  /// conflicts with `ctx`. Commits the round-robin cursor on success.
  std::optional<CompactionPlan> TryPickLevel(const Version& version, int level,
                                             const PickContext& ctx)
      REQUIRES(mu_);
  CompactionPlan BuildPlan(const Version& version, CompactionTrigger trigger,
                           int level, std::vector<FileMetaData> inputs);
  /// Selects one input file from `candidates` (all from leveled `level`)
  /// per the configured FilePickPolicy (the data-movement primitive). Does
  /// not advance the round-robin cursor; the caller commits the choice.
  const FileMetaData* ChooseByPolicy(
      const Version& version, int level,
      const std::vector<const FileMetaData*>& candidates) const
      REQUIRES(mu_);
  bool FileBusy(const FileMetaData& f, const PickContext& ctx) const;
  /// Busy-file + claimed-range admission check; also suppresses bottommost
  /// when a running job is at or below the plan's output level.
  bool PlanAdmissible(CompactionPlan* plan, const PickContext& ctx) const;

  const Options* const options_;
  /// Leaf lock for the picker's only mutable state.
  mutable Mutex mu_{LockRank::kCompactionPicker, "compaction_picker.mu"};
  /// Round-robin cursors: the largest user key compacted so far per level.
  std::vector<std::string> cursor_ GUARDED_BY(mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_COMPACTION_COMPACTION_PICKER_H_
