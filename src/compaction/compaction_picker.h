#ifndef LSMLAB_COMPACTION_COMPACTION_PICKER_H_
#define LSMLAB_COMPACTION_COMPACTION_PICKER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compaction/compaction.h"
#include "util/options.h"
#include "version/version_set.h"

namespace lsmlab {

/// CompactionPicker decides *whether*, *where*, and *which files* to
/// compact — the trigger, granularity, and data-movement primitives of
/// tutorial §2.2.4 — for all four disk data layouts of §2.2.2. Stateful only
/// for the round-robin cursor. Callers serialize access (DB mutex).
class CompactionPicker {
 public:
  explicit CompactionPicker(const Options* options);

  /// Returns the most urgent compaction, or nullopt when the tree shape is
  /// within bounds. `now_micros` feeds the FADE tombstone-TTL trigger.
  std::optional<CompactionJob> Pick(const Version& version,
                                    uint64_t now_micros);

  /// A manual whole-range compaction of `level` into `level + 1`.
  std::optional<CompactionJob> PickManual(const Version& version, int level);

  /// Byte capacity of a leveled level (level >= 1): base * T^(level-1).
  uint64_t MaxBytesForLevel(int level) const;

  /// Run-count trigger for a tiered level.
  int RunCountTrigger(int level) const;

  /// The compaction-pressure score of a level (>= 1.0 means "needs work").
  /// Exposed for tests and the design-space explorer example.
  double Score(const Version& version, int level) const;

 private:
  std::optional<CompactionJob> PickTtlCompaction(const Version& version,
                                                 uint64_t now_micros);
  CompactionJob BuildJob(const Version& version, CompactionTrigger trigger,
                         int level, std::vector<FileMetaData> inputs);
  /// Selects input files from a leveled level per the configured
  /// FilePickPolicy (the data-movement primitive).
  std::vector<FileMetaData> PickInputFiles(const Version& version, int level);

  const Options* const options_;
  /// Round-robin cursors: the largest user key compacted so far per level.
  std::vector<std::string> cursor_;
};

}  // namespace lsmlab

#endif  // LSMLAB_COMPACTION_COMPACTION_PICKER_H_
