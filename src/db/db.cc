// ShardedDB: the range-sharded facade over N ShardEngine cores. Routing,
// cross-shard two-phase commit, multi-shard snapshots/iterators, and the
// ownership of every process-wide resource live here; all LSM mechanics
// live in db/shard_engine.{cc,h}.

#include "db/db.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "db/filename.h"
#include "db/shard_directory.h"
#include "io/wal_reader.h"
#include "table/merging_iterator.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/histogram.h"

namespace lsmlab {

namespace {

/// Fills unset substrate pointers with the defaults.
Options NormalizeOptions(const Options& options) {
  Options result = options;
  if (result.env == nullptr) {
    result.env = Env::Default();
  }
  if (result.clock == nullptr) {
    result.clock = SystemClock();
  }
  if (result.comparator == nullptr) {
    result.comparator = BytewiseComparator();
  }
  return result;
}

/// Tag bit distinguishing an N > 1 snapshot handle from a raw engine
/// sequence. Engine sequences are capped at kMaxSequenceNumber (2^56 - 1),
/// so bit 63 is always free.
constexpr SequenceNumber kSnapshotHandleBit = 1ull << 63;

/// Byte copy with a synced target (WriteStringToFile fsyncs before close).
/// Checkpoint/restore copy rather than link whenever the source can still
/// change (COMMITLOG) or the copy must not share fate with the backup
/// (restore).
Status CopyFileBytes(Env* env, const std::string& src,
                     const std::string& target) {
  std::string contents;
  Status s = ReadFileToString(env, src, &contents);
  if (!s.ok()) {
    return s;
  }
  return WriteStringToFile(env, contents, target);
}

/// Leading line of the CHECKPOINT completion record; versioned so a future
/// layout change cannot be silently restored by an old binary.
constexpr char kCheckpointMagic[] = "lsmlab-checkpoint v1\n";

/// Routes every record of a batch into its shard's sub-batch, preserving
/// order and the raw type tag (vlog-pointer records survive verbatim).
class ShardSplitter : public WriteBatch::Handler {
 public:
  ShardSplitter(std::vector<WriteBatch>* parts,
                std::function<int(const Slice&)> router)
      : parts_(parts), router_(std::move(router)) {}

  void TypedRecord(ValueType type, const Slice& key,
                   const Slice& value) override {
    (*parts_)[static_cast<size_t>(router_(key))].PutTyped(type, key, value);
  }

  // Never reached: TypedRecord intercepts every record.
  void Put(const Slice&, const Slice&) override {}
  void Delete(const Slice&) override {}
  void SingleDelete(const Slice&) override {}
  void Merge(const Slice&, const Slice&) override {}

 private:
  std::vector<WriteBatch>* parts_;
  std::function<int(const Slice&)> router_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Open / topology / commit log
// ---------------------------------------------------------------------------

ShardedDB::ShardedDB(const Options& options, std::string dbname)
    : options_(NormalizeOptions(options)),
      dbname_(std::move(dbname)),
      internal_comparator_(options_.comparator) {}

ShardedDB::~ShardedDB() {
  // Stop every shard's background admission first so one shard's queued
  // work cannot delay another's shutdown, then drain the shared pool once.
  for (auto& shard : shards_) {
    if (shard != nullptr) {
      shard->BeginShutdown();
    }
  }
  if (pool_ != nullptr) {
    pool_->WaitForIdle();
  }
  shards_.clear();  // Engines die before the resources they borrow.
  pool_.reset();
}

Status ShardedDB::Open(const Options& options, const std::string& name,
                       std::unique_ptr<ShardedDB>* dbptr) {
  dbptr->reset();
  Status s = options.Validate();
  if (!s.ok()) {
    return s;
  }
  auto db = std::unique_ptr<ShardedDB>(new ShardedDB(options, name));
  s = db->Initialize();
  if (!s.ok()) {
    return s;
  }
  *dbptr = std::move(db);
  return Status::OK();
}

Status ShardedDB::ResolveTopology(bool* fresh) {
  *fresh = false;
  Env* env = options_.env;
  int n = 1;
  std::vector<std::string> keys;
  Status s = ShardDirectory::LoadTopology(env, dbname_, &n, &keys);
  if (s.ok()) {
    // The persisted topology wins over Options: the split is fixed at
    // creation.
    num_shards_ = n;
    split_keys_ = std::move(keys);
    return Status::OK();
  }
  if (!s.IsNotFound()) {
    return s;  // A SHARDS file exists but is unreadable/corrupt.
  }
  if (env->FileExists(CurrentFileName(dbname_))) {
    // Existing flat (pre-sharding or N=1) database: keep it single-shard
    // regardless of Options.
    num_shards_ = 1;
    split_keys_.clear();
    return Status::OK();
  }
  *fresh = true;
  num_shards_ = std::max(1, options_.num_shards);
  split_keys_ = options_.shard_split_keys;
  if (num_shards_ > 1 && split_keys_.empty()) {
    // Uniform first-byte split of the keyspace.
    for (int k = 1; k < num_shards_; ++k) {
      split_keys_.push_back(std::string(
          1, static_cast<char>(static_cast<unsigned>(256 * k / num_shards_))));
    }
  }
  if (num_shards_ > 1) {
    return ShardDirectory::SaveTopology(env, dbname_, num_shards_,
                                        split_keys_);
  }
  return Status::OK();
}

Status ShardedDB::ReadCommitLog(std::set<uint64_t>* committed) {
  std::unique_ptr<SequentialFile> file;
  Status s =
      options_.env->NewSequentialFile(CommitLogFileName(dbname_), &file);
  if (s.IsNotFound()) {
    return Status::OK();
  }
  if (!s.ok()) {
    return s;
  }
  // A torn tail (crash mid-append) truncates the record stream at the last
  // valid CRC — exactly the two-phase-commit rule: a commit record is only
  // binding once fully durable.
  wal::Reader reader(file.get(), /*reporter=*/nullptr);
  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() >= 8) {
      committed->insert(DecodeFixed64(record.data()));
    }
  }
  return Status::OK();
}

Status ShardedDB::ResetCommitLog() {
  MutexLock lock(&commit_mu_);
  commit_log_.reset();
  commit_log_file_.reset();
  // NewWritableFile truncates: every surviving commit record was consumed
  // by engine recovery (the replayed data now lives in L0 tables), and
  // batch ids restart at 1 for this incarnation. The truncation is synced
  // so a stale record cannot alias a new id after a crash.
  Status s = options_.env->NewWritableFile(CommitLogFileName(dbname_),
                                           &commit_log_file_);
  if (s.ok()) {
    s = commit_log_file_->Sync();
  }
  if (!s.ok()) {
    commit_log_file_.reset();
    return s;
  }
  commit_log_ = std::make_unique<wal::Writer>(commit_log_file_.get());
  return Status::OK();
}

Status ShardedDB::Initialize() {
  Env* env = options_.env;
  Status s = env->CreateDir(dbname_);
  if (!s.ok()) {
    return s;
  }
  if (env->FileExists(CheckpointInProgressFileName(dbname_))) {
    // An interrupted checkpoint is not a database: its file set stops at
    // whatever instant the copy died. Never open it.
    return Status::Corruption(
        dbname_, "partial checkpoint (CHECKPOINT.inprogress present)");
  }
  bool fresh = false;
  s = ResolveTopology(&fresh);
  if (!s.ok()) {
    return s;
  }

  // Process-wide resources: one block cache, one (dir-scoped) table cache,
  // one compaction rate budget, one background pool for all shards.
  if (options_.block_cache_capacity > 0) {
    block_cache_ = std::make_unique<LruCache>(options_.block_cache_capacity,
                                              options_.block_cache_shards);
  }
  table_cache_ = std::make_unique<TableCache>(&options_, &internal_comparator_,
                                              block_cache_.get(), &stats_);
  compaction_rate_limiter_ = std::make_unique<RateLimiter>(
      options_.compaction_rate_limit_bytes_per_sec, options_.clock);
  pool_ =
      std::make_unique<ThreadPool>(std::max(1, options_.background_threads));

  ShardResources resources;
  resources.block_cache = block_cache_.get();
  resources.table_cache = table_cache_.get();
  resources.pool = pool_.get();
  resources.rate_limiter = compaction_rate_limiter_.get();
  resources.stats = &stats_;

  std::set<uint64_t> committed;
  if (num_shards_ > 1) {
    s = ReadCommitLog(&committed);
    if (!s.ok()) {
      return s;
    }
  }

  shards_.resize(static_cast<size_t>(num_shards_));
  for (int k = 0; k < num_shards_; ++k) {
    const std::string shard_dir =
        num_shards_ == 1 ? dbname_ : ShardDirectory::ShardDirName(dbname_, k);
    s = ShardEngine::Open(options_, shard_dir, resources,
                          num_shards_ > 1 ? &committed : nullptr,
                          &shards_[static_cast<size_t>(k)]);
    if (!s.ok()) {
      return s;
    }
  }

  if (num_shards_ > 1) {
    // Batch ids stay monotone across incarnations: a stale prepare record
    // lingering in a retained WAL must never share an id with a fresh batch,
    // or a later recovery could resurrect it via the new commit log.
    uint64_t max_id = committed.empty() ? 0 : *committed.rbegin();
    for (const auto& shard : shards_) {
      max_id = std::max(max_id, shard->max_recovered_prepare_id());
    }
    {
      MutexLock lock(&commit_mu_);
      next_batch_id_ = max_id + 1;
    }
    s = ResetCommitLog();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

int ShardedDB::ShardForKey(const Slice& key) const {
  const Comparator* cmp = options_.comparator;
  int k = 0;
  while (k < static_cast<int>(split_keys_.size()) &&
         cmp->Compare(key, split_keys_[static_cast<size_t>(k)]) >= 0) {
    ++k;
  }
  return k;
}

ReadOptions ShardedDB::ShardReadOptions(const ReadOptions& options,
                                        int shard) const {
  ReadOptions ro = options;
  if (ro.snapshot_seqno & kSnapshotHandleBit) {
    MutexLock lock(&commit_mu_);
    auto it = snapshot_handles_.find(ro.snapshot_seqno & ~kSnapshotHandleBit);
    ro.snapshot_seqno = it != snapshot_handles_.end()
                            ? it->second[static_cast<size_t>(shard)]
                            : 0;
  }
  return ro;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[static_cast<size_t>(ShardForKey(key))]->Put(options, key,
                                                             value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[static_cast<size_t>(ShardForKey(key))]->Delete(options, key);
}

Status ShardedDB::SingleDelete(const WriteOptions& options, const Slice& key) {
  return shards_[static_cast<size_t>(ShardForKey(key))]->SingleDelete(options,
                                                                      key);
}

Status ShardedDB::Merge(const WriteOptions& options, const Slice& key,
                        const Slice& operand) {
  return shards_[static_cast<size_t>(ShardForKey(key))]->Merge(options, key,
                                                               operand);
}

Status ShardedDB::DeleteRange(const WriteOptions& options, const Slice& begin,
                              const Slice& end) {
  if (num_shards_ == 1) {
    return shards_[0]->DeleteRange(options, begin, end);
  }
  const Comparator* cmp = options_.comparator;
  if (cmp->Compare(begin, end) >= 0) {
    return Status::OK();
  }
  const int first = ShardForKey(begin);
  const int last = ShardForKey(end);
  Status result;
  for (int k = first; k <= last && k < num_shards_; ++k) {
    const Slice lo =
        k == first ? begin : Slice(split_keys_[static_cast<size_t>(k - 1)]);
    const Slice hi =
        k == last ? end : Slice(split_keys_[static_cast<size_t>(k)]);
    if (cmp->Compare(lo, hi) >= 0) {
      continue;
    }
    Status s = shards_[static_cast<size_t>(k)]->DeleteRange(options, lo, hi);
    if (!s.ok() && result.ok()) {
      result = s;
    }
  }
  return result;
}

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* batch) {
  if (num_shards_ == 1) {
    return shards_[0]->Write(options, batch);
  }
  std::vector<WriteBatch> parts(static_cast<size_t>(num_shards_));
  ShardSplitter splitter(
      &parts, [this](const Slice& key) { return ShardForKey(key); });
  Status s = batch->Iterate(&splitter);
  if (!s.ok()) {
    return s;
  }
  std::vector<int> involved;
  for (int k = 0; k < num_shards_; ++k) {
    if (parts[static_cast<size_t>(k)].Count() > 0) {
      involved.push_back(k);
    }
  }
  if (involved.empty()) {
    return Status::OK();
  }
  if (involved.size() == 1) {
    // Single-shard batch: the engine's own atomicity (one WAL record, one
    // sequence range) suffices — no 2PC, no commit-lock serialization.
    const size_t k = static_cast<size_t>(involved[0]);
    return shards_[k]->Write(options, &parts[k]);
  }
  stats_.cross_shard_batches.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&commit_mu_);
  if (!options_.enable_wal) {
    // No durability to coordinate; the commit lock alone makes the batch
    // atomic with respect to snapshot cuts and other cross-shard batches.
    Status first;
    for (int k : involved) {
      const size_t i = static_cast<size_t>(k);
      Status st = shards_[i]->Write(options, &parts[i]);
      if (!st.ok() && first.ok()) {
        first = st;
      }
    }
    return first;
  }
  return CommitCrossShard(options, &parts, involved);
}

Status ShardedDB::CommitCrossShard(const WriteOptions& options,
                                   std::vector<WriteBatch>* parts,
                                   const std::vector<int>& involved) {
  const uint64_t id = next_batch_id_++;

  // Phase 1: durably log every shard's slice (synced prepare records).
  Status s;
  std::vector<int> prepared;
  for (int k : involved) {
    s = shards_[static_cast<size_t>(k)]->PrepareWrite(
        options, &(*parts)[static_cast<size_t>(k)], id);
    if (!s.ok()) {
      break;
    }
    prepared.push_back(k);
    stats_.shard_prepares.fetch_add(1, std::memory_order_relaxed);
  }
  if (!s.ok()) {
    for (int k : prepared) {
      shards_[static_cast<size_t>(k)]->AbortPrepared(id);
    }
    stats_.shard_aborts.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  // Commit point: one synced record in the facade commit log. Before it is
  // durable, recovery drops every prepare; after, recovery applies them
  // all.
  std::string rec;
  PutFixed64(&rec, id);
  if (commit_log_ == nullptr) {
    s = Status::IOError(dbname_, "commit log unavailable");
  } else {
    s = commit_log_->AddRecord(rec);
    if (s.ok()) {
      s = commit_log_->Sync();
    }
  }
  if (!s.ok()) {
    // The record's fate is unknown (it may or may not have reached disk),
    // so neither aborting nor committing is sound: the ids stay pending,
    // their WALs stay retained, and the next open resolves them against
    // whatever the commit log actually says. The caller must treat the
    // batch as indeterminate until reopen.
    return s;
  }

  // Phase 2: apply everywhere. Failures here are per-shard background
  // errors (the data is already durably committed); attempt every shard.
  Status first;
  for (int k : involved) {
    const size_t i = static_cast<size_t>(k);
    Status st = shards_[i]->CommitPrepared(id, &(*parts)[i]);
    if (st.ok()) {
      stats_.shard_commits.fetch_add(1, std::memory_order_relaxed);
    } else if (first.ok()) {
      first = st;
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  if (num_shards_ == 1) {
    return shards_[0]->Get(options, key, value);
  }
  const int k = ShardForKey(key);
  return shards_[static_cast<size_t>(k)]->Get(ShardReadOptions(options, k),
                                              key, value);
}

std::vector<Status> ShardedDB::MultiGet(const ReadOptions& options,
                                        const std::vector<Slice>& keys,
                                        std::vector<std::string>* values) {
  // Batch-level accounting lives here: one client batch, however many
  // shards it fans out to.
  stats_.multiget_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.multiget_keys.fetch_add(keys.size(), std::memory_order_relaxed);
  stats_.point_lookups.fetch_add(keys.size(), std::memory_order_relaxed);
  if (num_shards_ == 1) {
    return shards_[0]->MultiGet(options, keys, values);
  }
  std::vector<std::vector<Slice>> shard_keys(static_cast<size_t>(num_shards_));
  std::vector<std::vector<size_t>> shard_index(
      static_cast<size_t>(num_shards_));
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t k = static_cast<size_t>(ShardForKey(keys[i]));
    shard_keys[k].push_back(keys[i]);
    shard_index[k].push_back(i);
  }
  values->clear();
  values->resize(keys.size());
  std::vector<Status> statuses(keys.size());
  for (int k = 0; k < num_shards_; ++k) {
    const size_t sk = static_cast<size_t>(k);
    if (shard_keys[sk].empty()) {
      continue;
    }
    // Each shard keeps its full batched path: one ReadView, file-by-file
    // reordering, one MultiRead submission.
    std::vector<std::string> shard_values;
    std::vector<Status> shard_statuses = shards_[sk]->MultiGet(
        ShardReadOptions(options, k), shard_keys[sk], &shard_values);
    for (size_t j = 0; j < shard_index[sk].size(); ++j) {
      statuses[shard_index[sk][j]] = std::move(shard_statuses[j]);
      (*values)[shard_index[sk][j]] = std::move(shard_values[j]);
    }
  }
  return statuses;
}

std::unique_ptr<Iterator> ShardedDB::NewIterator(const ReadOptions& options) {
  stats_.range_scans.fetch_add(1, std::memory_order_relaxed);
  if (num_shards_ == 1) {
    return shards_[0]->NewIterator(options);
  }
  // Resolve one sequence per shard: a snapshot handle's pinned cut, a raw
  // sequence passed through verbatim (callers at N > 1 should prefer
  // GetSnapshot), or a fresh consistent cut under the commit lock — the
  // lock guarantees the cut contains all shards of every cross-shard batch
  // or none of them.
  std::vector<SequenceNumber> cut(static_cast<size_t>(num_shards_), 0);
  if (options.snapshot_seqno & kSnapshotHandleBit) {
    MutexLock lock(&commit_mu_);
    auto it =
        snapshot_handles_.find(options.snapshot_seqno & ~kSnapshotHandleBit);
    if (it != snapshot_handles_.end()) {
      cut = it->second;
    }
  } else if (options.snapshot_seqno != 0) {
    cut.assign(static_cast<size_t>(num_shards_), options.snapshot_seqno);
  } else {
    MutexLock lock(&commit_mu_);
    for (int k = 0; k < num_shards_; ++k) {
      cut[static_cast<size_t>(k)] =
          shards_[static_cast<size_t>(k)]->LastSequence();
    }
  }
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(static_cast<size_t>(num_shards_));
  for (int k = 0; k < num_shards_; ++k) {
    ReadOptions ro = options;
    ro.snapshot_seqno = cut[static_cast<size_t>(k)];
    children.push_back(shards_[static_cast<size_t>(k)]->NewIterator(ro));
  }
  // Shards hold disjoint key ranges, so the merge degenerates to ordered
  // concatenation — but reusing the merging iterator keeps one code path.
  return NewMergingIterator(options_.comparator, std::move(children));
}

SequenceNumber ShardedDB::GetSnapshot() {
  if (num_shards_ == 1) {
    return shards_[0]->GetSnapshot();
  }
  MutexLock lock(&commit_mu_);
  std::vector<SequenceNumber> cut;
  cut.reserve(static_cast<size_t>(num_shards_));
  for (auto& shard : shards_) {
    cut.push_back(shard->GetSnapshot());  // Pins the compaction floor.
  }
  const uint64_t handle = next_snapshot_handle_++;
  snapshot_handles_[handle] = std::move(cut);
  return kSnapshotHandleBit | handle;
}

void ShardedDB::ReleaseSnapshot(SequenceNumber snapshot) {
  if (num_shards_ == 1) {
    shards_[0]->ReleaseSnapshot(snapshot);
    return;
  }
  MutexLock lock(&commit_mu_);
  auto it = snapshot_handles_.find(snapshot & ~kSnapshotHandleBit);
  if (it == snapshot_handles_.end()) {
    return;
  }
  for (int k = 0; k < num_shards_; ++k) {
    shards_[static_cast<size_t>(k)]->ReleaseSnapshot(
        it->second[static_cast<size_t>(k)]);
  }
  snapshot_handles_.erase(it);
}

// ---------------------------------------------------------------------------
// Control operations
// ---------------------------------------------------------------------------

Status ShardedDB::Flush() {
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->Flush();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ShardedDB::CompactRange() {
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->CompactRange();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ShardedDB::WaitForBackgroundWork() {
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->WaitForBackgroundWork();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ShardedDB::GarbageCollectVlog() {
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->GarbageCollectVlog();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ShardedDB::Resume() {
  stats_.resume_calls.fetch_add(1, std::memory_order_relaxed);
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->Resume();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore / scrub
// ---------------------------------------------------------------------------

Status ShardedDB::Checkpoint(const std::string& dir) {
  Env* env = options_.env;
  Status s = env->CreateDir(dir);
  if (!s.ok() && !env->FileExists(dir)) {
    return s;
  }
  if (env->FileExists(CheckpointMarkerFileName(dir)) ||
      env->FileExists(CheckpointInProgressFileName(dir))) {
    return Status::InvalidArgument(dir, "already holds a checkpoint");
  }
  // Poison marker first (synced): until the completion record exists,
  // neither Restore nor Open will accept this directory, so a crash at any
  // point of the capture leaves a rejected directory, never a torn backup.
  s = WriteStringToFile(env, "checkpoint in progress\n",
                        CheckpointInProgressFileName(dir));
  if (!s.ok()) {
    return s;
  }

  // The whole capture runs under the commit lock: no cross-shard batch can
  // commit between one shard's cut and another's, so the per-shard cuts
  // compose into one consistent multi-shard instant — the same argument as
  // GetSnapshot's consistent cut, extended to durable state.
  MutexLock lock(&commit_mu_);
  for (int k = 0; k < num_shards_; ++k) {
    const std::string shard_dir =
        num_shards_ == 1 ? dir : ShardDirectory::ShardDirName(dir, k);
    s = shards_[static_cast<size_t>(k)]->CheckpointInto(shard_dir);
    if (!s.ok()) {
      return s;
    }
  }
  if (num_shards_ > 1) {
    // Topology is fixed at creation; copy it verbatim.
    s = CopyFileBytes(env, ShardsFileName(dbname_), ShardsFileName(dir));
    if (!s.ok()) {
      return s;
    }
    // Commit log: copy, never link — the live file keeps growing, and a
    // hard link would leak post-cut commit records into the backup. It is
    // quiescent under commit_mu_, so the copy ends exactly at the cut.
    if (env->FileExists(CommitLogFileName(dbname_))) {
      s = CopyFileBytes(env, CommitLogFileName(dbname_),
                        CommitLogFileName(dir));
      if (!s.ok()) {
        return s;
      }
    }
  }
  // Completion record last (synced): its presence is the one and only thing
  // that makes `dir` a valid checkpoint.
  const std::string record =
      std::string(kCheckpointMagic) + "shards=" + std::to_string(num_shards_) +
      "\n";
  s = WriteStringToFile(env, record, CheckpointMarkerFileName(dir));
  if (!s.ok()) {
    return s;
  }
  return env->RemoveFile(CheckpointInProgressFileName(dir));
}

Status ShardedDB::Restore(const Options& options,
                          const std::string& checkpoint_dir,
                          const std::string& target_dir) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (env->FileExists(CheckpointInProgressFileName(checkpoint_dir))) {
    return Status::Corruption(checkpoint_dir,
                              "interrupted checkpoint (in-progress marker)");
  }
  std::string record;
  Status s = ReadFileToString(
      env, CheckpointMarkerFileName(checkpoint_dir), &record);
  if (!s.ok()) {
    return Status::Corruption(checkpoint_dir,
                              "missing CHECKPOINT completion record");
  }
  if (record.rfind(kCheckpointMagic, 0) != 0) {
    return Status::Corruption(checkpoint_dir,
                              "unrecognized checkpoint format");
  }
  int shards = 0;
  const size_t pos = record.find("shards=");
  if (pos == std::string::npos ||
      (shards = std::atoi(record.c_str() + pos + 7)) < 1) {
    return Status::Corruption(checkpoint_dir,
                              "malformed checkpoint shard count");
  }
  if (env->FileExists(CurrentFileName(target_dir)) ||
      env->FileExists(ShardsFileName(target_dir))) {
    return Status::InvalidArgument(target_dir, "already holds a database");
  }
  s = env->CreateDir(target_dir);
  if (!s.ok() && !env->FileExists(target_dir)) {
    return s;
  }

  // Byte copies, not links: the restored DB will truncate its COMMITLOG and
  // append to fresh WALs, and none of that may bleed back into the backup.
  auto copy_dir = [env](const std::string& from, const std::string& to) {
    std::vector<std::string> children;
    Status cs = env->GetChildren(from, &children);
    if (!cs.ok()) {
      return cs;
    }
    for (const std::string& child : children) {
      if (child == "CHECKPOINT" || child == "CHECKPOINT.inprogress" ||
          child.rfind("shard-", 0) == 0) {
        // Markers never travel; shard directories are copied explicitly
        // below (POSIX GetChildren lists them, MemEnv does not).
        continue;
      }
      cs = CopyFileBytes(env, from + "/" + child, to + "/" + child);
      if (!cs.ok()) {
        return cs;
      }
    }
    return Status::OK();
  };
  s = copy_dir(checkpoint_dir, target_dir);
  if (!s.ok()) {
    return s;
  }
  if (shards > 1) {
    for (int k = 0; k < shards; ++k) {
      const std::string to = ShardDirectory::ShardDirName(target_dir, k);
      s = env->CreateDir(to);
      if (!s.ok() && !env->FileExists(to)) {
        return s;
      }
      s = copy_dir(ShardDirectory::ShardDirName(checkpoint_dir, k), to);
      if (!s.ok()) {
        return s;
      }
    }
  }
  return Status::OK();
}

Status ShardedDB::VerifyChecksums() {
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->VerifyChecksums();
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::string ShardedDB::LevelsDebugString() const {
  if (num_shards_ == 1) {
    return shards_[0]->LevelsDebugString();
  }
  std::string out;
  for (int k = 0; k < num_shards_; ++k) {
    out += "shard " + std::to_string(k) + ":\n";
    out += shards_[static_cast<size_t>(k)]->LevelsDebugString();
  }
  return out;
}

std::string ShardedDB::DebugLevelSummary() const {
  if (num_shards_ == 1) {
    // Byte-for-byte the historical single-engine output.
    return shards_[0]->DebugLevelSummary();
  }
  std::string out;
  char buf[256];
  uint64_t total_bytes = 0;
  int total_runs = 0;
  for (const auto& shard : shards_) {
    total_bytes += shard->TotalSstBytes();
    total_runs += shard->TotalSortedRuns();
  }
  std::snprintf(buf, sizeof(buf),
                "sharded db: %d shards, %d sorted runs, %llu sst bytes\n",
                num_shards_, total_runs,
                static_cast<unsigned long long>(total_bytes));
  out += buf;
  for (int k = 0; k < num_shards_; ++k) {
    const std::string lo =
        k == 0 ? "-inf"
               : "\"" + split_keys_[static_cast<size_t>(k - 1)] + "\"";
    const std::string hi =
        k == num_shards_ - 1
            ? "+inf"
            : "\"" + split_keys_[static_cast<size_t>(k)] + "\"";
    std::snprintf(buf, sizeof(buf), "shard %d [%s, %s):\n", k, lo.c_str(),
                  hi.c_str());
    out += buf;
    out += shards_[static_cast<size_t>(k)]->DebugShardSection();
  }
  // The process-wide statistics block, exactly once: the Statistics object
  // is shared by every shard, so printing it per shard would double-count.
  std::snprintf(
      buf, sizeof(buf),
      "read path: views published=%llu, table cache hits=%llu misses=%llu, "
      "multiget batches=%llu (%llu keys)\n",
      static_cast<unsigned long long>(stats_.read_views_published.load()),
      static_cast<unsigned long long>(stats_.table_cache_hits.load()),
      static_cast<unsigned long long>(stats_.table_cache_misses.load()),
      static_cast<unsigned long long>(stats_.multiget_batches.load()),
      static_cast<unsigned long long>(stats_.multiget_keys.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "batched io: batches=%llu reads=%llu bytes=%llu, "
      "readahead hits=%llu misses=%llu\n",
      static_cast<unsigned long long>(stats_.io_batches.load()),
      static_cast<unsigned long long>(stats_.io_batch_reads.load()),
      static_cast<unsigned long long>(stats_.io_batch_bytes.load()),
      static_cast<unsigned long long>(stats_.readahead_hits.load()),
      static_cast<unsigned long long>(stats_.readahead_misses.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "learned index: hits=%llu fallbacks=%llu, index bytes loaded=%llu\n",
      static_cast<unsigned long long>(stats_.learned_index_hits.load()),
      static_cast<unsigned long long>(stats_.learned_index_fallbacks.load()),
      static_cast<unsigned long long>(stats_.index_bytes_loaded.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "cross-shard: batches=%llu prepares=%llu commits=%llu aborts=%llu\n",
      static_cast<unsigned long long>(stats_.cross_shard_batches.load()),
      static_cast<unsigned long long>(stats_.shard_prepares.load()),
      static_cast<unsigned long long>(stats_.shard_commits.load()),
      static_cast<unsigned long long>(stats_.shard_aborts.load()));
  out += buf;
  Histogram durations = stats_.CompactionDurations();
  if (durations.num() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "job duration micros: n=%llu avg=%.0f p95=%.0f max=%.0f\n",
                  static_cast<unsigned long long>(durations.num()),
                  durations.Average(), durations.Percentile(95.0),
                  durations.max());
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "bg errors: soft=%llu hard=%llu retries=%llu retry_success=%llu "
      "resume_calls=%llu\n",
      static_cast<unsigned long long>(stats_.bg_error_soft.load()),
      static_cast<unsigned long long>(stats_.bg_error_hard.load()),
      static_cast<unsigned long long>(stats_.bg_retries.load()),
      static_cast<unsigned long long>(stats_.bg_retry_success.load()),
      static_cast<unsigned long long>(stats_.resume_calls.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf), "scrub: bytes_verified=%llu corruptions=%llu\n",
      static_cast<unsigned long long>(stats_.scrub_bytes_verified.load()),
      static_cast<unsigned long long>(stats_.scrub_corruptions.load()));
  out += buf;
  return out;
}

int ShardedDB::TotalSortedRuns() const {
  int total = 0;
  for (const auto& shard : shards_) {
    total += shard->TotalSortedRuns();
  }
  return total;
}

uint64_t ShardedDB::TotalSstBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->TotalSstBytes();
  }
  return total;
}

uint64_t ShardedDB::CountLiveEntries() {
  uint64_t total = 0;
  for (auto& shard : shards_) {
    total += shard->CountLiveEntries();
  }
  return total;
}

ErrorState ShardedDB::BackgroundErrorState() const {
  for (const auto& shard : shards_) {
    ErrorState state = shard->BackgroundErrorState();
    if (!state.ok() || !state.first_status.ok()) {
      return state;
    }
  }
  return ErrorState();
}

Status ShardedDB::ValidateTreeInvariants() const {
  for (const auto& shard : shards_) {
    Status s = shard->ValidateTreeInvariants();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DestroyDB
// ---------------------------------------------------------------------------

Status DestroyDB(const Options& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  Status result;
  auto record = [&result](const Status& s) {
    if (!s.ok() && result.ok()) {
      result = s;
    }
  };
  auto clean_dir = [&](const std::string& dir) {
    std::vector<std::string> children;
    Status s = env->GetChildren(dir, &children);
    if (s.IsNotFound()) {
      return;
    }
    if (!s.ok()) {
      record(s);
      return;
    }
    for (const auto& child : children) {
      record(env->RemoveFile(dir + "/" + child));
    }
  };

  // Shard subdirectories first (topology file or probing — MemEnv-style
  // filesystems do not list subdirectories in GetChildren), then the flat
  // root contents, then the directories themselves.
  for (const auto& dir : ShardDirectory::ListShardDirs(env, name)) {
    clean_dir(dir);
    // Best effort: the recorded per-file errors already cover the cause.
    (void)env->RemoveDir(dir);
  }

  std::vector<std::string> children;
  Status s = env->GetChildren(name, &children);
  if (s.IsNotFound()) {
    return Status::OK();
  }
  if (!s.ok()) {
    return s;
  }
  for (const auto& child : children) {
    if (child.rfind("shard-", 0) == 0) {
      continue;  // A shard directory (POSIX lists it); already cleaned.
    }
    record(env->RemoveFile(name + "/" + child));
  }
  record(env->RemoveDir(name));
  return result;
}

}  // namespace lsmlab
