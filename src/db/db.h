#ifndef LSMLAB_DB_DB_H_
#define LSMLAB_DB_DB_H_

#include <atomic>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "compaction/compaction_job.h"
#include "compaction/compaction_picker.h"
#include "db/dbformat.h"
#include "db/error_state.h"
#include "db/statistics.h"
#include "db/table_cache.h"
#include "db/write_batch.h"
#include "io/wal_writer.h"
#include "kvsep/vlog.h"
#include "memtable/memtable.h"
#include "table/iterator.h"
#include "table/table_builder.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "version/version_set.h"

namespace lsmlab {

/// An immutable snapshot of everything a point lookup or iterator needs:
/// the active memtable, the immutable memtables (newest first — probe
/// order), the current Version, and the newest sequence published when the
/// view was built. Reference-counted and swapped behind a dedicated
/// pointer-sized leaf lock, so readers acquire a consistent view with one
/// shared_ptr copy instead of locking the DB mutex and copying vectors.
/// (A std::atomic<shared_ptr> would read nicer but is a hidden spinlock in
/// libstdc++ whose relaxed unlock trips ThreadSanitizer; an explicit leaf
/// mutex costs the same two atomic ops and is model-clean.) The shared_ptrs
/// inside double as lifetime pins: a reader holding a stale view keeps its
/// memtables and SSTables alive even after a flush or compaction replaced
/// them.
struct ReadView {
  std::shared_ptr<MemTable> mem;
  /// Immutable memtables, newest first.
  std::vector<std::shared_ptr<MemTable>> imms;
  std::shared_ptr<const Version> version;
  /// VersionSet::last_sequence() observed at publication. Readers must NOT
  /// use this as their snapshot (it is stale the moment a later write
  /// commits); they re-load the live counter. Kept for diagnostics.
  SequenceNumber published_sequence = 0;
};

/// DB is the lsmlab storage engine: a single-keyspace LSM-tree exposing the
/// external operations of tutorial §2.1.2 (put, get, scan, delete) with
/// every internal design decision (§2.2, §2.3) controlled by Options.
///
/// Concurrency model: any number of reader threads; flushes and compactions
/// run on a background pool. Writers go through a LevelDB/RocksDB-style
/// group-commit queue (leader/follower protocol): each writer enqueues
/// itself under `writer_queue_mu_`; the front writer becomes *leader*,
/// coalesces the batches of compatible queued followers into one group,
/// and commits the whole group — one sequence range, one WAL record, and
/// (for sync writes) one fsync — before waking the followers with their
/// statuses. Only the leader ever runs the write-stall ladder
/// (MakeRoomForWrite) or touches the WAL, so the expensive WAL append +
/// Sync happen entirely outside `mu_`; `mu_` is held only to make room,
/// to assign sequence numbers, and to apply the merged batch to the
/// memtable. Lock ordering: `writer_queue_mu_` is acquired before `mu_`,
/// never after it. Forward iteration only.
class DB {
 public:
  /// Opens (creating if configured) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  // --- External operations (tutorial §2.1.2) -------------------------------
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  /// Logical delete: writes a tombstone (§2.1.2).
  Status Delete(const WriteOptions& options, const Slice& key);
  /// Single-delete for keys written at most once; the tombstone annihilates
  /// with the first older put it meets during compaction (§2.3.3).
  Status SingleDelete(const WriteOptions& options, const Slice& key);
  /// Range delete, realized as a snapshot scan writing one tombstone per
  /// live key in [begin, end) — the simple strategy predating native range
  /// tombstones (documented simplification).
  Status DeleteRange(const WriteOptions& options, const Slice& begin,
                     const Slice& end);

  /// Read-modify-write without reading (tutorial §2.2.6): buffers a merge
  /// operand combined with the base value lazily at read/compaction time.
  /// Requires Options::merge_operator.
  Status Merge(const WriteOptions& options, const Slice& key,
               const Slice& operand);

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Batched point lookup: resolves every key under one ReadView (one
  /// atomic acquire for the whole batch) and reorders the work file-by-file
  /// — all memtable probes first, then every filter check, then data-block
  /// reads — so a table's filter and reader are touched once per batch
  /// instead of once per key. Returns one Status per key, aligned with
  /// `keys`; `values` is resized to match.
  std::vector<Status> MultiGet(const ReadOptions& options,
                               const std::vector<Slice>& keys,
                               std::vector<std::string>* values);

  /// Applies all operations in `batch` atomically: one WAL record, one
  /// sequence-number range, all-or-nothing recovery.
  Status Write(const WriteOptions& options, WriteBatch* batch);

  /// Iterator over user keys (newest visible version of each, tombstones
  /// suppressed). Forward-only.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  /// Snapshots pin a sequence number; reads at a snapshot see only writes
  /// with sequence <= it, and compactions preserve what snapshots need.
  SequenceNumber GetSnapshot();
  void ReleaseSnapshot(SequenceNumber snapshot);

  // --- Internal operations, exposed for control & experiments --------------
  /// Forces the current memtable to disk and waits for the flush.
  Status Flush();
  /// Merges everything down as far as the layout allows (manual, blocking).
  Status CompactRange();
  /// Blocks until no flush or compaction is queued or running.
  Status WaitForBackgroundWork();
  /// Rewrites value logs dropping dead values (WiscKey GC). No-op without
  /// kv separation.
  Status GarbageCollectVlog();

  /// Clears a background-error state after the operator fixed the cause
  /// (freed disk space, remounted the device). For a hard manifest error it
  /// rolls a fresh manifest; for a hard WAL error it rotates the WAL and
  /// flushes the sealed memtable so no acked write depends on the poisoned
  /// log; soft errors are simply cleared and their work rescheduled. A
  /// partially-applied write group (memtable source) is not resumable —
  /// reopen instead. Returns the error still in force if repair fails.
  Status Resume() EXCLUDES(writer_queue_mu_, mu_);

  // --- Introspection --------------------------------------------------------
  Statistics* statistics() { return &stats_; }
  LruCache* block_cache() { return block_cache_.get(); }
  VlogManager* vlog() { return vlog_.get(); }
  /// Current tree shape, one line per non-empty level.
  std::string LevelsDebugString() const;
  /// Multi-line dump of per-level shape and compaction counters plus the
  /// currently running background jobs; for tests and benches.
  std::string DebugLevelSummary() const;
  /// Number of sorted runs a point lookup may probe.
  int TotalSortedRuns() const;
  uint64_t TotalSstBytes() const;
  /// Approximate count of live (visible) entries; walks a full iterator.
  uint64_t CountLiveEntries();
  const Options& options() const { return options_; }

  /// Snapshot of the background-error condition (current error, severity,
  /// source, and first-error provenance).
  ErrorState BackgroundErrorState() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return error_state_;
  }

  /// Structural self-check of the LSM invariants (DESIGN.md §4): leveled
  /// levels hold disjoint, sorted files; every file's metadata matches its
  /// contents; no level exceeds num_levels. Returns the first violation.
  /// Intended for tests and debugging; walks file metadata only.
  Status ValidateTreeInvariants() const;

 private:
  DB(const Options& options, std::string dbname);

  struct Writer;

  Status Initialize();
  Status Recover();
  /// Replays one WAL file into L0 tables. Must be called *without* mu_
  /// (BuildTableFromIterator takes it internally); recovery is
  /// single-threaded, so the tables it builds race nothing.
  /// `*stop_replay` is set when a corrupt record was tolerated under
  /// point-in-time recovery: replay must not continue into later logs
  /// (recovering past the corruption would break prefix consistency).
  Status RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence,
                        VersionEdit* edit, bool* stop_replay) EXCLUDES(mu_);
  Status NewMemTableAndLog() REQUIRES(mu_);
  /// Seals the active memtable into imms_ and swaps in a fresh one. The
  /// outgoing WAL is fsynced first so every sealed (non-active) log is a
  /// fully durable prefix — a crash can then only lose the tail of the
  /// *active* WAL, preserving prefix-consistent recovery across log files.
  /// `skip_old_wal_sync` is for Resume(): the outgoing WAL is known-poisoned
  /// and its contents are re-persisted via the flush the caller schedules.
  Status NewMemTableAndLogLocked(bool skip_old_wal_sync = false)
      REQUIRES(mu_);
  std::unique_ptr<MemTable> MakeMemTable() const;

  Status WriteInternal(const WriteOptions& options, ValueType type,
                       const Slice& key, const Slice& value);
  /// Shared core of every write: enqueues onto the group-commit writer
  /// queue and returns once a leader (possibly this writer) has committed
  /// the batch.
  Status WriteBatchInternal(const WriteOptions& options, WriteBatch* batch);
  /// Enqueues `w`, waits for a leader to commit it (or for leadership), and
  /// as leader commits the whole group and hands leadership on.
  Status EnqueueWriter(Writer* w) EXCLUDES(writer_queue_mu_, mu_);
  /// Collects the leader plus compatible followers from the front of
  /// write_queue_ into `group`.
  void BuildWriteGroup(Writer* leader, std::vector<Writer*>* group)
      REQUIRES(writer_queue_mu_);
  /// Leader-only: assigns the group's sequence range, writes one WAL
  /// record (+ optional fsync) outside mu_, applies the merged batch to
  /// the memtable, and publishes the new last_sequence.
  Status CommitWriteGroup(Writer* leader, const std::vector<Writer*>& group)
      EXCLUDES(mu_);
  /// Seals the active memtable via the writer queue (so the swap cannot
  /// race a leader's WAL write); used by Flush(). With `force`, seals even
  /// when the memtable is empty or a hard error is in force (Resume()'s WAL
  /// rotation).
  Status SealActiveMemTable(bool force = false);
  /// Blocks (or fails with Busy under no_slowdown) until the write path has
  /// room; implements the slowdown/stop stall ladder (tutorial §2.2.3).
  /// Only the current write-queue leader may call this. Drops and reacquires
  /// mu_ internally around delay sleeps and stall waits.
  Status MakeRoomForWrite(bool no_slowdown) REQUIRES(mu_);

  /// Builds an SSTable at `level` from `iter`; returns its metadata.
  /// Takes mu_ internally to pin/unpin the output file number.
  Status BuildTableFromIterator(Iterator* iter, int level,
                                uint64_t oldest_tombstone_hint,
                                FileMetaData* meta) EXCLUDES(mu_);
  TableBuilderOptions MakeBuilderOptions(int level) const;

  /// Classifies and records a background error (severity, source, first
  /// cause), bumps the matching stat, and wakes waiters.
  void RecordBackgroundError(const Status& s, ErrorSeverity severity,
                             ErrorSource source) REQUIRES(mu_);
  /// Backoff delay before soft-error retry number `attempt` (0-based).
  uint64_t RetryDelayMicros(int attempt) const;
  /// Sleeps ~`micros` on the calling (pool) thread in small chunks,
  /// returning false early if the DB began shutting down.
  bool SleepForRetry(uint64_t micros) EXCLUDES(mu_);
  /// Pool tasks re-running failed work after backoff.
  void RetryFlushAfterBackoff(uint64_t delay_micros) EXCLUDES(mu_);
  void RetryCompactionAfterBackoff(uint64_t delay_micros) EXCLUDES(mu_);

  void MaybeScheduleFlush() REQUIRES(mu_);
  /// Admission loop: keeps picking and admitting compaction jobs whose
  /// key-ranges and files are disjoint from every running job, until the
  /// picker finds nothing admissible or the concurrency limit is reached.
  void MaybeScheduleCompaction() REQUIRES(mu_);
  void BackgroundFlush() EXCLUDES(mu_);
  /// Pool entry point for one admitted job: runs it off mu_, installs its
  /// edit (or cleans up), unregisters its claims, and re-runs admission.
  void BackgroundCompaction(std::shared_ptr<CompactionJob> job) EXCLUDES(mu_);

  /// Builds the executor context (callbacks, snapshot floor) for a new job.
  CompactionJob::Context MakeCompactionContextLocked() REQUIRES(mu_);
  /// Registers `plan`'s files and key-range claims, bumps the running
  /// count, and schedules the job on the pool.
  void AdmitCompactionLocked(CompactionPlan plan) REQUIRES(mu_);
  /// Drops a finished job's file and range claims.
  void UnregisterCompactionLocked(uint64_t job_id) REQUIRES(mu_);
  /// Applies a finished job's edit atomically, releases its output pins,
  /// records per-level stats, and collects obsolete inputs.
  Status InstallCompactionLocked(CompactionJob* job) REQUIRES(mu_);
  /// Concurrency cap: max_background_compactions, defaulting to the pool
  /// size when 0.
  int MaxConcurrentCompactions() const;

  void RemoveObsoleteFiles() REQUIRES(mu_);

  SequenceNumber OldestSnapshot() const REQUIRES(mu_);

  Status ResolveValue(const Slice& user_key, ValueType type,
                      const std::string& raw, std::string* value);

  /// Slow path for keys whose newest visible entry is a merge operand:
  /// walks all versions of `key` at `snapshot` within `view`, collects
  /// operands down to the base value, and applies the merge operator.
  Status ResolveMerge(const ReadOptions& options, const ReadView& view,
                      const Slice& key, SequenceNumber snapshot,
                      std::string* value);

  // --- Low-contention read path -----------------------------------------
  /// One pointer copy under the dedicated view lock. Never null after
  /// Initialize succeeds.
  std::shared_ptr<const ReadView> AcquireReadView() const
      EXCLUDES(read_view_mu_) {
    MutexLock lock(&read_view_mu_);
    return read_view_;
  }
  /// Rebuilds the view from {mem_, imms_, versions_->current()} and swaps
  /// it in under read_view_mu_. Called only by the paths that change view
  /// membership: Recover, memtable seal, flush install, and compaction
  /// install.
  void PublishReadView() REQUIRES(mu_) EXCLUDES(read_view_mu_);
  /// Resolves the open TableReader for `f`, preferring the per-file pin in
  /// f.table_handle (one atomic load, no shard lock) and falling back to
  /// the sharded TableCache on first touch, then publishing the result into
  /// the pin for every later reader of any Version containing the file.
  Status GetTableReader(const FileMetaData& f,
                        std::shared_ptr<TableReader>* reader);

  class DBIter;
  std::unique_ptr<Iterator> NewInternalIterator(const ReadOptions& options,
                                                const ReadView& view);
  /// Fetches the raw (unresolved) vlog pointer currently stored for `key`;
  /// NotFound when the key is deleted, absent, or stored inline.
  Status GetRawPointer(const ReadOptions& options, const Slice& key,
                       std::string* raw);

  // ---------------------------------------------------------------------
  const Options options_;  // Normalized copy (env/clock/comparator filled).
  const std::string dbname_;
  InternalKeyComparator internal_comparator_;
  Statistics stats_;

  std::unique_ptr<LruCache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<CompactionPicker> picker_;
  std::unique_ptr<RateLimiter> compaction_rate_limiter_;
  std::unique_ptr<VlogManager> vlog_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<double> monkey_bits_;  // Per-level filter bits (Monkey).

  /// The DB mutex: root of the lock hierarchy (see DESIGN.md, "Locking
  /// discipline"). May be held while taking any leaf lock (VersionSet,
  /// picker, caches, pool) but never while taking writer_queue_mu_.
  mutable Mutex mu_;
  CondVar background_cv_;

  std::shared_ptr<MemTable> mem_ GUARDED_BY(mu_);
  std::deque<std::shared_ptr<MemTable>> imms_ GUARDED_BY(mu_);  // Oldest 1st.
  /// Leaf lock for the published view pointer only. Its critical section is
  /// a shared_ptr copy (two atomic ops), so readers never wait on flush
  /// installs, manifest writes, or compaction bookkeeping, all of which
  /// hold mu_. Ordered after mu_ (publishers hold mu_ while swapping);
  /// readers take it alone.
  mutable Mutex read_view_mu_;
  /// Published read snapshot (see ReadView). Republished by the membership-
  /// changing paths (seal, flush install, compaction install, recovery)
  /// while they hold mu_.
  std::shared_ptr<const ReadView> read_view_ GUARDED_BY(read_view_mu_);
  uint64_t log_file_number_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> log_file_ GUARDED_BY(mu_);
  std::unique_ptr<wal::Writer> log_ GUARDED_BY(mu_);
  /// Log numbers backing the immutable memtables (oldest first).
  std::deque<uint64_t> imm_log_numbers_ GUARDED_BY(mu_);

  std::multiset<SequenceNumber> snapshots_ GUARDED_BY(mu_);

  bool flush_scheduled_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  /// Background-error condition: severity (soft errors auto-retry with
  /// backoff; hard errors put the DB in read-only mode until Resume()),
  /// source, and first-error provenance. Replaces the old sticky
  /// `background_error_` poison bit.
  ErrorState error_state_ GUARDED_BY(mu_);
  /// Consecutive failed attempts of the flush / compaction currently being
  /// retried; reset on success, promoted to a hard error on exhaustion.
  int flush_retry_attempts_ GUARDED_BY(mu_) = 0;
  int compaction_retry_attempts_ GUARDED_BY(mu_) = 0;
  /// True while a compaction retry is sleeping out its backoff: gates
  /// MaybeScheduleCompaction so the backoff cannot be defeated by an
  /// immediate re-admission, and keeps WaitForBackgroundWork waiting.
  bool compaction_retry_pending_ GUARDED_BY(mu_) = false;

  /// One entry per admitted-but-unfinished compaction job. The claims are
  /// the job's input∪overlap user-key hull at its input and output levels;
  /// the picker refuses any plan whose hull intersects a claim at a shared
  /// level, which is what makes concurrent installs conflict-free.
  struct RunningCompaction {
    uint64_t job_id = 0;
    std::shared_ptr<CompactionJob> job;
    std::vector<ClaimedRange> claims;
  };
  std::vector<RunningCompaction> running_compactions_ GUARDED_BY(mu_);
  /// File numbers owned by running jobs (inputs and overlap); the picker
  /// treats them as untouchable.
  std::set<uint64_t> compacting_files_ GUARDED_BY(mu_);
  int compactions_running_ GUARDED_BY(mu_) = 0;
  uint64_t next_compaction_job_id_ GUARDED_BY(mu_) = 1;
  /// True while CompactRange holds the tree exclusively: blocks new
  /// automatic admissions.
  bool manual_compaction_active_ GUARDED_BY(mu_) = false;

  /// Table files currently being written (flush/compaction outputs) that no
  /// Version references yet. RemoveObsoleteFiles must not delete them.
  /// Entries are erased once the file is installed in a Version or its
  /// builder gave up and removed it.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mu_);

  /// Group-commit writer queue (leader/follower). Acquired before mu_,
  /// never while holding mu_. The front writer is the current leader; it is
  /// the only thread allowed in MakeRoomForWrite, the WAL, or group_batch_
  /// until it hands leadership to the next queued writer.
  Mutex writer_queue_mu_ ACQUIRED_BEFORE(mu_);
  std::deque<Writer*> write_queue_ GUARDED_BY(writer_queue_mu_);
  /// Leader-only scratch batch holding a coalesced group (> 1 writer).
  /// Owned by whichever thread is leader — an exclusion the analysis cannot
  /// express, so it carries no GUARDED_BY; the leader protocol in
  /// EnqueueWriter/CommitWriteGroup is its lock.
  WriteBatch group_batch_;
};

/// Destroys the database at `name` (removes all its files). For tests and
/// benches.
Status DestroyDB(const Options& options, const std::string& name);

}  // namespace lsmlab

#endif  // LSMLAB_DB_DB_H_
