#ifndef LSMLAB_DB_DB_H_
#define LSMLAB_DB_DB_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "db/error_state.h"
#include "db/shard_engine.h"
#include "db/statistics.h"
#include "db/table_cache.h"
#include "db/write_batch.h"
#include "io/env.h"
#include "io/wal_writer.h"
#include "kvsep/vlog.h"
#include "table/iterator.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace lsmlab {

/// ShardedDB is the public face of the lsmlab storage engine: a
/// range-partitioned facade over Options::num_shards independent ShardEngine
/// cores (DESIGN.md, "Sharding architecture"). Each engine owns one
/// directory — its WAL, memtables, manifest, error state — while the
/// process-wide resources (block cache, sharded table cache, background
/// thread pool, compaction rate limiter, Statistics) live here and are
/// shared by every shard, so an N-shard DB is still one database: one
/// memory budget, one background-I/O budget, one stats block.
///
/// With num_shards == 1 (the default) the facade is a pass-through and the
/// on-disk layout is the historical flat single-engine directory,
/// byte-for-byte. With N > 1 each shard lives in `<db>/shard-<k>/`, the
/// topology is persisted in `<db>/SHARDS` (fixed at creation; wins over
/// Options on reopen), and cross-shard WriteBatches commit atomically via
/// two-phase commit: a synced prepare record in every involved shard's WAL,
/// then a synced commit record in `<db>/COMMITLOG`, then per-shard commit
/// markers. Recovery replays a cross-shard batch iff its commit record (or
/// any shard's commit marker) survived — all shards or none.
///
/// Reads route by key range; MultiGet fans out per shard and keeps each
/// shard's batched-I/O path; iterators merge the per-shard iterators with
/// the standard merging iterator over one consistent multi-shard cut.
/// Snapshots at N > 1 are handles (bit 63 set) mapping to one pinned
/// sequence per shard, cut under the cross-shard commit lock so they never
/// observe half of an atomic batch.
class ShardedDB {
 public:
  /// Opens (creating if configured) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<ShardedDB>* dbptr);

  ~ShardedDB();

  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;

  // --- External operations (tutorial §2.1.2) -------------------------------
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  /// Logical delete: writes a tombstone (§2.1.2).
  Status Delete(const WriteOptions& options, const Slice& key);
  /// Single-delete for keys written at most once; the tombstone annihilates
  /// with the first older put it meets during compaction (§2.3.3).
  Status SingleDelete(const WriteOptions& options, const Slice& key);
  /// Range delete, realized as a snapshot scan writing one tombstone per
  /// live key in [begin, end); at N > 1 the range is clamped to each
  /// overlapping shard. Not atomic across keys (documented simplification).
  Status DeleteRange(const WriteOptions& options, const Slice& begin,
                     const Slice& end);

  /// Read-modify-write without reading (tutorial §2.2.6): buffers a merge
  /// operand combined with the base value lazily at read/compaction time.
  /// Requires Options::merge_operator.
  Status Merge(const WriteOptions& options, const Slice& key,
               const Slice& operand);

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Batched point lookup: splits the batch by shard and resolves each
  /// shard's keys under one ReadView with the file-by-file reordered,
  /// batched-I/O path. Returns one Status per key, aligned with `keys`;
  /// `values` is resized to match.
  std::vector<Status> MultiGet(const ReadOptions& options,
                               const std::vector<Slice>& keys,
                               std::vector<std::string>* values);

  /// Applies all operations in `batch` atomically. Within one shard: one
  /// WAL record, one sequence range. Across shards: two-phase commit (see
  /// class comment) — every involved shard's slice is synced at prepare
  /// time, so a committed cross-shard batch is durable regardless of
  /// WriteOptions::sync.
  Status Write(const WriteOptions& options, WriteBatch* batch);

  /// Iterator over user keys (newest visible version of each, tombstones
  /// suppressed). Forward-only. At N > 1, a merge of per-shard iterators
  /// over one consistent cut.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  /// Snapshots pin a sequence number; reads at a snapshot see only writes
  /// with sequence <= it, and compactions preserve what snapshots need.
  /// At N > 1 the returned value is a handle (bit 63 set) standing for one
  /// pinned sequence per shard.
  SequenceNumber GetSnapshot();
  void ReleaseSnapshot(SequenceNumber snapshot);

  // --- Internal operations, exposed for control & experiments --------------
  /// Forces the current memtable(s) to disk and waits for the flush(es).
  Status Flush();
  /// Merges everything down as far as the layout allows (manual, blocking).
  Status CompactRange();
  /// Blocks until no flush or compaction is queued or running.
  Status WaitForBackgroundWork();
  /// Rewrites value logs dropping dead values (WiscKey GC). No-op without
  /// kv separation.
  Status GarbageCollectVlog();

  /// Clears background-error states after the operator fixed the cause;
  /// see ShardEngine::Resume. Fans out to every shard; returns the first
  /// error still in force.
  Status Resume();

  /// Takes a consistent online checkpoint (backup) of the whole database
  /// into `dir` (created if absent, must not already hold a checkpoint).
  /// Safe under full concurrent write load: each shard cuts its WAL (seal +
  /// fsync) and hard-links its immutable files, and the whole capture runs
  /// under the cross-shard commit lock, so a 2PC batch is never split
  /// across the checkpoint boundary. The directory is only a valid
  /// checkpoint once its CHECKPOINT completion record exists — Restore
  /// rejects anything less, so an interrupted checkpoint can never be
  /// mistaken for a backup. The source DB is never modified beyond the WAL
  /// rotation.
  Status Checkpoint(const std::string& dir) EXCLUDES(commit_mu_);

  /// Materializes the checkpoint at `checkpoint_dir` as a fresh, openable
  /// database at `target_dir` (byte copies — the restored DB never shares
  /// files with the backup). Validates the CHECKPOINT completion record
  /// first and refuses partial or in-progress checkpoints; refuses a
  /// `target_dir` that already holds a database.
  static Status Restore(const Options& options,
                        const std::string& checkpoint_dir,
                        const std::string& target_dir);

  /// Rate-limited scrub: walks every live SSTable and vlog of every shard
  /// through checksum / record-framing verification, reporting the first
  /// corruption with file provenance. Bumps scrub_bytes_verified /
  /// scrub_corruptions.
  Status VerifyChecksums();

  // --- Introspection --------------------------------------------------------
  Statistics* statistics() { return &stats_; }
  LruCache* block_cache() { return block_cache_.get(); }
  /// Shard 0's value-log manager (tests and experiments run kv separation
  /// single-shard).
  VlogManager* vlog() { return shards_[0]->vlog(); }
  /// Current tree shape, one line per non-empty level (per shard at N > 1).
  std::string LevelsDebugString() const;
  /// Multi-line dump of per-level shape and compaction counters plus the
  /// currently running background jobs; for tests and benches. At N = 1
  /// this is the historical single-engine output verbatim; at N > 1 it is
  /// an aggregate header, one tree section per shard, and the process-wide
  /// statistics block exactly once (shared Statistics must not be printed
  /// per shard — that would double-count).
  std::string DebugLevelSummary() const;
  /// Total sorted runs across all shards (a point lookup probes only its
  /// own shard's runs).
  int TotalSortedRuns() const;
  uint64_t TotalSstBytes() const;
  /// Approximate count of live (visible) entries; walks a full iterator.
  uint64_t CountLiveEntries();
  const Options& options() const { return options_; }
  int num_shards() const { return num_shards_; }
  /// Interior split keys ([k-1] is the lower bound of shard k); empty at
  /// N = 1.
  const std::vector<std::string>& shard_split_keys() const {
    return split_keys_;
  }

  /// Snapshot of the background-error condition: the first shard's non-OK
  /// state, or OK.
  ErrorState BackgroundErrorState() const;

  /// Structural self-check of the LSM invariants (DESIGN.md §4) on every
  /// shard. Returns the first violation.
  Status ValidateTreeInvariants() const;

 private:
  ShardedDB(const Options& options, std::string dbname);

  Status Initialize();
  /// Resolves the shard topology: the SHARDS file when present (it wins),
  /// an existing flat layout (forced N = 1), or Options for a fresh DB
  /// (with uniform first-byte splits when none are given).
  Status ResolveTopology(bool* fresh);
  /// Reads `<db>/COMMITLOG` into `committed` (cross-shard batch ids whose
  /// commit record survived), tolerating a torn tail.
  Status ReadCommitLog(std::set<uint64_t>* committed);
  /// Truncates and reopens `<db>/COMMITLOG` for the new incarnation —
  /// every engine already replayed its prepares, so the old records are
  /// spent. Batch ids continue above every id recovered from the old
  /// commit log or any shard's WAL (see Initialize), never restarting.
  Status ResetCommitLog() EXCLUDES(commit_mu_);

  /// Shard serving `key`: upper_bound over the interior split keys.
  int ShardForKey(const Slice& key) const;
  /// Rewrites a snapshot handle (bit 63) into shard `shard`'s pinned
  /// sequence; passes raw sequences through.
  ReadOptions ShardReadOptions(const ReadOptions& options, int shard) const
      EXCLUDES(commit_mu_);

  /// Two-phase commit of a batch spanning `involved` shards; called with
  /// commit_mu_ held (it serializes cross-shard commits against each other
  /// and against snapshot cuts).
  Status CommitCrossShard(const WriteOptions& options,
                          std::vector<WriteBatch>* parts,
                          const std::vector<int>& involved)
      REQUIRES(commit_mu_);

  // ---------------------------------------------------------------------
  const Options options_;  // Normalized copy (env/clock/comparator filled).
  const std::string dbname_;
  InternalKeyComparator internal_comparator_;
  Statistics stats_;

  int num_shards_ = 1;
  std::vector<std::string> split_keys_;  // num_shards_ - 1 interior keys.

  // Process-wide resources, shared by every shard (see ShardResources).
  std::unique_ptr<LruCache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<RateLimiter> compaction_rate_limiter_;
  std::unique_ptr<ThreadPool> pool_;

  std::vector<std::unique_ptr<ShardEngine>> shards_;

  /// Serializes cross-shard commits, snapshot cuts, and consistent
  /// iterator cuts at N > 1. Leaf lock of the facade: never held while a
  /// caller is inside a single-shard engine operation, only around the
  /// 2PC fan-out and per-shard sequence reads.
  mutable Mutex commit_mu_{LockRank::kCommitMu, "sharded_db.commit_mu"};
  uint64_t next_batch_id_ GUARDED_BY(commit_mu_) = 1;
  std::unique_ptr<WritableFile> commit_log_file_ GUARDED_BY(commit_mu_);
  std::unique_ptr<wal::Writer> commit_log_ GUARDED_BY(commit_mu_);

  /// N > 1 snapshot registry: handle -> one pinned sequence per shard.
  std::map<uint64_t, std::vector<SequenceNumber>> snapshot_handles_
      GUARDED_BY(commit_mu_);
  uint64_t next_snapshot_handle_ GUARDED_BY(commit_mu_) = 1;
};

/// The historical engine name; the facade is the DB.
using DB = ShardedDB;

/// Destroys the database at `name` (removes all its files, including shard
/// subdirectories). For tests and benches.
Status DestroyDB(const Options& options, const std::string& name);

}  // namespace lsmlab

#endif  // LSMLAB_DB_DB_H_
