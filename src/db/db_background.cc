// Background half of DB: flushes, compactions, file garbage collection, and
// value-log GC. Split from db.cc for readability; same class.

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "db/db.h"
#include "db/filename.h"
#include "db/internal_iterators.h"
#include "table/merging_iterator.h"
#include "table/table_builder.h"
#include "util/clock.h"
#include "util/logging.h"

namespace lsmlab {

namespace {
/// Charge the rate limiter in chunks so throttling is smooth but cheap.
constexpr uint64_t kRateLimitChunk = 256 << 10;
}  // namespace

TableBuilderOptions DB::MakeBuilderOptions(int level) const {
  TableBuilderOptions topt;
  topt.comparator = &internal_comparator_;
  topt.block_size = options_.block_size;
  topt.block_restart_interval = options_.block_restart_interval;
  topt.creation_time_micros = options_.clock->NowMicros();

  if (options_.filter_policy != nullptr) {
    double bits = monkey_bits_[static_cast<size_t>(
        std::min(level, options_.num_levels - 1))];
    topt.filter_bits_per_key = bits;
    if (options_.filter_allocation == FilterAllocation::kMonkey) {
      // Monkey varies bits per level; build with a per-level Bloom filter.
      // (Monkey allocation presumes Bloom-style filters; a level whose
      // optimal FPR reaches 1.0 gets no filter at all.)
      topt.filter_policy =
          bits >= 0.5 ? NewBloomFilterPolicy(bits) : nullptr;
    } else {
      topt.filter_policy = options_.filter_policy;
    }
  }
  return topt;
}

Status DB::BuildTableFromIterator(Iterator* iter, int level,
                                  uint64_t oldest_tombstone_hint,
                                  FileMetaData* meta) {
  uint64_t file_number;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file_number = versions_->NewFileNumber();
    // The file exists on disk before any Version references it; pin it so a
    // concurrent RemoveObsoleteFiles does not garbage-collect it mid-build.
    // On success the caller erases the pin once the file is installed.
    pending_outputs_.insert(file_number);
  }
  auto unpin = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    pending_outputs_.erase(file_number);
  };
  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<WritableFile> file;
  Status s = options_.env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    unpin();
    return s;
  }

  TableBuilderOptions topt = MakeBuilderOptions(level);
  topt.oldest_tombstone_time_micros = oldest_tombstone_hint;
  TableBuilder builder(topt, file.get());

  InternalKey smallest, largest;
  bool first = true;
  for (; iter->Valid(); iter->Next()) {
    if (first) {
      smallest.DecodeFrom(iter->key());
      first = false;
    }
    largest.DecodeFrom(iter->key());
    builder.Add(iter->key(), iter->value());
  }
  if (!iter->status().ok()) {
    builder.Abandon();
    options_.env->RemoveFile(fname);
    unpin();
    return iter->status();
  }
  if (first) {
    // Nothing to write.
    builder.Abandon();
    options_.env->RemoveFile(fname);
    unpin();
    meta->file_number = 0;
    return Status::OK();
  }

  s = builder.Finish();
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    options_.env->RemoveFile(fname);
    unpin();
    return s;
  }

  meta->file_number = file_number;
  meta->file_size = builder.FileSize();
  meta->smallest = smallest;
  meta->largest = largest;
  meta->num_entries = builder.properties().num_entries;
  meta->num_tombstones = builder.properties().num_tombstones;
  meta->creation_time_micros = builder.properties().creation_time_micros;
  meta->oldest_tombstone_time_micros =
      builder.properties().num_tombstones > 0
          ? builder.properties().oldest_tombstone_time_micros
          : 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Flush
// ---------------------------------------------------------------------------

void DB::MaybeScheduleFlush() {
  // mu_ held.
  if (flush_scheduled_ || shutting_down_ || imms_.empty()) {
    return;
  }
  flush_scheduled_ = true;
  pool_->Schedule([this] { BackgroundFlush(); }, ThreadPool::Priority::kHigh);
}

void DB::BackgroundFlush() {
  std::shared_ptr<MemTable> imm;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || imms_.empty()) {
      flush_scheduled_ = false;
      background_cv_.notify_all();
      return;
    }
    imm = imms_.front();
  }

  // Build the L0 run outside the lock (tutorial §2.1.2: flush).
  MemTableIteratorAdapter iter(imm);
  iter.SeekToFirst();
  FileMetaData meta;
  Status s = BuildTableFromIterator(&iter, /*level=*/0,
                                    options_.clock->NowMicros(), &meta);

  std::unique_lock<std::mutex> lock(mu_);
  if (meta.file_number != 0) {
    // Safe to unpin here: RemoveObsoleteFiles also needs mu_, and we hold it
    // continuously until the file is installed in a Version below.
    pending_outputs_.erase(meta.file_number);
  }
  if (s.ok() && meta.file_number != 0) {
    VersionEdit edit;
    edit.AddFile(0, meta);
    // Everything in logs older than the next immutable (or the active log)
    // is now durable in SSTables.
    uint64_t min_log = imm_log_numbers_.size() > 1 ? imm_log_numbers_[1]
                                                   : log_file_number_;
    edit.SetLogNumber(min_log);
    s = versions_->LogAndApply(&edit);
    stats_.flushes.fetch_add(1, std::memory_order_relaxed);
    stats_.flush_bytes_written.fetch_add(meta.file_size,
                                         std::memory_order_relaxed);
  } else if (s.ok()) {
    // Memtable held nothing (possible after DeleteRange on empty DB).
    stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  }

  if (s.ok()) {
    imms_.pop_front();
    uint64_t old_log = imm_log_numbers_.front();
    imm_log_numbers_.pop_front();
    if (options_.enable_wal) {
      options_.env->RemoveFile(LogFileName(dbname_, old_log));
    }
    LSMLAB_LOG_INFO(options_.info_log.get(),
                    "flushed memtable -> L0 file %llu (%llu bytes)",
                    static_cast<unsigned long long>(meta.file_number),
                    static_cast<unsigned long long>(meta.file_size));
  } else {
    background_error_ = s;
  }

  flush_scheduled_ = false;
  if (!imms_.empty()) {
    MaybeScheduleFlush();
  }
  MaybeScheduleCompaction();
  background_cv_.notify_all();
}

Status DB::Flush() {
  // Seal through the writer queue: swapping the active memtable (and WAL
  // handles) must not race a leader's WAL write, which happens outside mu_.
  Status s = SealActiveMemTable();
  if (!s.ok()) {
    return s;
  }
  std::unique_lock<std::mutex> lock(mu_);
  background_cv_.wait(lock, [this] {
    return !background_error_.ok() || imms_.empty();
  });
  return background_error_;
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

void DB::MaybeScheduleCompaction() {
  // mu_ held.
  if (compaction_scheduled_ || shutting_down_) {
    return;
  }
  auto job = picker_->Pick(*versions_->current(), options_.clock->NowMicros());
  if (!job.has_value()) {
    return;
  }
  compaction_scheduled_ = true;
  pool_->Schedule([this] { BackgroundCompaction(); },
                  ThreadPool::Priority::kLow);
}

void DB::BackgroundCompaction() {
  std::optional<CompactionJob> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      compaction_scheduled_ = false;
      background_cv_.notify_all();
      return;
    }
    job = picker_->Pick(*versions_->current(), options_.clock->NowMicros());
    if (!job.has_value()) {
      compaction_scheduled_ = false;
      background_cv_.notify_all();
      return;
    }
  }

  Status s = RunCompaction(*job);

  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok()) {
    background_error_ = s;
  }
  compaction_scheduled_ = false;
  MaybeScheduleCompaction();  // More pressure may remain.
  background_cv_.notify_all();
}

Status DB::RunCompaction(const CompactionJob& job) {
  SequenceNumber oldest_snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    oldest_snapshot = OldestSnapshot();
  }
  LSMLAB_LOG_INFO(options_.info_log.get(), "%s", job.DebugString().c_str());

  // Open input iterators, newest runs first (tie order irrelevant: internal
  // keys are unique, but keep it anyway for clarity).
  std::vector<std::unique_ptr<Iterator>> children;
  uint64_t oldest_tombstone_hint = 0;
  auto add_file = [&](const FileMetaData& f) -> Status {
    std::shared_ptr<TableReader> reader;
    Status s = table_cache_->GetReader(f.file_number, f.file_size, &reader);
    if (!s.ok()) {
      return s;
    }
    ReadOptions read_options;
    read_options.fill_cache = false;  // Compactions must not wipe the cache.
    auto iter = reader->NewIterator(read_options);
    children.push_back(std::make_unique<TableIteratorHolder>(
        std::move(reader), std::move(iter)));
    if (f.oldest_tombstone_time_micros != 0 &&
        (oldest_tombstone_hint == 0 ||
         f.oldest_tombstone_time_micros < oldest_tombstone_hint)) {
      oldest_tombstone_hint = f.oldest_tombstone_time_micros;
    }
    stats_.compaction_bytes_read.fetch_add(f.file_size,
                                           std::memory_order_relaxed);
    return Status::OK();
  };
  for (const auto& f : job.inputs) {
    Status s = add_file(f);
    if (!s.ok()) {
      return s;
    }
  }
  for (const auto& f : job.overlap) {
    Status s = add_file(f);
    if (!s.ok()) {
      return s;
    }
  }
  if (oldest_tombstone_hint == 0) {
    oldest_tombstone_hint = options_.clock->NowMicros();
  }

  auto input =
      NewMergingIterator(&internal_comparator_, std::move(children));
  input->SeekToFirst();

  // A run in a tiered level must stay a single file: files there count as
  // independent runs, so splitting a merge's output would multiply the run
  // count and the level could never get back under its trigger. Only
  // leveled targets partition output into target_file_size files.
  const bool split_outputs = !LevelIsTiered(
      options_.data_layout, job.output_level, options_.num_levels);

  // Merge loop with the LevelDB drop rules plus single-delete annihilation.
  TableBuilderOptions topt = MakeBuilderOptions(job.output_level);
  topt.oldest_tombstone_time_micros = oldest_tombstone_hint;

  std::vector<FileMetaData> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t out_file_number = 0;
  InternalKey out_smallest, out_largest;
  uint64_t rate_limit_pending = 0;

  std::string current_user_key;
  bool has_current_user_key = false;
  // True once a full overwrite (value/tombstone/pointer — NOT a merge
  // operand) with seq <= oldest_snapshot has been seen for the current
  // user key: everything older is invisible to every reader and can drop.
  bool shadowed_below_snapshot = false;

  // Pending single-delete tombstone waiting to annihilate with an older put.
  bool pending_sd = false;
  std::string pending_sd_key;   // Internal key bytes.
  std::string pending_sd_ukey;  // Its user key.

  Status s;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) {
      return Status::OK();
    }
    Status fs = builder->Finish();
    if (fs.ok()) {
      fs = out_file->Sync();
    }
    if (fs.ok()) {
      fs = out_file->Close();
    }
    if (fs.ok()) {
      FileMetaData meta;
      meta.file_number = out_file_number;
      meta.file_size = builder->FileSize();
      meta.smallest = out_smallest;
      meta.largest = out_largest;
      meta.num_entries = builder->properties().num_entries;
      meta.num_tombstones = builder->properties().num_tombstones;
      meta.creation_time_micros = builder->properties().creation_time_micros;
      meta.oldest_tombstone_time_micros =
          meta.num_tombstones > 0 ? oldest_tombstone_hint : 0;
      outputs.push_back(meta);
      stats_.compaction_bytes_written.fetch_add(meta.file_size,
                                                std::memory_order_relaxed);
    }
    builder.reset();
    out_file.reset();
    return fs;
  };

  auto emit = [&](const Slice& internal_key, const Slice& value) -> Status {
    if (builder == nullptr) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        out_file_number = versions_->NewFileNumber();
        // Pin the output until LogAndApply installs it (or cleanup below
        // removes it); see RemoveObsoleteFiles.
        pending_outputs_.insert(out_file_number);
      }
      Status es = options_.env->NewWritableFile(
          TableFileName(dbname_, out_file_number), &out_file);
      if (!es.ok()) {
        return es;
      }
      builder = std::make_unique<TableBuilder>(topt, out_file.get());
      out_smallest.DecodeFrom(internal_key);
    }
    out_largest.DecodeFrom(internal_key);
    builder->Add(internal_key, value);

    // SILK-style bandwidth throttling: charge compaction traffic only.
    rate_limit_pending += internal_key.size() + value.size();
    if (rate_limit_pending >= kRateLimitChunk) {
      compaction_rate_limiter_->Request(rate_limit_pending);
      rate_limit_pending = 0;
    }

    if (split_outputs && builder->FileSize() >= options_.target_file_size) {
      return finish_output();
    }
    return Status::OK();
  };

  auto flush_pending_sd = [&]() -> Status {
    if (!pending_sd) {
      return Status::OK();
    }
    pending_sd = false;
    SequenceNumber sd_seq = ExtractSequence(pending_sd_key);
    if (job.bottommost && sd_seq <= oldest_snapshot) {
      // Nothing below can match it: the tombstone itself can go.
      stats_.tombstones_dropped.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    return emit(pending_sd_key, Slice());
  };

  for (; s.ok() && input->Valid(); input->Next()) {
    Slice internal_key = input->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed)) {
      s = Status::Corruption("malformed key in compaction input");
      break;
    }

    // Single-delete annihilation: the pending SD meets the next entry.
    if (pending_sd) {
      if (options_.comparator->Compare(parsed.user_key, pending_sd_ukey) ==
          0) {
        SequenceNumber sd_seq = ExtractSequence(pending_sd_key);
        if (parsed.type == kTypeValue && parsed.sequence <= oldest_snapshot &&
            sd_seq <= oldest_snapshot) {
          // Annihilate the pair: drop both the SD and the put it deletes.
          pending_sd = false;
          stats_.tombstones_dropped.fetch_add(1, std::memory_order_relaxed);
          stats_.entries_dropped_obsolete.fetch_add(
              1, std::memory_order_relaxed);
          if (parsed.type == kTypeVlogPointer && vlog_ != nullptr) {
            VlogPointer ptr;
            if (ptr.DecodeFrom(input->value())) {
              vlog_->AddGarbage(ptr.file_number, ptr.size);
            }
          }
          // Older versions of this key fall through to the normal rule
          // with the annihilated pair acting as the shadow.
          current_user_key = parsed.user_key.ToString();
          has_current_user_key = true;
          shadowed_below_snapshot = true;
          continue;
        }
        // Not annihilable: emit the SD, then process this entry normally.
        s = flush_pending_sd();
        if (!s.ok()) {
          break;
        }
      } else {
        s = flush_pending_sd();
        if (!s.ok()) {
          break;
        }
      }
    }

    bool drop = false;
    if (!has_current_user_key ||
        options_.comparator->Compare(parsed.user_key,
                                     Slice(current_user_key)) != 0) {
      // First occurrence (newest version) of this user key.
      current_user_key = parsed.user_key.ToString();
      has_current_user_key = true;
      shadowed_below_snapshot = false;
    }

    if (shadowed_below_snapshot) {
      // A newer full overwrite visible to every snapshot shadows this entry
      // (§2.1.1-B: updates/deletes applied lazily, here at merge time).
      drop = true;
      stats_.entries_dropped_obsolete.fetch_add(1, std::memory_order_relaxed);
      if (parsed.type == kTypeVlogPointer && vlog_ != nullptr) {
        VlogPointer ptr;
        if (ptr.DecodeFrom(input->value())) {
          vlog_->AddGarbage(ptr.file_number, ptr.size);
        }
      }
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= oldest_snapshot && job.bottommost) {
      // Tombstone at the bottom: everything it shadows is gone, so the
      // tombstone itself is garbage (§2.1.2: delete persistence).
      drop = true;
      shadowed_below_snapshot = true;
      stats_.tombstones_dropped.fetch_add(1, std::memory_order_relaxed);
    } else if (parsed.type == kTypeSingleDeletion &&
               parsed.sequence <= oldest_snapshot) {
      // Buffer: it annihilates with the first older put of the same key.
      pending_sd = true;
      pending_sd_key.assign(internal_key.data(), internal_key.size());
      pending_sd_ukey = parsed.user_key.ToString();
      shadowed_below_snapshot = true;
      continue;
    } else if (parsed.type != kTypeMerge &&
               parsed.sequence <= oldest_snapshot) {
      // Values, tombstones, and vlog pointers shadow everything older;
      // merge operands do NOT — they depend on the base value below them.
      shadowed_below_snapshot = true;
    }

    if (!drop) {
      s = emit(internal_key, input->value());
    }
  }
  if (s.ok()) {
    s = flush_pending_sd();
  }
  if (s.ok() && !input->status().ok()) {
    s = input->status();
  }
  if (s.ok()) {
    s = finish_output();
  }
  if (rate_limit_pending > 0) {
    compaction_rate_limiter_->Request(rate_limit_pending);
  }

  if (!s.ok()) {
    // Clean up partial outputs.
    if (builder != nullptr) {
      builder->Abandon();
      builder.reset();
      out_file.reset();
      options_.env->RemoveFile(TableFileName(dbname_, out_file_number));
    }
    for (const auto& meta : outputs) {
      options_.env->RemoveFile(TableFileName(dbname_, meta.file_number));
    }
    std::lock_guard<std::mutex> lock(mu_);
    pending_outputs_.erase(out_file_number);
    for (const auto& meta : outputs) {
      pending_outputs_.erase(meta.file_number);
    }
    return s;
  }

  // Install the result.
  VersionEdit edit;
  for (const auto& f : job.inputs) {
    edit.RemoveFile(job.input_level, f.file_number);
  }
  for (const auto& f : job.overlap) {
    edit.RemoveFile(job.output_level, f.file_number);
  }
  for (const auto& meta : outputs) {
    edit.AddFile(job.output_level, meta);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = versions_->LogAndApply(&edit);
    for (const auto& meta : outputs) {
      pending_outputs_.erase(meta.file_number);  // Installed (or doomed).
    }
    if (s.ok()) {
      stats_.compactions.fetch_add(1, std::memory_order_relaxed);
      RemoveObsoleteFiles();
    }
  }

  // Leaper-inspired cache re-warm: immediately reload the hot region that
  // the compaction displaced (tutorial §2.1.3).
  if (s.ok() && options_.cache_rewarm_after_compaction &&
      block_cache_ != nullptr) {
    for (const auto& meta : outputs) {
      std::shared_ptr<TableReader> reader;
      if (table_cache_->GetReader(meta.file_number, meta.file_size, &reader)
              .ok()) {
        reader->WarmCache();
      }
    }
  }
  return s;
}

Status DB::CompactRange() {
  Status s = Flush();
  if (!s.ok()) {
    return s;
  }
  // Drain the automatic backlog first, then force every level down.
  s = WaitForBackgroundWork();
  if (!s.ok()) {
    return s;
  }

  while (true) {
    std::optional<CompactionJob> job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (compaction_scheduled_) {
        continue;  // Racing background task; retry after it finishes.
      }
      const Version& v = *versions_->current();
      for (int level = 0; level < v.num_levels() - 1; ++level) {
        if (v.NumFiles(level) > 0) {
          job = picker_->PickManual(v, level);
          break;
        }
      }
      if (!job.has_value()) {
        // Compact a multi-run last level down to one run (pure tiering).
        int last = v.num_levels() - 1;
        if (v.NumFiles(last) > 1 && v.IsTieredLevel(last)) {
          job = picker_->PickManual(v, last);
        }
      }
      if (!job.has_value()) {
        return Status::OK();
      }
      compaction_scheduled_ = true;  // Block background racers.
    }
    s = RunCompaction(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      compaction_scheduled_ = false;
      background_cv_.notify_all();
    }
    if (!s.ok()) {
      return s;
    }
  }
}

Status DB::WaitForBackgroundWork() {
  std::unique_lock<std::mutex> lock(mu_);
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  background_cv_.wait(lock, [this] {
    if (!background_error_.ok()) {
      return true;
    }
    if (flush_scheduled_ || compaction_scheduled_ || !imms_.empty()) {
      return false;
    }
    // No pending work and nothing the picker would start.
    return !picker_->Pick(*versions_->current(),
                          options_.clock->NowMicros())
                .has_value();
  });
  return background_error_;
}

void DB::RemoveObsoleteFiles() {
  // mu_ held.
  std::set<uint64_t> live;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> children;
  if (!options_.env->GetChildren(dbname_, &children).ok()) {
    return;
  }
  uint64_t min_log = imm_log_numbers_.empty() ? log_file_number_
                                              : imm_log_numbers_.front();
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) {
      continue;
    }
    bool keep = true;
    switch (type) {
      case FileType::kTableFile:
        // Live in some still-referenced Version, or an in-flight
        // flush/compaction output not yet installed in any Version.
        keep = live.count(number) > 0 || pending_outputs_.count(number) > 0;
        break;
      case FileType::kLogFile:
        keep = number >= min_log;
        break;
      case FileType::kManifestFile:
        keep = number >= versions_->manifest_file_number();
        break;
      case FileType::kTempFile:
        keep = false;
        break;
      case FileType::kVlogFile:   // Managed by vlog GC.
      case FileType::kCurrentFile:
      case FileType::kUnknown:
        keep = true;
        break;
    }
    if (!keep) {
      if (type == FileType::kTableFile) {
        table_cache_->Evict(number);
      }
      options_.env->RemoveFile(dbname_ + "/" + child);
    }
  }
}

// ---------------------------------------------------------------------------
// WiscKey value-log GC
// ---------------------------------------------------------------------------

Status DB::GarbageCollectVlog() {
  if (vlog_ == nullptr) {
    return Status::OK();
  }
  // Roll to a fresh active log so old logs become immutable, then rewrite
  // every live value from the old logs and drop the old files. Liveness is
  // checked by comparing each record's pointer against the key's current
  // pointer in the LSM.
  std::vector<uint64_t> old_logs;
  {
    std::vector<std::string> children;
    Status s = options_.env->GetChildren(dbname_, &children);
    if (!s.ok()) {
      return s;
    }
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kVlogFile) {
        old_logs.push_back(number);
      }
    }
  }
  uint64_t new_log;
  {
    std::lock_guard<std::mutex> lock(mu_);
    new_log = versions_->NewFileNumber();
  }
  Status s = vlog_->OpenActive(new_log);
  if (!s.ok()) {
    return s;
  }

  for (uint64_t log : old_logs) {
    if (log == new_log) {
      continue;
    }
    s = vlog_->ForEachRecord(
        log, [&](const Slice& key, const Slice& value, const VlogPointer& ptr) {
          // Live iff the LSM still points at exactly this record.
          std::string current;
          Status gs = GetRawPointer(ReadOptions(), key, &current);
          if (!gs.ok()) {
            return true;  // Deleted or overwritten inline: dead record.
          }
          VlogPointer current_ptr;
          if (!current_ptr.DecodeFrom(current) ||
              current_ptr.file_number != ptr.file_number ||
              current_ptr.offset != ptr.offset) {
            return true;  // Superseded: dead record.
          }
          // Live: relocate by re-putting through the normal write path.
          WriteOptions wo;
          Put(wo, key, value);
          return true;
        });
    if (!s.ok()) {
      return s;
    }
    s = vlog_->DeleteLog(log);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status DB::GetRawPointer(const ReadOptions& options, const Slice& key,
                         std::string* raw) {
  std::shared_ptr<MemTable> mem;
  std::vector<std::shared_ptr<MemTable>> imms;
  std::shared_ptr<const Version> version;
  SequenceNumber snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mem = mem_;
    imms.assign(imms_.begin(), imms_.end());
    version = versions_->current();
    snapshot = versions_->last_sequence();
  }
  LookupKey lkey(key, snapshot);
  ValueType type;
  if (mem->Get(lkey, raw, &type)) {
    return type == kTypeVlogPointer ? Status::OK()
                                    : Status::NotFound("not separated");
  }
  for (auto it = imms.rbegin(); it != imms.rend(); ++it) {
    if ((*it)->Get(lkey, raw, &type)) {
      return type == kTypeVlogPointer ? Status::OK()
                                      : Status::NotFound("not separated");
    }
  }
  for (int level = 0; level < version->num_levels(); ++level) {
    for (const FileMetaData* f : version->FilesContaining(level, key)) {
      std::shared_ptr<TableReader> reader;
      Status s =
          table_cache_->GetReader(f->file_number, f->file_size, &reader);
      if (!s.ok()) {
        return s;
      }
      if (reader->KeyDefinitelyAbsent(key)) {
        continue;
      }
      bool found;
      std::string entry_key;
      s = reader->InternalGet(options, lkey.internal_key(), &found,
                              &entry_key, raw);
      if (!s.ok()) {
        return s;
      }
      if (found) {
        return ExtractValueType(entry_key) == kTypeVlogPointer
                   ? Status::OK()
                   : Status::NotFound("not separated");
      }
    }
  }
  return Status::NotFound("key not found");
}

}  // namespace lsmlab
