#include "db/dbformat.h"

#include <cstring>

namespace lsmlab {

void AppendInternalKey(std::string* result, const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  if (internal_key.size() < 8) {
    return false;
  }
  uint64_t trailer = ExtractTrailer(internal_key);
  uint8_t type = static_cast<uint8_t>(trailer & 0xff);
  if (type > kTypeMerge) {
    return false;
  }
  result->user_key = ExtractUserKey(internal_key);
  result->sequence = trailer >> 8;
  result->type = static_cast<ValueType>(type);
  return true;
}

int InternalKeyComparator::Compare(const Slice& a, const Slice& b) const {
  int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
  if (r == 0) {
    const uint64_t at = ExtractTrailer(a);
    const uint64_t bt = ExtractTrailer(b);
    if (at > bt) {
      r = -1;  // Higher sequence sorts first (newest first).
    } else if (at < bt) {
      r = +1;
    }
  }
  return r;
}

void InternalKeyComparator::FindShortestSeparator(std::string* start,
                                                  const Slice& limit) const {
  // Shorten the user-key part; if it got shorter, append a max trailer so the
  // result still sorts >= all internal keys with the original user key.
  Slice user_start = ExtractUserKey(*start);
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());
  user_comparator_->FindShortestSeparator(&tmp, user_limit);
  if (tmp.size() < user_start.size() &&
      user_comparator_->Compare(user_start, tmp) < 0) {
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber,
                                         kValueTypeForSeek));
    *start = tmp;
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(*key);
  std::string tmp(user_key.data(), user_key.size());
  user_comparator_->FindShortSuccessor(&tmp);
  if (tmp.size() < user_key.size() &&
      user_comparator_->Compare(user_key, tmp) < 0) {
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber,
                                         kValueTypeForSeek));
    *key = tmp;
  }
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber sequence) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // Conservative varint + trailer estimate.
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  // varint32 of internal key length.
  uint32_t internal_len = static_cast<uint32_t>(usize + 8);
  while (internal_len >= 128) {
    *dst++ = static_cast<char>(internal_len | 128);
    internal_len >>= 7;
  }
  *dst++ = static_cast<char>(internal_len);
  kstart_ = dst;
  std::memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(sequence, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

LookupKey::~LookupKey() {
  if (start_ != space_) {
    delete[] start_;
  }
}

}  // namespace lsmlab
