#ifndef LSMLAB_DB_DBFORMAT_H_
#define LSMLAB_DB_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/comparator.h"
#include "util/slice.h"

namespace lsmlab {

/// Monotonic write timestamp; establishes the LSM invariant that newer
/// entries shadow older ones (tutorial §2.1.1-E).
using SequenceNumber = uint64_t;

// Leave room for the 8-bit type tag packed next to the sequence number.
constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

/// The kind of a logical entry. Deletes are realized as tombstones
/// (tutorial §2.1.2): a special entry that logically invalidates older
/// versions until compaction garbage-collects both.
enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
  /// Single-delete tombstone: may be dropped as soon as it meets the first
  /// matching put (RocksDB SingleDelete; valid only for non-updated keys).
  kTypeSingleDeletion = 0x2,
  /// Value is a pointer into the value log (WiscKey key-value separation).
  kTypeVlogPointer = 0x3,
  /// A merge operand (read-modify-write, tutorial §2.2.6): combined with
  /// the newest base value through Options::merge_operator at read time.
  kTypeMerge = 0x4,
};

/// When seeking, we want all entries with seq <= snapshot; kValueTypeForSeek
/// must be the highest type tag so the packed trailer sorts first.
constexpr ValueType kValueTypeForSeek = kTypeMerge;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

/// An internal key is user_key + 8-byte packed (sequence, type) trailer.
/// Internal keys sort by user key ascending, then sequence descending, so a
/// forward scan meets the newest version of each user key first.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTrailer(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTrailer(internal_key) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractTrailer(internal_key) & 0xff);
}

void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

/// Returns false if `internal_key` is malformed (too short or bad type tag).
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

/// Orders internal keys: user key ascending (per user comparator), then
/// sequence number descending, then type descending.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const override;
  const char* Name() const override {
    return "lsmlab.InternalKeyComparator";
  }
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* const user_comparator_;
};

/// An owned internal key, convenient for file metadata boundaries.
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  Slice Encode() const { return Slice(rep_); }
  Slice user_key() const { return ExtractUserKey(rep_); }
  bool empty() const { return rep_.empty(); }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

/// LookupKey bundles the three key forms a point lookup needs: the memtable
/// entry prefix, the internal key, and the user key.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  /// varint32(internal_key_len) + user_key + trailer: the memtable format.
  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  /// user_key + trailer.
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoids allocation for short keys.
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_DBFORMAT_H_
