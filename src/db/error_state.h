#ifndef LSMLAB_DB_ERROR_STATE_H_
#define LSMLAB_DB_ERROR_STATE_H_

#include <cstdint>

#include "util/status.h"

namespace lsmlab {

/// How bad a background error is (DESIGN.md, "Failure model & recovery").
enum class ErrorSeverity {
  kNone,
  /// Retryable: the failed work left no partially-published state (a flush
  /// or compaction whose output never reached the manifest). The DB retries
  /// it automatically with capped exponential backoff.
  kSoft,
  /// Not retryable in place: the failure may have left ambiguous on-disk
  /// state (a torn manifest record, a WAL whose write offset is unknown
  /// after a failed append/fsync). The DB enters read-only mode until
  /// DB::Resume() re-establishes a clean write point.
  kHard,
};

/// Which subsystem produced the error.
enum class ErrorSource {
  kNone,
  kFlush,
  kCompaction,
  kWal,
  kManifest,
  /// A write group was partially applied to the memtable; unrecoverable
  /// without reopening (flushing the memtable would persist unacked writes).
  kMemtable,
};

inline const char* ErrorSeverityName(ErrorSeverity severity) {
  switch (severity) {
    case ErrorSeverity::kNone:
      return "none";
    case ErrorSeverity::kSoft:
      return "soft";
    case ErrorSeverity::kHard:
      return "hard";
  }
  return "unknown";
}

inline const char* ErrorSourceName(ErrorSource source) {
  switch (source) {
    case ErrorSource::kNone:
      return "none";
    case ErrorSource::kFlush:
      return "flush";
    case ErrorSource::kCompaction:
      return "compaction";
    case ErrorSource::kWal:
      return "wal";
    case ErrorSource::kManifest:
      return "manifest";
    case ErrorSource::kMemtable:
      return "memtable";
  }
  return "unknown";
}

/// The DB's background-error condition: the current (possibly cleared)
/// error plus permanent provenance of the *first* error ever recorded, so
/// a cascade of follow-on failures cannot mask the root cause (the old bare
/// `background_error_` returned whichever failure happened to be last).
/// Guarded by the DB mutex; this struct itself is just plain data.
struct ErrorState {
  Status status;  // OK iff severity == kNone.
  ErrorSeverity severity = ErrorSeverity::kNone;
  ErrorSource source = ErrorSource::kNone;

  /// First error ever recorded. Set once, survives ClearCurrent()/Resume().
  Status first_status;
  ErrorSource first_source = ErrorSource::kNone;
  uint64_t first_error_micros = 0;

  bool ok() const { return severity == ErrorSeverity::kNone; }
  bool hard() const { return severity == ErrorSeverity::kHard; }

  /// Records an error. Severity never downgrades: a soft report cannot
  /// overwrite an outstanding hard error.
  void Record(const Status& s, ErrorSeverity sev, ErrorSource src,
              uint64_t now_micros) {
    if (first_source == ErrorSource::kNone) {
      first_status = s;
      first_source = src;
      first_error_micros = now_micros;
    }
    if (hard() && sev != ErrorSeverity::kHard) {
      return;
    }
    status = s;
    severity = sev;
    source = src;
  }

  /// Clears the current error (retry succeeded, or Resume() repaired the
  /// write point). First-error provenance is preserved.
  void ClearCurrent() {
    status = Status::OK();
    severity = ErrorSeverity::kNone;
    source = ErrorSource::kNone;
  }
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_ERROR_STATE_H_
