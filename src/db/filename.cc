#include "db/filename.h"

#include <cstdio>
#include <cstdlib>

namespace lsmlab {

namespace {
std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}
}  // namespace

std::string LogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string VlogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "vlog");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "tmp");
}

std::string CommitLogFileName(const std::string& dbname) {
  return dbname + "/COMMITLOG";
}

std::string ShardsFileName(const std::string& dbname) {
  return dbname + "/SHARDS";
}

std::string CheckpointMarkerFileName(const std::string& dir) {
  return dir + "/CHECKPOINT";
}

std::string CheckpointInProgressFileName(const std::string& dir) {
  return dir + "/CHECKPOINT.inprogress";
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  if (filename == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (filename == "COMMITLOG") {
    *number = 0;
    *type = FileType::kCommitLogFile;
    return true;
  }
  if (filename == "SHARDS") {
    *number = 0;
    *type = FileType::kShardsFile;
    return true;
  }
  if (filename.rfind("MANIFEST-", 0) == 0) {
    char* end;
    unsigned long long num = strtoull(filename.c_str() + 9, &end, 10);
    if (*end != '\0') {
      return false;
    }
    *number = num;
    *type = FileType::kManifestFile;
    return true;
  }
  char* end;
  unsigned long long num = strtoull(filename.c_str(), &end, 10);
  if (end == filename.c_str()) {
    return false;
  }
  std::string suffix(end);
  *number = num;
  if (suffix == ".log") {
    *type = FileType::kLogFile;
  } else if (suffix == ".sst") {
    *type = FileType::kTableFile;
  } else if (suffix == ".vlog") {
    *type = FileType::kVlogFile;
  } else if (suffix == ".tmp") {
    *type = FileType::kTempFile;
  } else {
    *type = FileType::kUnknown;
    return false;
  }
  return true;
}

}  // namespace lsmlab
