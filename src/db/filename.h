#ifndef LSMLAB_DB_FILENAME_H_
#define LSMLAB_DB_FILENAME_H_

#include <cstdint>
#include <string>

namespace lsmlab {

/// The kinds of files living in a DB directory.
enum class FileType {
  kLogFile,        // <number>.log  : write-ahead log
  kTableFile,      // <number>.sst  : sorted run
  kVlogFile,       // <number>.vlog : WiscKey value log
  kManifestFile,   // MANIFEST-<number>
  kCurrentFile,    // CURRENT
  kTempFile,       // <number>.tmp
  kCommitLogFile,  // COMMITLOG : sharded facade's cross-shard commit log
  kShardsFile,     // SHARDS    : sharded facade's topology file
  kUnknown,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string VlogFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);
/// Cross-shard commit log, living in the facade root (not in a shard dir).
std::string CommitLogFileName(const std::string& dbname);
/// Shard-topology descriptor, living in the facade root.
std::string ShardsFileName(const std::string& dbname);

/// Checkpoint completion record, living in a checkpoint directory's root.
/// Written (and synced) only after every shard's files and manifest are in
/// place; its absence marks the directory as partial and unrestorable.
/// Deliberately NOT recognized by ParseFileName: obsolete-file GC keeps
/// unparseable names, so the marker survives even if a checkpoint is opened
/// in place as a live DB.
std::string CheckpointMarkerFileName(const std::string& dir);
/// Sentinel created first during Checkpoint and removed last: a directory
/// still holding it was abandoned mid-checkpoint and must be rejected.
std::string CheckpointInProgressFileName(const std::string& dir);

/// Parses a directory entry. Returns false for unrecognized names.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

}  // namespace lsmlab

#endif  // LSMLAB_DB_FILENAME_H_
