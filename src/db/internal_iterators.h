#ifndef LSMLAB_DB_INTERNAL_ITERATORS_H_
#define LSMLAB_DB_INTERNAL_ITERATORS_H_

#include <memory>

#include "memtable/memtable.h"
#include "table/iterator.h"
#include "table/table_reader.h"

namespace lsmlab {

/// Adapts MemTable::Iterator to the common Iterator interface, sharing
/// ownership of the memtable so flushed memtables stay alive under readers.
class MemTableIteratorAdapter final : public Iterator {
 public:
  explicit MemTableIteratorAdapter(std::shared_ptr<MemTable> mem)
      : mem_(std::move(mem)), iter_(mem_->NewIterator()) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return Status::OK(); }

 private:
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<MemTable::Iterator> iter_;
};

/// Wraps a TableReader iterator together with the shared reader, so tables
/// evicted mid-scan (their file deleted by compaction) stay readable until
/// the scan drains.
class TableIteratorHolder final : public Iterator {
 public:
  TableIteratorHolder(std::shared_ptr<TableReader> reader,
                      std::unique_ptr<Iterator> iter)
      : reader_(std::move(reader)), iter_(std::move(iter)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<TableReader> reader_;
  std::unique_ptr<Iterator> iter_;
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_INTERNAL_ITERATORS_H_
