#include "db/merge_operator.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace lsmlab {

namespace {

class Int64AddOperator final : public MergeOperator {
 public:
  const char* Name() const override { return "lsmlab.Int64Add"; }

  bool Merge(const Slice& /*key*/, const Slice* base_value,
             const std::vector<Slice>& operands,
             std::string* result) const override {
    int64_t total = 0;
    if (base_value != nullptr && !ParseInt(*base_value, &total)) {
      return false;
    }
    for (const Slice& op : operands) {
      int64_t delta;
      if (!ParseInt(op, &delta)) {
        return false;
      }
      total += delta;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(total));
    result->assign(buf);
    return true;
  }

 private:
  static bool ParseInt(const Slice& s, int64_t* value) {
    if (s.empty() || s.size() > 20) {
      return false;
    }
    std::string str = s.ToString();
    char* end = nullptr;
    *value = std::strtoll(str.c_str(), &end, 10);
    return end == str.c_str() + str.size();
  }
};

class StringAppendOperator final : public MergeOperator {
 public:
  explicit StringAppendOperator(char delimiter) : delimiter_(delimiter) {}

  const char* Name() const override { return "lsmlab.StringAppend"; }

  bool Merge(const Slice& /*key*/, const Slice* base_value,
             const std::vector<Slice>& operands,
             std::string* result) const override {
    result->clear();
    if (base_value != nullptr) {
      result->assign(base_value->data(), base_value->size());
    }
    for (const Slice& op : operands) {
      if (!result->empty()) {
        result->push_back(delimiter_);
      }
      result->append(op.data(), op.size());
    }
    return true;
  }

 private:
  const char delimiter_;
};

}  // namespace

std::shared_ptr<const MergeOperator> NewInt64AddOperator() {
  return std::make_shared<Int64AddOperator>();
}

std::shared_ptr<const MergeOperator> NewStringAppendOperator(char delimiter) {
  return std::make_shared<StringAppendOperator>(delimiter);
}

}  // namespace lsmlab
