#ifndef LSMLAB_DB_MERGE_OPERATOR_H_
#define LSMLAB_DB_MERGE_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"

namespace lsmlab {

/// MergeOperator gives the engine read-modify-write semantics without a
/// read-modify-write on the write path (tutorial §2.2.6): DB::Merge buffers
/// an *operand*; reads (and bottommost compactions) combine the newest base
/// value with all younger operands through this operator.
class MergeOperator {
 public:
  virtual ~MergeOperator() = default;

  /// Name persisted conceptually with the DB; mixing operators across runs
  /// of the same database is a caller bug.
  virtual const char* Name() const = 0;

  /// Combines `base_value` (nullptr if the key had no base value) with
  /// `operands`, ordered oldest first. Returns false on irrecoverable
  /// operand corruption, which surfaces as Status::Corruption to readers.
  virtual bool Merge(const Slice& key, const Slice* base_value,
                     const std::vector<Slice>& operands,
                     std::string* result) const = 0;
};

/// Interprets base and operands as decimal int64 strings and sums them —
/// the classic counter use case.
std::shared_ptr<const MergeOperator> NewInt64AddOperator();

/// Appends operands to the base value with `delimiter` between pieces.
std::shared_ptr<const MergeOperator> NewStringAppendOperator(char delimiter);

}  // namespace lsmlab

#endif  // LSMLAB_DB_MERGE_OPERATOR_H_
