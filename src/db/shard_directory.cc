#include "db/shard_directory.h"

#include "db/filename.h"
#include "util/coding.h"

namespace lsmlab {

namespace {
/// Sanity bound for LoadTopology; far above any reasonable shard count and
/// small enough to reject garbage bytes quickly.
constexpr uint32_t kMaxShards = 1u << 16;
}  // namespace

std::string ShardDirectory::ShardDirName(const std::string& dbname, int k) {
  return dbname + "/shard-" + std::to_string(k);
}

Status ShardDirectory::SaveTopology(
    Env* env, const std::string& dbname, int num_shards,
    const std::vector<std::string>& split_keys) {
  if (num_shards < 1 ||
      split_keys.size() != static_cast<size_t>(num_shards) - 1) {
    return Status::InvalidArgument("bad shard topology");
  }
  std::string rep;
  PutFixed32(&rep, static_cast<uint32_t>(num_shards));
  for (const auto& key : split_keys) {
    PutFixed32(&rep, static_cast<uint32_t>(key.size()));
    rep.append(key);
  }
  return WriteStringToFile(env, rep, ShardsFileName(dbname));
}

Status ShardDirectory::LoadTopology(Env* env, const std::string& dbname,
                                    int* num_shards,
                                    std::vector<std::string>* split_keys) {
  std::string rep;
  Status s = ReadFileToString(env, ShardsFileName(dbname), &rep);
  if (!s.ok()) {
    return s;
  }
  if (rep.size() < 4) {
    return Status::Corruption("SHARDS file truncated");
  }
  uint32_t n = DecodeFixed32(rep.data());
  if (n < 1 || n > kMaxShards) {
    return Status::Corruption("SHARDS file has implausible shard count");
  }
  size_t pos = 4;
  std::vector<std::string> keys;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    if (pos + 4 > rep.size()) {
      return Status::Corruption("SHARDS file truncated");
    }
    uint32_t len = DecodeFixed32(rep.data() + pos);
    pos += 4;
    if (pos + len > rep.size()) {
      return Status::Corruption("SHARDS file truncated");
    }
    keys.emplace_back(rep.data() + pos, len);
    pos += len;
  }
  if (pos != rep.size()) {
    return Status::Corruption("SHARDS file has trailing garbage");
  }
  *num_shards = static_cast<int>(n);
  *split_keys = std::move(keys);
  return Status::OK();
}

std::vector<std::string> ShardDirectory::ListShardDirs(
    Env* env, const std::string& dbname) {
  std::vector<std::string> dirs;
  int num_shards = 0;
  std::vector<std::string> split_keys;
  if (LoadTopology(env, dbname, &num_shards, &split_keys).ok() &&
      num_shards > 1) {
    for (int k = 0; k < num_shards; ++k) {
      dirs.push_back(ShardDirName(dbname, k));
    }
    return dirs;
  }
  // No (readable) topology: probe. Covers a crash between shard-dir
  // creation and SaveTopology, and MemEnv-style filesystems whose
  // GetChildren does not list subdirectories.
  for (int k = 0;; ++k) {
    std::string dir = ShardDirName(dbname, k);
    std::string current = CurrentFileName(dir);
    if (!env->FileExists(current) && !env->FileExists(dir)) {
      break;
    }
    dirs.push_back(dir);
  }
  return dirs;
}

}  // namespace lsmlab
