#ifndef LSMLAB_DB_SHARD_DIRECTORY_H_
#define LSMLAB_DB_SHARD_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/env.h"
#include "util/status.h"

namespace lsmlab {

/// On-disk layout helpers for a range-sharded DB.
///
/// With num_shards == 1 the facade keeps the historical flat layout: the
/// single engine lives directly in `<db>/` and no topology file exists.
/// With num_shards > 1 each engine lives in `<db>/shard-<k>/` and the
/// topology (shard count plus the sorted interior split keys) is persisted
/// in `<db>/SHARDS` so reopen and DestroyDB agree with the original
/// creation even when Options differ.
class ShardDirectory {
 public:
  /// Directory of shard `k` under `dbname` (used when num_shards > 1).
  static std::string ShardDirName(const std::string& dbname, int k);

  /// Persists the topology to `<db>/SHARDS` (fsynced before returning).
  /// `split_keys` must hold exactly num_shards - 1 entries.
  static Status SaveTopology(Env* env, const std::string& dbname,
                             int num_shards,
                             const std::vector<std::string>& split_keys);

  /// Loads `<db>/SHARDS`. Returns NotFound when no topology file exists
  /// (flat single-shard layout) and Corruption when the file is malformed.
  static Status LoadTopology(Env* env, const std::string& dbname,
                             int* num_shards,
                             std::vector<std::string>* split_keys);

  /// Shard directories of `dbname`, for cleanup paths. Prefers the SHARDS
  /// topology; without one, probes `shard-<k>` upward from zero (covers a
  /// crash between CreateDir and SaveTopology). Empty result means the flat
  /// layout.
  static std::vector<std::string> ListShardDirs(Env* env,
                                                const std::string& dbname);
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_SHARD_DIRECTORY_H_
