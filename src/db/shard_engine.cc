#include "db/shard_engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "db/filename.h"
#include "db/internal_iterators.h"
#include "db/merge_operator.h"
#include "io/wal_reader.h"
#include "table/merging_iterator.h"
#include "table/table_builder.h"
#include "tuning/monkey.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/logging.h"

namespace lsmlab {

namespace {

/// Fills unset substrate pointers with the defaults.
Options NormalizeOptions(const Options& options) {
  Options result = options;
  if (result.env == nullptr) {
    result.env = Env::Default();
  }
  if (result.clock == nullptr) {
    result.clock = SystemClock();
  }
  if (result.comparator == nullptr) {
    result.comparator = BytewiseComparator();
  }
  return result;
}

/// Cross-shard 2PC record tags, stored in byte 7 of the record's leading
/// fixed64. Normal WAL records start with a sequence number whose byte 7 is
/// always zero (kMaxSequenceNumber = 2^56 - 1), so tagged records are
/// unambiguous.
constexpr uint8_t kPrepareRecordTag = 0x50;  // 'P'
constexpr uint8_t kCommitMarkerTag = 0x43;   // 'C'
constexpr uint64_t kTwoPhaseIdMask = (1ull << 56) - 1;

/// Applies one WriteBatch into a memtable at consecutive sequence numbers.
/// Shared by WAL replay, group commit, and cross-shard commit.
class BatchInserter : public WriteBatch::Handler {
 public:
  BatchInserter(MemTable* mem, SequenceNumber seq) : mem_(mem), seq_(seq) {}
  void TypedRecord(ValueType type, const Slice& key,
                   const Slice& value) override {
    mem_->Add(seq_++, type, key, value);
  }
  void Put(const Slice&, const Slice&) override {}
  void Delete(const Slice&) override {}
  void SingleDelete(const Slice&) override {}
  void Merge(const Slice&, const Slice&) override {}
  SequenceNumber last_sequence() const { return seq_ - 1; }

 private:
  MemTable* const mem_;
  SequenceNumber seq_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Open / initialize / recover
// ---------------------------------------------------------------------------

ShardEngine::ShardEngine(const Options& options, std::string dbname,
                         const ShardResources& resources)
    : options_(NormalizeOptions(options)),
      dbname_(std::move(dbname)),
      internal_comparator_(options_.comparator),
      stats_(resources.stats),
      block_cache_(resources.block_cache),
      table_cache_(resources.table_cache),
      pool_(resources.pool),
      compaction_rate_limiter_(resources.rate_limiter) {}

ShardEngine::~ShardEngine() {
  BeginShutdown();
  // The pool is shared and facade-owned: drain it (queued tasks hold
  // `this`) but do not destroy it.
  pool_->WaitForIdle();
}

void ShardEngine::BeginShutdown() {
  MutexLock lock(&mu_);
  shutting_down_ = true;
  background_cv_.SignalAll();
}

Status ShardEngine::Open(const Options& options, const std::string& name,
                         const ShardResources& resources,
                         const std::set<uint64_t>* committed_prepares,
                         std::unique_ptr<ShardEngine>* dbptr) {
  // Options were validated by the facade.
  dbptr->reset();
  auto db =
      std::unique_ptr<ShardEngine>(new ShardEngine(options, name, resources));
  Status s = db->Initialize(committed_prepares);
  if (!s.ok()) {
    return s;
  }
  *dbptr = std::move(db);
  return Status::OK();
}

Status ShardEngine::Initialize(const std::set<uint64_t>* committed_prepares) {
  Env* env = options_.env;
  Status s = env->CreateDir(dbname_);
  if (!s.ok()) {
    return s;
  }

  cache_dir_id_ = table_cache_->RegisterDir(dbname_);
  versions_ = std::make_unique<VersionSet>(dbname_, &options_,
                                           &internal_comparator_);
  picker_ = std::make_unique<CompactionPicker>(&options_);

  if (options_.filter_allocation == FilterAllocation::kMonkey) {
    monkey_bits_ = MonkeyBitsPerLevel(options_.filter_bits_per_key,
                                      options_.num_levels,
                                      options_.size_ratio);
  } else {
    monkey_bits_.assign(static_cast<size_t>(options_.num_levels),
                        options_.filter_bits_per_key);
  }

  bool exists = env->FileExists(CurrentFileName(dbname_));
  if (!exists) {
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }
    s = versions_->CreateNew();
    if (!s.ok()) {
      return s;
    }
  } else {
    if (options_.error_if_exists) {
      return Status::InvalidArgument(dbname_, "exists");
    }
    s = versions_->Recover();
    if (!s.ok()) {
      return s;
    }
  }

  if (options_.kv_separation) {
    vlog_ = std::make_unique<VlogManager>(dbname_, env);
    s = vlog_->OpenActive(versions_->NewFileNumber());
    if (!s.ok()) {
      return s;
    }
  }

  s = Recover(committed_prepares);
  if (!s.ok()) {
    return s;
  }

  MutexLock lock(&mu_);
  RemoveObsoleteFiles();
  MaybeScheduleCompaction();
  return Status::OK();
}

std::unique_ptr<MemTable> ShardEngine::MakeMemTable() const {
  return std::make_unique<MemTable>(&internal_comparator_,
                                    options_.memtable_rep,
                                    options_.memtable_hash_bucket_count);
}

Status ShardEngine::Recover(const std::set<uint64_t>* committed_prepares) {
  // Replay all WAL files at or after the manifest's log number, in order.
  std::vector<std::string> children;
  Status s = options_.env->GetChildren(dbname_, &children);
  if (!s.ok()) {
    return s;
  }
  // Collect every WAL still on disk. Logs at or above the manifest's log
  // number hold unflushed data and are replayed in full; older logs exist
  // only because a cross-shard prepare keeps them retained (the deletion
  // gates clamp below the manifest watermark) — their normal records are
  // already flushed, so they are scanned for tagged records only.
  std::vector<uint64_t> logs;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == FileType::kLogFile) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  SequenceNumber max_sequence = versions_->last_sequence();
  VersionEdit edit;
  // Cross-shard prepare payloads (id -> batch rep) seen but not yet applied
  // by a commit marker; carried across log files (a prepare's marker may
  // land in a later log after a rotation).
  std::map<uint64_t, std::string> prepare_stash;
  for (size_t i = 0; i < logs.size(); ++i) {
    uint64_t log_number = logs[i];
    versions_->MarkFileNumberUsed(log_number);
    bool stop_replay = false;
    s = RecoverLogFile(log_number, log_number < versions_->log_number(),
                       &max_sequence, &edit, &stop_replay, &prepare_stash);
    if (!s.ok()) {
      return s;
    }
    if (stop_replay) {
      // Point-in-time recovery: a corrupt record truncated this log's
      // replay; anything in later logs is past the corruption point and
      // must be dropped to keep the recovered state a write-order prefix.
      LSMLAB_LOG_WARN(options_.info_log.get(),
                      "point-in-time recovery stopped at log %llu; "
                      "dropping %zu later log(s)",
                      static_cast<unsigned long long>(log_number),
                      logs.size() - i - 1);
      // The skipped logs must not survive this recovery: RemoveObsoleteFiles
      // only deletes logs below min_log, so an undeleted skipped log with a
      // number above the new active WAL would be replayed on the next open,
      // resurrecting the dropped writes out of order. Mark their numbers
      // used (so the new WAL and manifest log_number land above them — even
      // a failed delete is then ignored by the next Recover()) and delete
      // them before the new WAL is created.
      for (size_t j = i + 1; j < logs.size(); ++j) {
        versions_->MarkFileNumberUsed(logs[j]);
        // A failed delete is safe: the number is marked used above.
        (void)options_.env->RemoveFile(LogFileName(dbname_, logs[j]));
      }
      break;
    }
  }

  // Resolve leftover prepares. An id the facade's commit log proves
  // committed lost its marker in the crash (markers are unsynced); apply
  // its payload now, in id order, with fresh sequences — a lost marker
  // implies nothing later survived in this shard's WAL (prepares and seal
  // syncs persist the whole file prefix; a torn tail only claims the
  // unsynced suffix), so appending at the end preserves write order. This
  // runs even after a point-in-time stop: the facade's durable commit
  // record outranks the torn region. Uncommitted or aborted prepares are
  // simply dropped.
  if (!prepare_stash.empty() && committed_prepares != nullptr) {
    std::unique_ptr<MemTable> mem;
    for (const auto& [id, rep] : prepare_stash) {
      if (committed_prepares->count(id) == 0) {
        continue;
      }
      WriteBatch batch;
      s = batch.SetRep(rep);
      if (!s.ok()) {
        return s;
      }
      if (batch.Count() == 0) {
        continue;
      }
      if (mem == nullptr) {
        mem = MakeMemTable();
      }
      BatchInserter inserter(mem.get(), max_sequence + 1);
      s = batch.Iterate(&inserter);
      if (!s.ok()) {
        return s;
      }
      max_sequence = inserter.last_sequence();
    }
    if (mem != nullptr && !mem->Empty()) {
      MemTableIteratorAdapter iter(std::shared_ptr<MemTable>(std::move(mem)));
      iter.SeekToFirst();
      FileMetaData meta;
      s = BuildTableFromIterator(&iter, 0, options_.clock->NowMicros(), &meta);
      if (!s.ok()) {
        return s;
      }
      edit.AddFile(0, meta);
    }
  }

  versions_->SetLastSequence(max_sequence);

  // Start a fresh memtable + log; everything replayed is now either in L0
  // tables (via the edit) or re-bufferable. Recovery is single-threaded,
  // but the memtable/log fields are guarded, so take mu_ anyway.
  MutexLock lock(&mu_);
  s = NewMemTableAndLog();
  if (!s.ok()) {
    return s;
  }
  edit.SetLogNumber(log_file_number_);
  s = versions_->LogAndApply(&edit);
  // Replay tables are installed (or recovery failed); drop their pins so
  // RemoveObsoleteFiles sees a clean slate.
  pending_outputs_.clear();
  if (s.ok()) {
    // First view of this DB's lifetime; every later publish replaces it.
    PublishReadView();
  }
  return s;
}

Status ShardEngine::RecoverLogFile(uint64_t log_number, bool tagged_only,
                          SequenceNumber* max_sequence,
                          VersionEdit* edit, bool* stop_replay,
                          std::map<uint64_t, std::string>* prepare_stash) {
  *stop_replay = false;
  std::unique_ptr<SequentialFile> file;
  Status s = options_.env->NewSequentialFile(LogFileName(dbname_, log_number),
                                             &file);
  if (!s.ok()) {
    return s;
  }

  // Captures the first corruption the record reader reports. A cleanly
  // truncated tail reads as EOF and is never reported — both recovery
  // modes tolerate it (the WAL contract: an unacknowledged tail write may
  // be lost). A checksum/length corruption IS reported, and the mode
  // decides: absolute consistency refuses to open; point-in-time stops
  // replay at the corruption point instead of skipping past it.
  struct Reporter : public wal::Reader::Reporter {
    Logger* logger;
    Status status;
    void Corruption(size_t bytes, const Status& s) override {
      LSMLAB_LOG_WARN(logger, "WAL corruption: dropping %zu bytes: %s", bytes,
                      s.ToString().c_str());
      if (status.ok()) {
        status = s;
      }
    }
  } reporter;
  reporter.logger = options_.info_log.get();

  wal::Reader reader(file.get(), &reporter);
  Slice record;
  std::string scratch;
  std::unique_ptr<MemTable> mem;

  while (reader.ReadRecord(&record, &scratch)) {
    if (!reporter.status.ok()) {
      // The reader skipped a corrupt region to find this record; applying
      // it would recover writes newer than ones already lost. Stop here —
      // the mode check below decides whether that is fatal.
      break;
    }
    // Each WAL record is one serialized WriteBatch, except the two tagged
    // cross-shard record kinds (byte 7 of the leading fixed64; a normal
    // batch starts with a sequence number whose byte 7 is zero).
    WriteBatch batch;
    SequenceNumber apply_seq = 0;
    if (record.size() >= 8 &&
        static_cast<uint8_t>(record[7]) == kPrepareRecordTag) {
      // Prepare: stash the payload; it applies at its commit marker (or at
      // end of replay if the facade's commit log proves it committed).
      uint64_t id = DecodeFixed64(record.data()) & kTwoPhaseIdMask;
      max_recovered_prepare_id_ = std::max(max_recovered_prepare_id_, id);
      (*prepare_stash)[id] =
          std::string(record.data() + 8, record.size() - 8);
      continue;
    } else if (record.size() >= 8 &&
               static_cast<uint8_t>(record[7]) == kCommitMarkerTag) {
      // Commit marker: the marker itself proves the cross-shard batch
      // committed; apply the stashed payload at the recorded sequence.
      if (record.size() < 16) {
        return Status::Corruption("short cross-shard commit marker in WAL");
      }
      uint64_t id = DecodeFixed64(record.data()) & kTwoPhaseIdMask;
      max_recovered_prepare_id_ = std::max(max_recovered_prepare_id_, id);
      auto it = prepare_stash->find(id);
      if (it == prepare_stash->end()) {
        continue;  // Payload resolved by an earlier recovery's flush.
      }
      if (tagged_only) {
        // A marker below the manifest watermark means the memtable this
        // batch was applied to has been flushed: the payload is already in
        // an SSTable. Retire the stash entry without re-applying it.
        prepare_stash->erase(it);
        continue;
      }
      s = batch.SetRep(it->second);
      if (!s.ok()) {
        return s;
      }
      prepare_stash->erase(it);
      apply_seq = DecodeFixed64(record.data() + 8);
    } else {
      if (tagged_only) {
        continue;  // Normal record below the watermark: already flushed.
      }
      s = batch.SetRep(record);
      if (!s.ok()) {
        return s;
      }
      apply_seq = batch.sequence();
    }
    if (mem == nullptr) {
      mem = MakeMemTable();
    }
    BatchInserter inserter(mem.get(), apply_seq);
    s = batch.Iterate(&inserter);
    if (!s.ok()) {
      return s;
    }
    if (batch.Count() > 0 && inserter.last_sequence() > *max_sequence) {
      *max_sequence = inserter.last_sequence();
    }

    if (mem->DataSize() >= options_.write_buffer_size) {
      MemTableIteratorAdapter iter(std::shared_ptr<MemTable>(std::move(mem)));
      iter.SeekToFirst();
      FileMetaData meta;
      s = BuildTableFromIterator(&iter, 0,
                                 options_.clock->NowMicros(), &meta);
      if (!s.ok()) {
        return s;
      }
      edit->AddFile(0, meta);
      mem.reset();
    }
  }
  if (!reporter.status.ok() && !tagged_only) {
    if (options_.wal_recovery_mode == WalRecoveryMode::kAbsoluteConsistency) {
      return reporter.status;
    }
    *stop_replay = true;
  }
  // tagged_only corruption is benign: every prepare was synced into the
  // file's durable prefix, so a torn region can only claim flushed normal
  // records or commit markers (whose ids the facade's commit log re-proves).
  if (mem != nullptr && !mem->Empty()) {
    MemTableIteratorAdapter iter(std::shared_ptr<MemTable>(std::move(mem)));
    iter.SeekToFirst();
    FileMetaData meta;
    s = BuildTableFromIterator(&iter, 0, options_.clock->NowMicros(), &meta);
    if (!s.ok()) {
      return s;
    }
    edit->AddFile(0, meta);
  }
  return Status::OK();
}

Status ShardEngine::NewMemTableAndLog() {
  uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  if (options_.enable_wal) {
    Status s = options_.env->NewWritableFile(
        LogFileName(dbname_, new_log_number), &lfile);
    if (!s.ok()) {
      return s;
    }
  }
  log_file_ = std::move(lfile);
  log_ = log_file_ ? std::make_unique<wal::Writer>(log_file_.get()) : nullptr;
  log_file_number_ = new_log_number;
  mem_ = std::shared_ptr<MemTable>(MakeMemTable());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status ShardEngine::Put(const WriteOptions& options, const Slice& key,
               const Slice& value) {
  if (options_.kv_separation && vlog_ != nullptr &&
      value.size() >= options_.kv_separation_threshold) {
    VlogPointer ptr;
    Status s = vlog_->Append(key, value, &ptr);
    if (!s.ok()) {
      return s;
    }
    std::string encoded;
    ptr.EncodeTo(&encoded);
    return WriteInternal(options, kTypeVlogPointer, key, encoded);
  }
  return WriteInternal(options, kTypeValue, key, value);
}

Status ShardEngine::Delete(const WriteOptions& options, const Slice& key) {
  // A tombstone: key plus an (empty) marker value (tutorial §2.1.2).
  return WriteInternal(options, kTypeDeletion, key, Slice());
}

Status ShardEngine::SingleDelete(const WriteOptions& options, const Slice& key) {
  return WriteInternal(options, kTypeSingleDeletion, key, Slice());
}

Status ShardEngine::Merge(const WriteOptions& options, const Slice& key,
                 const Slice& operand) {
  if (options_.merge_operator == nullptr) {
    return Status::InvalidArgument("Merge requires Options::merge_operator");
  }
  return WriteInternal(options, kTypeMerge, key, operand);
}

Status ShardEngine::DeleteRange(const WriteOptions& options, const Slice& begin,
                       const Slice& end) {
  // Simplification (documented): snapshot-scan the range and tombstone each
  // live key. Native range tombstones are future work.
  ReadOptions read_options;
  auto iter = NewIterator(read_options);
  std::vector<std::string> doomed;
  for (iter->Seek(begin); iter->Valid(); iter->Next()) {
    if (options_.comparator->Compare(iter->key(), end) >= 0) {
      break;
    }
    doomed.push_back(iter->key().ToString());
  }
  Status s = iter->status();
  if (!s.ok()) {
    return s;
  }
  for (const auto& key : doomed) {
    s = Delete(options, key);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status ShardEngine::WriteInternal(const WriteOptions& options, ValueType type,
                         const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.PutTyped(type, key, value);
  return WriteBatchInternal(options, &batch);
}

Status ShardEngine::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr || batch->Count() == 0) {
    return Status::OK();
  }
  if (options_.kv_separation && vlog_ != nullptr) {
    // Rewrite large put values into vlog pointers before logging, so the
    // WAL (and the LSM) only carry pointers.
    class Separator : public WriteBatch::Handler {
     public:
      Separator(ShardEngine* db, WriteBatch* out) : db_(db), out_(out) {}
      void TypedRecord(ValueType type, const Slice& key,
                       const Slice& value) override {
        if (type == kTypeValue &&
            value.size() >= db_->options_.kv_separation_threshold) {
          VlogPointer ptr;
          Status s = db_->vlog_->Append(key, value, &ptr);
          if (!s.ok()) {
            if (status_.ok()) {
              status_ = s;
            }
            return;
          }
          std::string encoded;
          ptr.EncodeTo(&encoded);
          out_->PutTyped(kTypeVlogPointer, key, encoded);
          return;
        }
        out_->PutTyped(type, key, value);
      }
      void Put(const Slice&, const Slice&) override {}
      void Delete(const Slice&) override {}
      void SingleDelete(const Slice&) override {}
      void Merge(const Slice&, const Slice&) override {}
      Status status_;

     private:
      ShardEngine* const db_;
      WriteBatch* const out_;
    };
    WriteBatch separated;
    Separator separator(this, &separated);
    Status s = batch->Iterate(&separator);
    if (s.ok()) {
      s = separator.status_;
    }
    if (!s.ok()) {
      return s;
    }
    return WriteBatchInternal(options, &separated);
  }
  return WriteBatchInternal(options, batch);
}

// One queued write (or memtable-seal request). Writers block on their own
// condition variable until a leader commits their batch for them, or until
// they reach the queue front and commit a group themselves. done/status are
// written by the leader and read by the owner, both under writer_queue_mu_
// (not expressible as GUARDED_BY: the mutex is a DB member, not ours).
struct ShardEngine::Writer {
  /// kWrite commits a normal batch (groupable); kSeal rotates the memtable;
  /// kPrepare / kCommitMarker are the two phases of a cross-shard commit.
  /// Non-kWrite writers never coalesce — each runs solo as leader.
  enum Kind { kWrite, kSeal, kPrepare, kCommitMarker };

  WriteBatch* batch;  // nullptr marks a memtable-seal request (Flush()).
  bool sync;
  bool no_slowdown;
  Kind kind = kWrite;
  /// Cross-shard batch id for kPrepare / kCommitMarker writers.
  uint64_t prepare_id = 0;
  /// Seal requests only: rotate even if the memtable is empty or a hard
  /// error is in force (Resume() swapping out a poisoned WAL).
  bool force_seal = false;
  /// Seal requests only: checkpoint WAL cut. Rotates even when the
  /// memtable is empty, but unlike force_seal keeps the outgoing fsync
  /// (the sealed log joins a checkpoint — it must be a durable prefix)
  /// and still refuses to run under a hard error.
  bool checkpoint_seal = false;
  bool done = false;
  Status status;
  CondVar cv;

  Writer(WriteBatch* b, bool s, bool ns)
      : batch(b), sync(s), no_slowdown(ns) {}
};

namespace {
/// Hard cap on the serialized size of one write group (one WAL record).
constexpr size_t kMaxGroupBytes = 1 << 20;
/// When the leader's own batch is small, limit how much follower data may
/// ride along so a tiny write's latency is not held hostage by a megabyte
/// of followers.
constexpr size_t kSmallBatchBytes = 128 << 10;
}  // namespace

Status ShardEngine::WriteBatchInternal(const WriteOptions& options,
                              WriteBatch* batch) {
  Writer w(batch, options.sync, options.no_slowdown);
  return EnqueueWriter(&w);
}

Status ShardEngine::SealActiveMemTable(bool force, bool for_checkpoint) {
  Writer w(nullptr, /*sync=*/false, /*no_slowdown=*/false);
  w.kind = Writer::kSeal;
  w.force_seal = force;
  w.checkpoint_seal = for_checkpoint;
  return EnqueueWriter(&w);
}

Status ShardEngine::PrepareWrite(const WriteOptions& options, WriteBatch* batch,
                        uint64_t id) {
  Writer w(batch, /*sync=*/true, options.no_slowdown);
  w.kind = Writer::kPrepare;
  w.prepare_id = id;
  return EnqueueWriter(&w);
}

Status ShardEngine::CommitPrepared(uint64_t id, WriteBatch* batch) {
  Writer w(batch, /*sync=*/false, /*no_slowdown=*/false);
  w.kind = Writer::kCommitMarker;
  w.prepare_id = id;
  return EnqueueWriter(&w);
}

void ShardEngine::AbortPrepared(uint64_t id) {
  // The prepare record stays in the WAL; with neither a marker nor a
  // facade commit-log entry, recovery discards it. Dropping the retention
  // entry is the whole abort.
  MutexLock lock(&mu_);
  pending_prepares_.erase(id);
}

Status ShardEngine::EnqueueWriter(Writer* w) {
  std::vector<Writer*> group;
  {
    MutexLock qlock(&writer_queue_mu_);
    write_queue_.push_back(w);
    while (!w->done && write_queue_.front() != w) {
      w->cv.Wait(writer_queue_mu_);
    }
    if (w->done) {
      return w->status;  // A leader committed this write within its group.
    }
    BuildWriteGroup(w, &group);
  }

  // Leader path: commit the group (or seal the memtable, or run one phase
  // of a cross-shard commit) with the queue frozen behind us — nothing else
  // can enter the write path until we hand leadership on below.
  Status s;
  if (w->kind == Writer::kPrepare) {
    s = LeaderPrepare(w);
  } else if (w->kind == Writer::kCommitMarker) {
    s = LeaderCommitPrepared(w);
  } else if (w->batch == nullptr) {
    MutexLock lock(&mu_);
    if (error_state_.hard() && !w->force_seal) {
      s = error_state_.status;
    } else if (!mem_->Empty() || w->force_seal || w->checkpoint_seal) {
      // A forced seal rotates away from a poisoned WAL, which must not be
      // fsynced again; its acked contents are re-persisted by the flush
      // Resume() schedules. A checkpoint seal always keeps the fsync: the
      // sealed log becomes checkpoint state.
      s = NewMemTableAndLogLocked(/*skip_old_wal_sync=*/w->force_seal);
    }
  } else {
    s = CommitWriteGroup(w, group);
  }

  // Deliver statuses to followers and pass leadership to the next writer.
  {
    MutexLock qlock(&writer_queue_mu_);
    for (Writer* member : group) {
      assert(write_queue_.front() == member);
      write_queue_.pop_front();
      if (member != w) {
        member->status = s;
        member->done = true;
        member->cv.Signal();
      }
    }
    if (!write_queue_.empty()) {
      write_queue_.front()->cv.Signal();
    }
  }
  return s;
}

void ShardEngine::BuildWriteGroup(Writer* leader, std::vector<Writer*>* group) {
  // Leader is at the queue front.
  group->push_back(leader);
  if (leader->batch == nullptr || leader->kind != Writer::kWrite) {
    return;  // Seal and 2PC requests never batch with writes.
  }
  size_t bytes = leader->batch->ApproximateSize();
  const size_t max_bytes =
      bytes <= kSmallBatchBytes ? bytes + kSmallBatchBytes : kMaxGroupBytes;

  for (auto it = write_queue_.begin() + 1; it != write_queue_.end(); ++it) {
    Writer* follower = *it;
    if (follower->batch == nullptr || follower->kind != Writer::kWrite) {
      break;  // Memtable-seal / 2PC barrier.
    }
    if (follower->sync && !leader->sync) {
      break;  // Would silently upgrade the leader's durability obligation.
    }
    if (follower->no_slowdown != leader->no_slowdown) {
      break;  // Stall-ladder policy must be uniform across the group.
    }
    bytes += follower->batch->ApproximateSize();
    if (bytes > max_bytes) {
      break;
    }
    group->push_back(follower);
  }
}

Status ShardEngine::CommitWriteGroup(Writer* leader,
                            const std::vector<Writer*>& group) {
  Status s;
  WriteBatch* merged = nullptr;
  SequenceNumber seq_start = 0;
  uint32_t count = 0;
  wal::Writer* log = nullptr;
  WritableFile* log_file = nullptr;

  {
    MutexLock lock(&mu_);
    s = MakeRoomForWrite(leader->no_slowdown);
    if (s.ok()) {
      if (group.size() == 1) {
        merged = leader->batch;
      } else {
        group_batch_.Clear();
        for (Writer* member : group) {
          group_batch_.Append(*member->batch);
        }
        merged = &group_batch_;
      }
      count = merged->Count();
      // Allocate — but do not publish — the group's sequence range. Readers
      // keep snapshotting the old last_sequence, so the entries stay
      // invisible until the WAL write has succeeded; a failed append
      // therefore consumes no sequence numbers.
      seq_start = versions_->last_sequence() + 1;
      merged->SetSequence(seq_start);
      // The WAL handles are stable outside mu_: they are only swapped by a
      // write-queue leader (MakeRoomForWrite / seal requests), and we are
      // the sole leader until the group completes.
      log = log_.get();
      log_file = log_file_.get();
    }
  }
  if (!s.ok()) {
    return s;
  }

  if (log != nullptr) {
    // One WAL record and at most one fsync for the whole group, outside
    // mu_ — the point of group commit (fsync amortization, §2.2.5).
    s = log->AddRecord(merged->rep());
    if (s.ok()) {
      stats_->wal_bytes_written.fetch_add(merged->rep().size(),
                                         std::memory_order_relaxed);
      if (leader->sync || options_.sync_wal) {
        s = log_file->Sync();
        if (s.ok()) {
          stats_->wal_syncs.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (!s.ok()) {
      // The WAL's on-disk offset is now ambiguous (a failed append or
      // fsync may or may not have persisted bytes — the fsyncgate
      // pathology), so no further append to this log is safe: hard error.
      // Resume() recovers by rotating to a fresh WAL.
      MutexLock lock(&mu_);
      RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kWal);
      return s;
    }
  }

  // Apply to the memtable with consecutive sequence numbers.
  {
    MutexLock lock(&mu_);
    BatchInserter inserter(mem_.get(), seq_start);
    s = merged->Iterate(&inserter);
    if (s.ok()) {
      versions_->SetLastSequence(seq_start + count - 1);
    } else {
      // A partially applied group leaks unpublished sequence numbers into
      // the memtable; flushing it would persist unacked writes. Hard error,
      // and deliberately not resumable — reopen replays the WAL cleanly.
      RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kMemtable);
    }
  }
  if (merged == &group_batch_) {
    group_batch_.Clear();  // Release the coalesced bytes promptly.
  }
  if (s.ok()) {
    stats_->writes.fetch_add(count, std::memory_order_relaxed);
    stats_->write_groups.fetch_add(1, std::memory_order_relaxed);
    stats_->RecordWriteGroupSize(group.size());
  }
  return s;
}

// Phase 1 of a cross-shard commit (leader-only). Appends + fsyncs a tagged
// prepare record carrying the batch payload. No sequence numbers are
// assigned and the memtable is untouched: the batch is invisible (and
// consumes nothing) until CommitPrepared. The fsync is what lets the facade
// treat its commit record as the single durability point.
Status ShardEngine::LeaderPrepare(Writer* w) {
  wal::Writer* log = nullptr;
  WritableFile* log_file = nullptr;
  uint64_t log_number = 0;
  {
    MutexLock lock(&mu_);
    if (error_state_.hard()) {
      return error_state_.status;
    }
    // The WAL handles are stable outside mu_: only a leader swaps them,
    // and we hold leadership.
    log = log_.get();
    log_file = log_file_.get();
    log_number = log_file_number_;
  }
  if (log == nullptr) {
    // The facade falls back to direct per-shard applies when the WAL is
    // off; reaching here is a facade bug.
    return Status::InvalidArgument("PrepareWrite requires enable_wal");
  }

  std::string record;
  PutFixed64(&record, w->prepare_id |
                          (static_cast<uint64_t>(kPrepareRecordTag) << 56));
  record.append(w->batch->rep());
  Status s = log->AddRecord(record);
  if (s.ok()) {
    stats_->wal_bytes_written.fetch_add(record.size(),
                                       std::memory_order_relaxed);
    s = log_file->Sync();
    if (s.ok()) {
      stats_->wal_syncs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  MutexLock lock(&mu_);
  if (!s.ok()) {
    // Same fsyncgate reasoning as CommitWriteGroup: the log's on-disk
    // offset is ambiguous, no further append is safe.
    RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kWal);
    return s;
  }
  pending_prepares_[w->prepare_id] = log_number;
  return Status::OK();
}

// Phase 2 of a cross-shard commit (leader-only). Assigns the sequence
// range, appends an *unsynced* commit marker {id, seq_start}, applies the
// prepared batch, and records the id in committed_prepares_ so both the
// prepare's and the marker's WALs outlive the normal flush horizon (the
// marker is the only replayable record of the batch's sequences).
Status ShardEngine::LeaderCommitPrepared(Writer* w) {
  WriteBatch* batch = w->batch;
  SequenceNumber seq_start = 0;
  uint32_t count = 0;
  wal::Writer* log = nullptr;
  uint64_t prepare_log = 0;
  Status s;
  {
    MutexLock lock(&mu_);
    s = MakeRoomForWrite(/*no_slowdown=*/false);
    if (s.ok()) {
      auto it = pending_prepares_.find(w->prepare_id);
      if (it == pending_prepares_.end()) {
        s = Status::InvalidArgument("commit of unprepared cross-shard id");
      } else {
        prepare_log = it->second;
        count = batch->Count();
        seq_start = versions_->last_sequence() + 1;
        batch->SetSequence(seq_start);
        log = log_.get();
      }
    }
  }
  if (!s.ok()) {
    return s;
  }

  if (log != nullptr) {
    // Deliberately unsynced: the facade's commit record is the durability
    // point. A marker torn off by a crash is reconstructed at recovery
    // from the synced prepare payload plus the facade's commit log.
    std::string record;
    PutFixed64(&record, w->prepare_id |
                            (static_cast<uint64_t>(kCommitMarkerTag) << 56));
    PutFixed64(&record, seq_start);
    s = log->AddRecord(record);
    if (s.ok()) {
      stats_->wal_bytes_written.fetch_add(record.size(),
                                         std::memory_order_relaxed);
    } else {
      MutexLock lock(&mu_);
      RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kWal);
      return s;
    }
  }

  MutexLock lock(&mu_);
  BatchInserter inserter(mem_.get(), seq_start);
  s = batch->Iterate(&inserter);
  if (s.ok()) {
    versions_->SetLastSequence(seq_start + count - 1);
    pending_prepares_.erase(w->prepare_id);
    // log_file_number_ is the marker's log: MakeRoomForWrite may have
    // rotated before the marker was appended, but nothing rotates between
    // the append and here (we are still leader).
    committed_prepares_[w->prepare_id] =
        CommittedPrepare{prepare_log, log_file_number_};
    stats_->writes.fetch_add(count, std::memory_order_relaxed);
    stats_->write_groups.fetch_add(1, std::memory_order_relaxed);
    stats_->RecordWriteGroupSize(1);
  } else {
    RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kMemtable);
  }
  return s;
}

Status ShardEngine::MakeRoomForWrite(bool no_slowdown) {
  bool allow_delay = true;
  while (true) {
    if (error_state_.hard()) {
      // Read-only mode: reads keep serving from the last ReadView, writes
      // fail fast with the poisoning error until Resume() clears it.
      return error_state_.status;
    }

    int l0_files = versions_->current()->NumFiles(0);

    if (allow_delay && l0_files >= options_.level0_slowdown_writes_trigger &&
        l0_files < options_.level0_stop_writes_trigger) {
      // Soft stall: give compaction a 1ms head start, once per write.
      if (no_slowdown) {
        return Status::Busy("write slowdown active");
      }
      mu_.Unlock();
      options_.clock->SleepForMicros(1000);
      stats_->write_slowdown_micros.fetch_add(1000, std::memory_order_relaxed);
      mu_.Lock();
      allow_delay = false;
      continue;
    }

    if (mem_->DataSize() < options_.write_buffer_size) {
      return Status::OK();  // Room available.
    }

    // The active memtable is full.
    if (static_cast<int>(imms_.size()) >=
        options_.max_write_buffer_number - 1) {
      // All buffers full: hard stall until a flush retires one.
      if (no_slowdown) {
        return Status::Busy("memtable limit");
      }
      uint64_t start = options_.clock->NowMicros();
      MaybeScheduleFlush();
      while (!error_state_.hard() &&
             static_cast<int>(imms_.size()) >=
                 options_.max_write_buffer_number - 1) {
        background_cv_.Wait(mu_);
      }
      stats_->write_stall_micros.fetch_add(
          options_.clock->NowMicros() - start, std::memory_order_relaxed);
      continue;
    }

    if (l0_files >= options_.level0_stop_writes_trigger) {
      // Hard stall on L0 pileup.
      if (no_slowdown) {
        return Status::Busy("l0 stop trigger");
      }
      uint64_t start = options_.clock->NowMicros();
      MaybeScheduleCompaction();
      while (!error_state_.hard() &&
             versions_->current()->NumFiles(0) >=
                 options_.level0_stop_writes_trigger) {
        background_cv_.Wait(mu_);
      }
      stats_->write_stall_micros.fetch_add(
          options_.clock->NowMicros() - start, std::memory_order_relaxed);
      continue;
    }

    // Seal the active memtable and swap in a fresh one (§2.2.1: multiple
    // buffers absorb bursts while flushes drain).
    Status s = NewMemTableAndLogLocked();
    if (!s.ok()) {
      return s;
    }
  }
}

// Seals mem_ into imms_ and creates a fresh memtable + WAL. mu_ held.
Status ShardEngine::NewMemTableAndLogLocked(bool skip_old_wal_sync) {
  lock_rank::IoAllowedSection wal_rotation_io(
      "WAL rotation under mu_ is the seal protocol: the outgoing log's "
      "fsync and the new log's creation must be atomic with the memtable "
      "swap they accompany, and only the write leader reaches this path.");
  if (options_.enable_wal && log_file_ != nullptr && !skip_old_wal_sync) {
    // Fsync the outgoing WAL before sealing. Once sealed, this log's tail is
    // never synced again, so an unsynced tail here could vanish in a crash
    // while a *newer* WAL survives — recovery would then see a hole in the
    // write order. Syncing at the seal point keeps every sealed log a
    // durable prefix: only the active WAL's tail is ever at risk.
    Status s = log_file_->Sync();
    if (!s.ok()) {
      RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kWal);
      return s;
    }
    stats_->wal_syncs.fetch_add(1, std::memory_order_relaxed);
  }

  imms_.push_back(mem_);
  imm_log_numbers_.push_back(log_file_number_);

  uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  if (options_.enable_wal) {
    Status s = options_.env->NewWritableFile(
        LogFileName(dbname_, new_log_number), &lfile);
    if (!s.ok()) {
      imms_.pop_back();
      imm_log_numbers_.pop_back();
      return s;
    }
  }
  log_file_ = std::move(lfile);
  log_ = log_file_ ? std::make_unique<wal::Writer>(log_file_.get()) : nullptr;
  log_file_number_ = new_log_number;
  mem_ = std::shared_ptr<MemTable>(MakeMemTable());
  PublishReadView();
  MaybeScheduleFlush();
  return Status::OK();
}

void ShardEngine::PublishReadView() {
  auto view = std::make_shared<ReadView>();
  view->mem = mem_;
  view->imms.assign(imms_.rbegin(), imms_.rend());  // Newest first.
  view->version = versions_->current();
  view->published_sequence = versions_->last_sequence();
  {
    MutexLock lock(&read_view_mu_);
    read_view_ = std::move(view);
  }
  stats_->read_views_published.fetch_add(1, std::memory_order_relaxed);
}

Status ShardEngine::GetTableReader(const FileMetaData& f,
                          std::shared_ptr<TableReader>* reader) {
  TableHandle* handle = f.table_handle.get();
  if (handle != nullptr) {
    MutexLock lock(&handle->mu);
    if (handle->reader != nullptr) {
      *reader = handle->reader;
      stats_->table_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  // Resolve through the sharded cache with no handle lock held (the open
  // does real I/O on a cold file, and leaf locks never nest).
  Status s = table_cache_->GetReader(cache_dir_id_, f.file_number,
                                     f.file_size, reader);
  if (s.ok() && handle != nullptr) {
    MutexLock lock(&handle->mu);
    if (handle->reader == nullptr) {
      // Racing resolvers fetched the same cache entry; first store wins.
      handle->reader = *reader;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Status ShardEngine::ResolveValue(const Slice& user_key, ValueType type,
                        const std::string& raw, std::string* value) {
  if (type == kTypeVlogPointer) {
    VlogPointer ptr;
    if (vlog_ == nullptr || !ptr.DecodeFrom(raw)) {
      return Status::Corruption("bad vlog pointer");
    }
    return vlog_->Read(ptr, user_key, value);
  }
  *value = raw;
  return Status::OK();
}

Status ShardEngine::ResolveMerge(const ReadOptions& options, const ReadView& view,
                        const Slice& key, SequenceNumber snapshot,
                        std::string* value) {
  // Walk every version of `key` visible at `snapshot`, newest first,
  // collecting merge operands until a base value, tombstone, or the end of
  // the key's history. Reuses the caller's view so the chain is resolved
  // against exactly the state the lookup probed.
  auto iter = NewInternalIterator(options, view);
  std::string seek_key;
  AppendInternalKey(&seek_key,
                    ParsedInternalKey(key, snapshot, kValueTypeForSeek));
  std::vector<std::string> operand_storage;  // Newest first.
  std::string base_storage;
  bool has_base = false;
  bool deleted = false;

  for (iter->Seek(seek_key); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("malformed internal key during merge");
    }
    if (options_.comparator->Compare(parsed.user_key, key) != 0) {
      break;  // Past this key's history.
    }
    if (parsed.sequence > snapshot) {
      continue;
    }
    if (parsed.type == kTypeMerge) {
      operand_storage.push_back(iter->value().ToString());
      continue;
    }
    if (parsed.type == kTypeDeletion || parsed.type == kTypeSingleDeletion) {
      deleted = true;
    } else {
      Status s = ResolveValue(parsed.user_key, parsed.type,
                              iter->value().ToString(), &base_storage);
      if (!s.ok()) {
        return s;
      }
      has_base = true;
    }
    break;  // Any non-merge entry terminates the operand chain.
  }
  if (!iter->status().ok()) {
    return iter->status();
  }
  if (operand_storage.empty() && deleted) {
    return Status::NotFound("key deleted");
  }

  Slice base_slice(base_storage);
  const Slice* base = has_base ? &base_slice : nullptr;

  std::vector<Slice> operands;  // Oldest first for the operator.
  operands.reserve(operand_storage.size());
  for (auto it = operand_storage.rbegin(); it != operand_storage.rend();
       ++it) {
    operands.emplace_back(*it);
  }
  if (!options_.merge_operator->Merge(key, base, operands, value)) {
    return Status::Corruption("merge operands failed to combine");
  }
  return Status::OK();
}

Status ShardEngine::Get(const ReadOptions& options, const Slice& key,
               std::string* value) {
  stats_->point_lookups.fetch_add(1, std::memory_order_relaxed);

  // Steady-state Get takes no DB-wide mutex: one atomic load pins the whole
  // read state (memtables + version), one atomic load picks the snapshot.
  // A published last_sequence implies the covered write is already visible
  // in the view (the write committed before publication, and view stores
  // are release-ordered), so this pair can never miss a completed write.
  std::shared_ptr<const ReadView> view = AcquireReadView();
  SequenceNumber snapshot = options.snapshot_seqno != 0
                                ? options.snapshot_seqno
                                : versions_->last_sequence();

  LookupKey lkey(key, snapshot);
  std::string raw;
  ValueType type;

  // 1. Active memtable.
  if (view->mem->Get(lkey, &raw, &type)) {
    if (type == kTypeDeletion || type == kTypeSingleDeletion) {
      return Status::NotFound("key deleted");
    }
    stats_->point_lookup_found.fetch_add(1, std::memory_order_relaxed);
    if (type == kTypeMerge) {
      return ResolveMerge(options, *view, key, snapshot, value);
    }
    return ResolveValue(key, type, raw, value);
  }
  // 2. Immutable memtables, newest first.
  for (const auto& imm : view->imms) {
    if (imm->Get(lkey, &raw, &type)) {
      if (type == kTypeDeletion || type == kTypeSingleDeletion) {
        return Status::NotFound("key deleted");
      }
      stats_->point_lookup_found.fetch_add(1, std::memory_order_relaxed);
      if (type == kTypeMerge) {
        return ResolveMerge(options, *view, key, snapshot, value);
      }
      return ResolveValue(key, type, raw, value);
    }
  }

  // 3. Disk levels, shallow to deep; within a tiered level newest run first
  // (tutorial §2.1.2 get path). Filters gate every run probe (§2.1.3).
  const Version* version = view->version.get();
  for (int level = 0; level < version->num_levels(); ++level) {
    for (const FileMetaData* f : version->FilesContaining(level, key)) {
      std::shared_ptr<TableReader> reader;
      Status s = GetTableReader(*f, &reader);
      if (!s.ok()) {
        return s;
      }
      if (reader->KeyDefinitelyAbsent(key)) {
        stats_->runs_skipped_by_filter.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      stats_->runs_probed.fetch_add(1, std::memory_order_relaxed);

      bool found;
      std::string entry_key;
      s = reader->InternalGet(options, lkey.internal_key(), &found,
                              &entry_key, &raw);
      if (!s.ok()) {
        return s;
      }
      if (!found) {
        if (reader->has_filter()) {
          // The filter said "maybe" but the run lacked the key.
          stats_->filter_false_positives.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        continue;
      }
      ValueType found_type = ExtractValueType(entry_key);
      if (found_type == kTypeDeletion || found_type == kTypeSingleDeletion) {
        return Status::NotFound("key deleted");
      }
      stats_->point_lookup_found.fetch_add(1, std::memory_order_relaxed);
      if (found_type == kTypeMerge) {
        return ResolveMerge(options, *view, key, snapshot, value);
      }
      return ResolveValue(key, found_type, raw, value);
    }
  }
  return Status::NotFound("key not found");
}

std::vector<Status> ShardEngine::MultiGet(const ReadOptions& options,
                                 const std::vector<Slice>& keys,
                                 std::vector<std::string>* values) {
  // Batch-level counters (multiget_batches / multiget_keys / point_lookups)
  // are recorded by the facade, which may split one client batch across
  // several engines; bumping them here too would double-count.
  const size_t n = keys.size();
  values->clear();
  values->resize(n);
  std::vector<Status> statuses(n);
  if (n == 0) {
    return statuses;
  }

  // One view and one snapshot serve the whole batch, so every key reads the
  // same state (same guarantees as Get, amortized over n keys).
  std::shared_ptr<const ReadView> view = AcquireReadView();
  SequenceNumber snapshot = options.snapshot_seqno != 0
                                ? options.snapshot_seqno
                                : versions_->last_sequence();

  struct KeyState {
    LookupKey lkey;
    bool done = false;
    /// Readers that may hold this key, in probe order (level-major, run
    /// order within a level) — filled in phase B, drained in phase C.
    std::vector<TableReader*> probes;
    /// Phase C (batched) cursor into `probes`.
    size_t next_probe = 0;
    explicit KeyState(const Slice& key, SequenceNumber seq)
        : lkey(key, seq) {}
  };
  // deque: LookupKey is pinned in place (neither copyable nor movable).
  std::deque<KeyState> states;
  for (const Slice& key : keys) {
    states.emplace_back(key, snapshot);
  }

  // Finishes key i with the entry found for it (any source).
  auto resolve_entry = [&](size_t i, ValueType type, const std::string& raw) {
    states[i].done = true;
    if (type == kTypeDeletion || type == kTypeSingleDeletion) {
      statuses[i] = Status::NotFound("key deleted");
      return;
    }
    stats_->point_lookup_found.fetch_add(1, std::memory_order_relaxed);
    if (type == kTypeMerge) {
      statuses[i] =
          ResolveMerge(options, *view, keys[i], snapshot, &(*values)[i]);
      return;
    }
    statuses[i] = ResolveValue(keys[i], type, raw, &(*values)[i]);
  };

  // Phase A: memtables (active, then immutables newest first). Keys
  // resolved here never touch disk at all.
  size_t remaining = n;
  for (size_t i = 0; i < n; ++i) {
    std::string raw;
    ValueType type;
    bool hit = view->mem->Get(states[i].lkey, &raw, &type);
    for (auto imm = view->imms.begin(); !hit && imm != view->imms.end();
         ++imm) {
      hit = (*imm)->Get(states[i].lkey, &raw, &type);
    }
    if (hit) {
      resolve_entry(i, type, raw);
      --remaining;
    }
  }

  // Phase B: walk the tree once, file by file, resolving each candidate
  // file's reader a single time and running every relevant filter check
  // before any data-block I/O. Keys surviving the filter are queued on the
  // file in probe order; a key queued on files of two levels probes the
  // shallower one first, preserving Get's newest-wins semantics.
  std::vector<std::shared_ptr<TableReader>> pinned_readers;
  const Version* version = view->version.get();
  for (int level = 0; remaining > 0 && level < version->num_levels();
       ++level) {
    // FilesContaining returns probe order per key; iterating keys per file
    // keeps that order because a level's files are visited in stored order
    // for leveled levels and newest-run-first for tiered ones.
    for (size_t i = 0; i < n; ++i) {
      if (states[i].done) {
        continue;
      }
      for (const FileMetaData* f :
           version->FilesContaining(level, keys[i])) {
        std::shared_ptr<TableReader> reader;
        Status s = GetTableReader(*f, &reader);
        if (!s.ok()) {
          statuses[i] = s;
          states[i].done = true;
          --remaining;
          break;
        }
        if (reader->KeyDefinitelyAbsent(keys[i])) {
          stats_->runs_skipped_by_filter.fetch_add(1,
                                                  std::memory_order_relaxed);
          continue;
        }
        states[i].probes.push_back(reader.get());
        pinned_readers.push_back(std::move(reader));
      }
    }
  }

  // Phase C (batched, the ReadOptions::batched_io default): rounds of one
  // Env::MultiRead submission each. Every unresolved key locates — via its
  // current probe target's pinned index — the one data block that may hold
  // it; cache hits resolve immediately, the misses are deduped by
  // (file, offset) and fetched together in a single submission, then
  // searched. A key that misses its file advances to the next probe and
  // joins the next round, so a key never reads a deeper file until the
  // shallower one definitively missed — exactly Get's newest-wins walk,
  // with the per-round device trips collapsed from k to 1.
  if (options.batched_io && remaining > 0) {
    struct PendingProbe {
      size_t key;         // Index into states/statuses.
      size_t read_index;  // Index into the round's unique reads.
    };
    std::vector<size_t> active;
    for (size_t i = 0; i < n; ++i) {
      if (!states[i].done) {
        active.push_back(i);
      }
    }
    while (!active.empty()) {
      std::vector<PendingProbe> pending;
      // The round's unique block reads, deduped by (file, offset).
      std::vector<ReadRequest> reqs;
      std::vector<std::unique_ptr<char[]>> bufs;
      std::vector<TableReader*> req_reader;
      std::vector<BlockHandle> req_handle;

      for (size_t i : active) {
        KeyState& st = states[i];
        bool waiting = false;
        while (st.next_probe < st.probes.size()) {
          TableReader* reader = st.probes[st.next_probe];
          stats_->runs_probed.fetch_add(1, std::memory_order_relaxed);
          BlockHandle handle;
          Status s;
          if (!reader->LocateDataBlock(st.lkey.internal_key(), &handle, &s)) {
            if (!s.ok()) {
              statuses[i] = s;
              st.done = true;
              break;
            }
            // Index placed the key past the last block: miss in this file.
            if (reader->has_filter()) {
              stats_->filter_false_positives.fetch_add(
                  1, std::memory_order_relaxed);
            }
            ++st.next_probe;
            continue;
          }
          auto cached = reader->LookupCachedBlock(handle.offset());
          if (cached != nullptr) {
            bool found;
            std::string entry_key;
            std::string raw;
            Status bs = reader->SearchBlock(*cached, st.lkey.internal_key(),
                                            &found, &entry_key, &raw);
            if (!bs.ok()) {
              statuses[i] = bs;
              st.done = true;
              break;
            }
            if (found) {
              resolve_entry(i, ExtractValueType(entry_key), raw);
              break;
            }
            if (reader->has_filter()) {
              stats_->filter_false_positives.fetch_add(
                  1, std::memory_order_relaxed);
            }
            ++st.next_probe;
            continue;
          }
          // Cold block: join this round's submission.
          size_t read_index = reqs.size();
          for (size_t r = 0; r < reqs.size(); ++r) {
            if (req_reader[r] == reader &&
                req_handle[r].offset() == handle.offset()) {
              read_index = r;
              break;
            }
          }
          if (read_index == reqs.size()) {
            size_t len =
                static_cast<size_t>(handle.size()) + kBlockTrailerSize;
            bufs.push_back(std::make_unique<char[]>(len));
            ReadRequest req;
            req.file = reader->file();
            req.offset = handle.offset();
            req.len = len;
            req.scratch = bufs.back().get();
            reqs.push_back(req);
            req_reader.push_back(reader);
            req_handle.push_back(handle);
          }
          pending.push_back(PendingProbe{i, read_index});
          waiting = true;
          break;
        }
        if (!waiting && !states[i].done) {
          statuses[i] = Status::NotFound("key not found");
          states[i].done = true;
        }
      }

      std::vector<size_t> next_active;
      if (!pending.empty()) {
        options_.env->MultiRead(reqs.data(), reqs.size());
        stats_->io_batches.fetch_add(1, std::memory_order_relaxed);
        stats_->io_batch_reads.fetch_add(reqs.size(),
                                        std::memory_order_relaxed);
        // Materialize each unique block once (verify + cache-insert per
        // the reader's fetch context, computed once for the whole batch).
        std::vector<std::shared_ptr<const Block>> blocks(reqs.size());
        std::vector<Status> block_status(reqs.size());
        uint64_t bytes = 0;
        for (size_t r = 0; r < reqs.size(); ++r) {
          if (!reqs[r].status.ok()) {
            block_status[r] = reqs[r].status;
            continue;
          }
          bytes += reqs[r].result.size();
          block_status[r] = req_reader[r]->FinishBatchedBlockRead(
              req_reader[r]->MakeFetchContext(options), req_handle[r],
              reqs[r].result, &blocks[r]);
        }
        stats_->io_batch_bytes.fetch_add(bytes, std::memory_order_relaxed);
        for (const PendingProbe& p : pending) {
          KeyState& st = states[p.key];
          if (!block_status[p.read_index].ok()) {
            statuses[p.key] = block_status[p.read_index];
            st.done = true;
            continue;
          }
          TableReader* reader = st.probes[st.next_probe];
          bool found;
          std::string entry_key;
          std::string raw;
          Status bs =
              reader->SearchBlock(*blocks[p.read_index],
                                  st.lkey.internal_key(), &found, &entry_key,
                                  &raw);
          if (!bs.ok()) {
            statuses[p.key] = bs;
            st.done = true;
            continue;
          }
          if (found) {
            resolve_entry(p.key, ExtractValueType(entry_key), raw);
            continue;
          }
          if (reader->has_filter()) {
            stats_->filter_false_positives.fetch_add(1,
                                                    std::memory_order_relaxed);
          }
          ++st.next_probe;
          if (st.next_probe < st.probes.size()) {
            next_active.push_back(p.key);
          } else {
            statuses[p.key] = Status::NotFound("key not found");
            st.done = true;
          }
        }
      }
      active = std::move(next_active);
    }
    return statuses;
  }

  // Phase C (serial, batched_io off — the A/B baseline of experiment A6):
  // data-block reads, deferred until all filtering is done. Each
  // key walks its probe list shallow-to-deep and stops at the first file
  // holding any visible entry (InternalGet seeks to the newest entry <=
  // snapshot within the file, so per-file resolution matches Get).
  for (size_t i = 0; i < n; ++i) {
    if (states[i].done) {
      continue;
    }
    bool resolved = false;
    for (TableReader* reader : states[i].probes) {
      stats_->runs_probed.fetch_add(1, std::memory_order_relaxed);
      bool found;
      std::string entry_key;
      std::string raw;
      Status s = reader->InternalGet(options, states[i].lkey.internal_key(),
                                     &found, &entry_key, &raw);
      if (!s.ok()) {
        statuses[i] = s;
        resolved = true;
        break;
      }
      if (!found) {
        if (reader->has_filter()) {
          stats_->filter_false_positives.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        continue;
      }
      resolve_entry(i, ExtractValueType(entry_key), raw);
      resolved = true;
      break;
    }
    if (!resolved) {
      statuses[i] = Status::NotFound("key not found");
    }
  }
  return statuses;
}

// ---------------------------------------------------------------------------
// Iterators / scans
// ---------------------------------------------------------------------------

std::unique_ptr<Iterator> ShardEngine::NewInternalIterator(const ReadOptions& options,
                                                  const ReadView& view) {
  // Mutex-free: the view already pins the memtables and Version, and the
  // child iterators hold their own shared_ptrs, so the merged iterator
  // outlives any concurrent flush or compaction.
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<MemTableIteratorAdapter>(view.mem));
  for (const auto& imm : view.imms) {
    children.push_back(std::make_unique<MemTableIteratorAdapter>(imm));
  }

  for (int level = 0; level < view.version->num_levels(); ++level) {
    for (const auto& f : view.version->files(level)) {
      std::shared_ptr<TableReader> reader;
      Status s = GetTableReader(f, &reader);
      if (!s.ok()) {
        return NewEmptyIterator(s);
      }
      auto iter = reader->NewIterator(options);
      children.push_back(std::make_unique<TableIteratorHolder>(
          std::move(reader), std::move(iter)));
    }
  }
  return NewMergingIterator(&internal_comparator_, std::move(children));
}

/// User-facing iterator: collapses versions, hides tombstones, resolves
/// value-log pointers, and honours the snapshot.
class ShardEngine::DBIter final : public Iterator {
 public:
  DBIter(ShardEngine* db, std::unique_ptr<Iterator> internal, SequenceNumber snapshot)
      : db_(db), iter_(std::move(internal)), snapshot_(snapshot) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    iter_->SeekToFirst();
    skip_key_.clear();
    iter_already_advanced_ = false;
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    std::string seek_key;
    AppendInternalKey(&seek_key, ParsedInternalKey(target, snapshot_,
                                                   kValueTypeForSeek));
    iter_->Seek(seek_key);
    skip_key_.clear();
    iter_already_advanced_ = false;
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    skip_key_ = current_key_;  // Skip remaining versions of this key.
    if (iter_already_advanced_) {
      // A merge-chain resolution consumed this key's history and left the
      // internal iterator on the next entry already.
      iter_already_advanced_ = false;
    } else {
      iter_->Next();
    }
    FindNextUserEntry();
  }

  Slice key() const override {
    assert(valid_);
    return Slice(current_key_);
  }
  Slice value() const override {
    assert(valid_);
    return Slice(current_value_);
  }
  Status status() const override {
    return status_.ok() ? iter_->status() : status_;
  }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    const Comparator* ucmp = db_->options_.comparator;
    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        status_ = Status::Corruption("malformed internal key in iterator");
        return;
      }
      if (parsed.sequence > snapshot_) {
        iter_->Next();
        continue;
      }
      if (!skip_key_.empty() &&
          ucmp->Compare(parsed.user_key, skip_key_) == 0) {
        iter_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion ||
          parsed.type == kTypeSingleDeletion) {
        // Tombstone: hide all older versions of this key.
        skip_key_ = parsed.user_key.ToString();
        iter_->Next();
        continue;
      }
      if (parsed.type == kTypeMerge) {
        // Collect the operand chain down to the base value (§2.2.6).
        if (!ResolveMergeChain(parsed.user_key)) {
          return;  // status_ set.
        }
        iter_already_advanced_ = true;
        valid_ = true;
        return;
      }
      // Newest visible version of a live key.
      current_key_ = parsed.user_key.ToString();
      Status s = db_->ResolveValue(parsed.user_key, parsed.type,
                                   iter_->value().ToString(),
                                   &current_value_);
      if (!s.ok()) {
        status_ = s;
        return;
      }
      valid_ = true;
      return;
    }
  }

  /// Positioned on the newest visible merge operand of `user_key`:
  /// consumes the rest of the key's visible history, combines operands with
  /// the base, and leaves current_key_/current_value_ set. Returns false if
  /// an error occurred (status_ set). The internal iterator ends up past
  /// this user key either way.
  bool ResolveMergeChain(const Slice& user_key) {
    const Comparator* ucmp = db_->options_.comparator;
    current_key_ = user_key.ToString();
    std::vector<std::string> operand_storage;
    std::string base_storage;
    bool has_base = false;

    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        status_ = Status::Corruption("malformed internal key in merge chain");
        return false;
      }
      if (ucmp->Compare(parsed.user_key, Slice(current_key_)) != 0) {
        break;  // Past this key's history.
      }
      if (parsed.sequence > snapshot_) {
        iter_->Next();
        continue;
      }
      if (parsed.type == kTypeMerge) {
        operand_storage.push_back(iter_->value().ToString());
        iter_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion ||
          parsed.type == kTypeSingleDeletion) {
        // Chain bottoms out at a tombstone: merge over nothing.
        break;
      }
      Status s = db_->ResolveValue(parsed.user_key, parsed.type,
                                   iter_->value().ToString(), &base_storage);
      if (!s.ok()) {
        status_ = s;
        return false;
      }
      has_base = true;
      break;
    }
    skip_key_ = current_key_;  // Remaining versions are consumed.

    Slice base_slice(base_storage);
    std::vector<Slice> operands;
    operands.reserve(operand_storage.size());
    for (auto it = operand_storage.rbegin(); it != operand_storage.rend();
         ++it) {
      operands.emplace_back(*it);
    }
    if (db_->options_.merge_operator == nullptr ||
        !db_->options_.merge_operator->Merge(current_key_,
                                             has_base ? &base_slice : nullptr,
                                             operands, &current_value_)) {
      status_ = Status::Corruption("merge operands failed to combine");
      return false;
    }
    return true;
  }

  ShardEngine* const db_;
  std::unique_ptr<Iterator> iter_;
  const SequenceNumber snapshot_;
  bool valid_ = false;
  bool iter_already_advanced_ = false;
  std::string current_key_;
  std::string current_value_;
  std::string skip_key_;
  Status status_;
};

std::unique_ptr<Iterator> ShardEngine::NewIterator(const ReadOptions& options) {
  // range_scans is the facade's counter: one client scan may open one
  // iterator per shard.
  std::shared_ptr<const ReadView> view = AcquireReadView();
  SequenceNumber snapshot = options.snapshot_seqno != 0
                                ? options.snapshot_seqno
                                : versions_->last_sequence();
  auto internal = NewInternalIterator(options, *view);
  return std::make_unique<DBIter>(this, std::move(internal), snapshot);
}

SequenceNumber ShardEngine::GetSnapshot() {
  MutexLock lock(&mu_);
  // The sequence load is lock-free, but registration must not race
  // OldestSnapshot (compaction's drop-floor), which reads under mu_.
  SequenceNumber snapshot = versions_->last_sequence();
  snapshots_.insert(snapshot);
  return snapshot;
}

void ShardEngine::ReleaseSnapshot(SequenceNumber snapshot) {
  MutexLock lock(&mu_);
  auto it = snapshots_.find(snapshot);
  if (it != snapshots_.end()) {
    snapshots_.erase(it);
  }
}

SequenceNumber ShardEngine::OldestSnapshot() const {
  return snapshots_.empty() ? versions_->last_sequence()
                            : *snapshots_.begin();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::string ShardEngine::LevelsDebugString() const {
  MutexLock lock(&mu_);
  return versions_->current()->DebugString();
}

std::string ShardEngine::DebugLevelSummary() const {
  MutexLock lock(&mu_);
  std::shared_ptr<const Version> v = versions_->current();
  std::string out;
  char buf[256];
  for (int level = 0; level < v->num_levels(); ++level) {
    const auto& files = v->files(level);
    uint64_t bytes = 0;
    for (const auto& f : files) {
      bytes += f.file_size;
    }
    size_t slot = static_cast<size_t>(
        std::min(level, Statistics::kMaxStatsLevels - 1));
    int learned = 0, fence = 0, unopened = 0;
    v->CountIndexKinds(level, &learned, &fence, &unopened);
    std::snprintf(
        buf, sizeof(buf),
        "L%d%s: %zu files, %llu bytes | compactions=%llu read=%llu "
        "written=%llu | idx learned=%d fence=%d unopened=%d\n",
        level, v->IsTieredLevel(level) ? " (tiered)" : "", files.size(),
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(stats_->compactions_at_level[slot]),
        static_cast<unsigned long long>(
            stats_->compaction_bytes_read_at_level[slot]),
        static_cast<unsigned long long>(
            stats_->compaction_bytes_written_at_level[slot]),
        learned, fence, unopened);
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "running=%d (max observed %llu), subcompaction shards=%llu\n",
      compactions_running_,
      static_cast<unsigned long long>(stats_->max_compactions_running),
      static_cast<unsigned long long>(stats_->subcompactions));
  out += buf;
  for (const auto& rc : running_compactions_) {
    const CompactionPlan& plan = rc.job->plan();
    std::snprintf(buf, sizeof(buf), "  job %llu: L%d->L%d, %zu input file(s)\n",
                  static_cast<unsigned long long>(rc.job_id), plan.input_level,
                  plan.output_level, plan.inputs.size());
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "read path: views published=%llu, table cache hits=%llu misses=%llu, "
      "multiget batches=%llu (%llu keys)\n",
      static_cast<unsigned long long>(stats_->read_views_published.load()),
      static_cast<unsigned long long>(stats_->table_cache_hits.load()),
      static_cast<unsigned long long>(stats_->table_cache_misses.load()),
      static_cast<unsigned long long>(stats_->multiget_batches.load()),
      static_cast<unsigned long long>(stats_->multiget_keys.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "batched io: batches=%llu reads=%llu bytes=%llu, "
      "readahead hits=%llu misses=%llu\n",
      static_cast<unsigned long long>(stats_->io_batches.load()),
      static_cast<unsigned long long>(stats_->io_batch_reads.load()),
      static_cast<unsigned long long>(stats_->io_batch_bytes.load()),
      static_cast<unsigned long long>(stats_->readahead_hits.load()),
      static_cast<unsigned long long>(stats_->readahead_misses.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "learned index: hits=%llu fallbacks=%llu, index bytes loaded=%llu\n",
      static_cast<unsigned long long>(stats_->learned_index_hits.load()),
      static_cast<unsigned long long>(stats_->learned_index_fallbacks.load()),
      static_cast<unsigned long long>(stats_->index_bytes_loaded.load()));
  out += buf;
  Histogram durations = stats_->CompactionDurations();
  if (durations.num() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "job duration micros: n=%llu avg=%.0f p95=%.0f max=%.0f\n",
                  static_cast<unsigned long long>(durations.num()),
                  durations.Average(), durations.Percentile(95.0),
                  durations.max());
    out += buf;
  }
  if (!error_state_.ok()) {
    std::snprintf(buf, sizeof(buf), "background error: [%s/%s] %s\n",
                  ErrorSeverityName(error_state_.severity),
                  ErrorSourceName(error_state_.source),
                  error_state_.status.ToString().c_str());
    out += buf;
  }
  if (!error_state_.first_status.ok()) {
    // First-error provenance: retries and promotions may overwrite the
    // current status, but the original cause is what an operator debugs.
    std::snprintf(buf, sizeof(buf),
                  "first background error: [%s] %s at t=%llu us\n",
                  ErrorSourceName(error_state_.first_source),
                  error_state_.first_status.ToString().c_str(),
                  static_cast<unsigned long long>(
                      error_state_.first_error_micros));
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "bg errors: soft=%llu hard=%llu retries=%llu retry_success=%llu "
      "resume_calls=%llu\n",
      static_cast<unsigned long long>(stats_->bg_error_soft.load()),
      static_cast<unsigned long long>(stats_->bg_error_hard.load()),
      static_cast<unsigned long long>(stats_->bg_retries.load()),
      static_cast<unsigned long long>(stats_->bg_retry_success.load()),
      static_cast<unsigned long long>(stats_->resume_calls.load()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf), "scrub: bytes_verified=%llu corruptions=%llu\n",
      static_cast<unsigned long long>(stats_->scrub_bytes_verified.load()),
      static_cast<unsigned long long>(stats_->scrub_corruptions.load()));
  out += buf;
  return out;
}

std::string ShardEngine::DebugShardSection() const {
  MutexLock lock(&mu_);
  std::shared_ptr<const Version> v = versions_->current();
  std::string out;
  char buf[256];
  for (int level = 0; level < v->num_levels(); ++level) {
    const auto& files = v->files(level);
    uint64_t bytes = 0;
    for (const auto& f : files) {
      bytes += f.file_size;
    }
    if (files.empty()) {
      continue;  // Per-shard sections list only populated levels.
    }
    int learned = 0, fence = 0, unopened = 0;
    v->CountIndexKinds(level, &learned, &fence, &unopened);
    std::snprintf(buf, sizeof(buf),
                  "  L%d%s: %zu files, %llu bytes | idx learned=%d fence=%d "
                  "unopened=%d\n",
                  level, v->IsTieredLevel(level) ? " (tiered)" : "",
                  files.size(), static_cast<unsigned long long>(bytes),
                  learned, fence, unopened);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  running compactions=%d\n",
                compactions_running_);
  out += buf;
  for (const auto& rc : running_compactions_) {
    const CompactionPlan& plan = rc.job->plan();
    std::snprintf(buf, sizeof(buf),
                  "    job %llu: L%d->L%d, %zu input file(s)\n",
                  static_cast<unsigned long long>(rc.job_id), plan.input_level,
                  plan.output_level, plan.inputs.size());
    out += buf;
  }
  if (!error_state_.ok()) {
    std::snprintf(buf, sizeof(buf), "  background error: [%s/%s] %s\n",
                  ErrorSeverityName(error_state_.severity),
                  ErrorSourceName(error_state_.source),
                  error_state_.status.ToString().c_str());
    out += buf;
  }
  return out;
}

int ShardEngine::TotalSortedRuns() const {
  MutexLock lock(&mu_);
  return versions_->current()->TotalSortedRuns();
}

uint64_t ShardEngine::TotalSstBytes() const {
  MutexLock lock(&mu_);
  return versions_->current()->TotalBytes();
}

uint64_t ShardEngine::CountLiveEntries() {
  auto iter = NewIterator(ReadOptions());
  uint64_t count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ++count;
  }
  return count;
}

Status ShardEngine::ValidateTreeInvariants() const {
  std::shared_ptr<const Version> version;
  {
    MutexLock lock(&mu_);
    version = versions_->current();
  }
  const Comparator* ucmp = options_.comparator;
  for (int level = 0; level < version->num_levels(); ++level) {
    const auto& files = version->files(level);
    for (const auto& f : files) {
      if (f.file_number == 0 || f.file_size == 0) {
        return Status::Corruption("file with zero number/size at level " +
                                  std::to_string(level));
      }
      if (ucmp->Compare(f.smallest.user_key(), f.largest.user_key()) > 0) {
        return Status::Corruption("file with inverted key range at level " +
                                  std::to_string(level));
      }
      if (f.num_tombstones > f.num_entries) {
        return Status::Corruption("more tombstones than entries at level " +
                                  std::to_string(level));
      }
      if (f.num_tombstones > 0 && f.oldest_tombstone_time_micros == 0) {
        return Status::Corruption(
            "tombstones without an age stamp at level " +
            std::to_string(level));
      }
      if (!options_.env->FileExists(TableFileName(dbname_, f.file_number))) {
        return Status::Corruption(
            "version references missing table file " +
            std::to_string(f.file_number) + " at level " +
            std::to_string(level));
      }
    }
    // Leveled levels (other than the overlap-tolerant L0) must hold sorted,
    // pairwise-disjoint files: together they form one sorted run.
    if (level > 0 && !version->IsTieredLevel(level)) {
      for (size_t i = 1; i < files.size(); ++i) {
        if (ucmp->Compare(files[i - 1].largest.user_key(),
                          files[i].smallest.user_key()) >= 0) {
          return Status::Corruption("overlapping files in leveled level " +
                                    std::to_string(level));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace lsmlab
