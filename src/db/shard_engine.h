#ifndef LSMLAB_DB_SHARD_ENGINE_H_
#define LSMLAB_DB_SHARD_ENGINE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "compaction/compaction_job.h"
#include "compaction/compaction_picker.h"
#include "db/dbformat.h"
#include "db/error_state.h"
#include "db/statistics.h"
#include "db/table_cache.h"
#include "db/write_batch.h"
#include "io/wal_writer.h"
#include "kvsep/vlog.h"
#include "memtable/memtable.h"
#include "table/iterator.h"
#include "table/table_builder.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "version/version_set.h"

namespace lsmlab {

/// An immutable snapshot of everything a point lookup or iterator needs:
/// the active memtable, the immutable memtables (newest first — probe
/// order), the current Version, and the newest sequence published when the
/// view was built. Reference-counted and swapped behind a dedicated
/// pointer-sized leaf lock, so readers acquire a consistent view with one
/// shared_ptr copy instead of locking the DB mutex and copying vectors.
/// (A std::atomic<shared_ptr> would read nicer but is a hidden spinlock in
/// libstdc++ whose relaxed unlock trips ThreadSanitizer; an explicit leaf
/// mutex costs the same two atomic ops and is model-clean.) The shared_ptrs
/// inside double as lifetime pins: a reader holding a stale view keeps its
/// memtables and SSTables alive even after a flush or compaction replaced
/// them.
struct ReadView {
  std::shared_ptr<MemTable> mem;
  /// Immutable memtables, newest first.
  std::vector<std::shared_ptr<MemTable>> imms;
  std::shared_ptr<const Version> version;
  /// VersionSet::last_sequence() observed at publication. Readers must NOT
  /// use this as their snapshot (it is stale the moment a later write
  /// commits); they re-load the live counter. Kept for diagnostics.
  SequenceNumber published_sequence = 0;
};

/// Process-wide resources a ShardEngine borrows from its owning facade
/// (DESIGN.md, "Sharding architecture"). None are owned by the engine; the
/// facade guarantees they outlive every engine. Sharing them is what makes
/// an N-shard DB one database rather than N: one block cache, one
/// background pool, one compaction rate budget, one Statistics block.
struct ShardResources {
  LruCache* block_cache = nullptr;
  TableCache* table_cache = nullptr;
  ThreadPool* pool = nullptr;
  RateLimiter* rate_limiter = nullptr;  // Null disables throttling.
  Statistics* stats = nullptr;
};

/// ShardEngine is the lsmlab storage engine core: a single-keyspace
/// LSM-tree exposing the external operations of tutorial §2.1.2 (put, get,
/// scan, delete) with every internal design decision (§2.2, §2.3)
/// controlled by Options. One engine owns one directory: its WAL, memtable
/// lifecycle, manifest/VersionSet, error state, and background scheduling.
/// The public entry point is the ShardedDB facade in db/db.h, which routes
/// a range-partitioned keyspace across N engines; with one shard the
/// facade is a pass-through and the engine *is* the database.
///
/// Concurrency model: any number of reader threads; flushes and compactions
/// run on a (shared) background pool. Writers go through a
/// LevelDB/RocksDB-style group-commit queue (leader/follower protocol):
/// each writer enqueues itself under `writer_queue_mu_`; the front writer
/// becomes *leader*, coalesces the batches of compatible queued followers
/// into one group, and commits the whole group — one sequence range, one
/// WAL record, and (for sync writes) one fsync — before waking the
/// followers with their statuses. Only the leader ever runs the
/// write-stall ladder (MakeRoomForWrite) or touches the WAL, so the
/// expensive WAL append + Sync happen entirely outside `mu_`; `mu_` is
/// held only to make room, to assign sequence numbers, and to apply the
/// merged batch to the memtable. Lock ordering: `writer_queue_mu_` is
/// acquired before `mu_`, never after it. Forward iteration only.
///
/// Cross-shard atomicity (two-phase commit, driven by the facade):
/// PrepareWrite appends a *synced* prepare record carrying the shard's
/// slice of a cross-shard batch, without assigning sequences or touching
/// the memtable. After the facade's commit record is durable,
/// CommitPrepared assigns sequences, appends an (unsynced) commit marker,
/// and applies the slice. Recovery stashes prepare payloads and replays
/// them at their marker — or, for ids the facade's commit log proves
/// committed, at end of replay when the marker was lost in a torn tail.
/// WAL files referenced by an outstanding prepare are retained past the
/// normal flush horizon until the marker's log is itself obsolete.
class ShardEngine {
 public:
  /// Opens (creating if configured) the engine at `name`, borrowing the
  /// facade's shared `resources`. `committed_prepares` lists cross-shard
  /// batch ids whose facade commit record survived — prepares for these
  /// ids are applied during recovery even when their commit marker was
  /// lost; it is read only during Open. Assumes `options` were already
  /// validated by the facade.
  static Status Open(const Options& options, const std::string& name,
                     const ShardResources& resources,
                     const std::set<uint64_t>* committed_prepares,
                     std::unique_ptr<ShardEngine>* dbptr);

  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  // --- External operations (tutorial §2.1.2) -------------------------------
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  /// Logical delete: writes a tombstone (§2.1.2).
  Status Delete(const WriteOptions& options, const Slice& key);
  /// Single-delete for keys written at most once; the tombstone annihilates
  /// with the first older put it meets during compaction (§2.3.3).
  Status SingleDelete(const WriteOptions& options, const Slice& key);
  /// Range delete, realized as a snapshot scan writing one tombstone per
  /// live key in [begin, end) — the simple strategy predating native range
  /// tombstones (documented simplification).
  Status DeleteRange(const WriteOptions& options, const Slice& begin,
                     const Slice& end);

  /// Read-modify-write without reading (tutorial §2.2.6): buffers a merge
  /// operand combined with the base value lazily at read/compaction time.
  /// Requires Options::merge_operator.
  Status Merge(const WriteOptions& options, const Slice& key,
               const Slice& operand);

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Batched point lookup: resolves every key under one ReadView (one
  /// atomic acquire for the whole batch) and reorders the work file-by-file
  /// — all memtable probes first, then every filter check, then data-block
  /// reads — so a table's filter and reader are touched once per batch
  /// instead of once per key. Returns one Status per key, aligned with
  /// `keys`; `values` is resized to match. Batch-level statistics
  /// (multiget_batches / multiget_keys / point_lookups) are the facade's to
  /// record — it may split one client batch across several engines.
  std::vector<Status> MultiGet(const ReadOptions& options,
                               const std::vector<Slice>& keys,
                               std::vector<std::string>* values);

  /// Applies all operations in `batch` atomically: one WAL record, one
  /// sequence-number range, all-or-nothing recovery.
  Status Write(const WriteOptions& options, WriteBatch* batch);

  // --- Cross-shard two-phase commit (facade-driven) ------------------------
  /// Phase 1: durably logs `batch` under cross-shard id `id` (synced
  /// prepare record) without assigning sequences or touching the memtable.
  /// The payload is retained (and its WAL protected from deletion) until
  /// CommitPrepared or AbortPrepared resolves the id.
  Status PrepareWrite(const WriteOptions& options, WriteBatch* batch,
                      uint64_t id) EXCLUDES(writer_queue_mu_, mu_);
  /// Phase 2: assigns sequences to the previously prepared `batch`, logs
  /// an (unsynced) commit marker, and applies the batch to the memtable.
  /// Only called after the facade's commit record for `id` is durable.
  Status CommitPrepared(uint64_t id, WriteBatch* batch)
      EXCLUDES(writer_queue_mu_, mu_);
  /// Drops a prepared id (another shard's prepare failed). The prepare
  /// record stays in the WAL; recovery discards prepares whose id neither
  /// has a marker nor appears in the facade's commit log.
  void AbortPrepared(uint64_t id) EXCLUDES(mu_);

  /// Iterator over user keys (newest visible version of each, tombstones
  /// suppressed). Forward-only. Scan statistics (range_scans) are the
  /// facade's to record.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  /// Snapshots pin a sequence number; reads at a snapshot see only writes
  /// with sequence <= it, and compactions preserve what snapshots need.
  SequenceNumber GetSnapshot();
  void ReleaseSnapshot(SequenceNumber snapshot);

  /// Newest committed sequence. The facade reads one per shard (under its
  /// commit lock) to cut a consistent multi-shard snapshot.
  SequenceNumber LastSequence() const { return versions_->last_sequence(); }

  /// Highest cross-shard batch id seen in this shard's WALs during
  /// recovery (0 if none). The facade starts its id counter above the
  /// maximum across shards and the commit log, so a stale prepare record
  /// lingering in a retained WAL can never collide with a fresh batch id
  /// and be resurrected by a later recovery.
  uint64_t max_recovered_prepare_id() const {
    return max_recovered_prepare_id_;
  }

  // --- Internal operations, exposed for control & experiments --------------
  /// Forces the current memtable to disk and waits for the flush.
  Status Flush();
  /// Merges everything down as far as the layout allows (manual, blocking).
  Status CompactRange();
  /// Blocks until no flush or compaction is queued or running.
  Status WaitForBackgroundWork();
  /// Rewrites value logs dropping dead values (WiscKey GC). No-op without
  /// kv separation.
  Status GarbageCollectVlog();

  /// Captures a consistent online checkpoint of this shard into `dir`
  /// (created if absent): seals + fsyncs the active WAL (checkpoint seal —
  /// rotate even when empty, never skip the outgoing sync), then under mu_
  /// hard-links every sealed WAL, every table of the pinned current
  /// version, and every vlog (synced first) into `dir` and writes a fresh
  /// manifest snapshot + CURRENT there. Holding mu_ across the capture
  /// freezes version installs and file GC, so the linked set and the
  /// manifest describe one instant. Transient link failures retry with
  /// capped exponential backoff. Fails (without partial cleanup — the
  /// caller owns the directory) under a hard background error.
  Status CheckpointInto(const std::string& dir)
      EXCLUDES(writer_queue_mu_, mu_);

  /// Rate-limited scrub: walks every live SSTable of the current version
  /// through block-trailer checksum verification (bypassing the block
  /// cache) and every on-disk vlog through record parsing + key echo
  /// checks. Returns the first corruption with file provenance; bumps
  /// scrub_bytes_verified / scrub_corruptions.
  Status VerifyChecksums() EXCLUDES(mu_);

  /// Clears a background-error state after the operator fixed the cause
  /// (freed disk space, remounted the device). For a hard manifest error it
  /// rolls a fresh manifest; for a hard WAL error it rotates the WAL and
  /// flushes the sealed memtable so no acked write depends on the poisoned
  /// log; soft errors are simply cleared and their work rescheduled. A
  /// partially-applied write group (memtable source) is not resumable —
  /// reopen instead. Returns the error still in force if repair fails.
  /// resume_calls statistics are the facade's to record.
  Status Resume() EXCLUDES(writer_queue_mu_, mu_);

  /// Stops accepting background work and wakes waiters. The facade calls
  /// this on every shard before draining the shared pool, so one slow
  /// shard's queue cannot delay another's shutdown. Idempotent; the
  /// destructor also calls it.
  void BeginShutdown() EXCLUDES(mu_);

  // --- Introspection --------------------------------------------------------
  VlogManager* vlog() { return vlog_.get(); }
  /// Current tree shape, one line per non-empty level.
  std::string LevelsDebugString() const;
  /// Multi-line dump of per-level shape and compaction counters plus the
  /// currently running background jobs; for tests and benches. Includes
  /// the process-wide statistics block — byte-identical to the historical
  /// single-engine output, so the facade delegates to it verbatim at N=1.
  std::string DebugLevelSummary() const;
  /// The per-shard portion of DebugLevelSummary (tree shape and running
  /// jobs, no process-wide statistics); the facade stitches one per shard
  /// under a single shared-statistics block at N>1.
  std::string DebugShardSection() const;
  /// Number of sorted runs a point lookup may probe.
  int TotalSortedRuns() const;
  uint64_t TotalSstBytes() const;
  /// Approximate count of live (visible) entries; walks a full iterator.
  uint64_t CountLiveEntries();
  const Options& options() const { return options_; }

  /// Snapshot of the background-error condition (current error, severity,
  /// source, and first-error provenance).
  ErrorState BackgroundErrorState() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return error_state_;
  }

  /// Structural self-check of the LSM invariants (DESIGN.md §4): leveled
  /// levels hold disjoint, sorted files; every file's metadata matches its
  /// contents; no level exceeds num_levels. Returns the first violation.
  /// Intended for tests and debugging; walks file metadata only.
  Status ValidateTreeInvariants() const;

 private:
  ShardEngine(const Options& options, std::string dbname,
              const ShardResources& resources);

  struct Writer;

  Status Initialize(const std::set<uint64_t>* committed_prepares);
  Status Recover(const std::set<uint64_t>* committed_prepares);
  /// Replays one WAL file into L0 tables. Must be called *without* mu_
  /// (BuildTableFromIterator takes it internally); recovery is
  /// single-threaded, so the tables it builds race nothing.
  /// `*stop_replay` is set when a corrupt record was tolerated under
  /// point-in-time recovery: replay must not continue into later logs
  /// (recovering past the corruption would break prefix consistency).
  /// `prepare_stash` accumulates cross-shard prepare payloads (id → batch
  /// rep) across log files; a commit-marker record applies and erases its
  /// stash entry, and Recover resolves leftovers against the facade's
  /// committed-id set. With `tagged_only` (logs below the manifest's log
  /// number, retained only for a cross-shard prepare) normal records are
  /// skipped — their data is already flushed — and a marker retires its
  /// stash entry without re-applying it.
  Status RecoverLogFile(uint64_t log_number, bool tagged_only,
                        SequenceNumber* max_sequence,
                        VersionEdit* edit, bool* stop_replay,
                        std::map<uint64_t, std::string>* prepare_stash)
      EXCLUDES(mu_);
  Status NewMemTableAndLog() REQUIRES(mu_);
  /// Seals the active memtable into imms_ and swaps in a fresh one. The
  /// outgoing WAL is fsynced first so every sealed (non-active) log is a
  /// fully durable prefix — a crash can then only lose the tail of the
  /// *active* WAL, preserving prefix-consistent recovery across log files.
  /// `skip_old_wal_sync` is for Resume(): the outgoing WAL is known-poisoned
  /// and its contents are re-persisted via the flush the caller schedules.
  Status NewMemTableAndLogLocked(bool skip_old_wal_sync = false)
      REQUIRES(mu_);
  std::unique_ptr<MemTable> MakeMemTable() const;

  Status WriteInternal(const WriteOptions& options, ValueType type,
                       const Slice& key, const Slice& value);
  /// Shared core of every write: enqueues onto the group-commit writer
  /// queue and returns once a leader (possibly this writer) has committed
  /// the batch.
  Status WriteBatchInternal(const WriteOptions& options, WriteBatch* batch);
  /// Enqueues `w`, waits for a leader to commit it (or for leadership), and
  /// as leader commits the whole group and hands leadership on.
  Status EnqueueWriter(Writer* w) EXCLUDES(writer_queue_mu_, mu_);
  /// Collects the leader plus compatible followers from the front of
  /// write_queue_ into `group`. Two-phase-commit writers never coalesce:
  /// a prepare/commit leader runs solo, and group building stops at one.
  void BuildWriteGroup(Writer* leader, std::vector<Writer*>* group)
      REQUIRES(writer_queue_mu_);
  /// Leader-only: assigns the group's sequence range, writes one WAL
  /// record (+ optional fsync) outside mu_, applies the merged batch to
  /// the memtable, and publishes the new last_sequence.
  Status CommitWriteGroup(Writer* leader, const std::vector<Writer*>& group)
      EXCLUDES(mu_);
  /// Leader-only: appends + syncs the prepare record for a kPrepare writer
  /// and registers the id in pending_prepares_.
  Status LeaderPrepare(Writer* w) EXCLUDES(mu_);
  /// Leader-only: assigns sequences, appends the commit marker, applies
  /// the batch, and moves the id to committed_prepares_.
  Status LeaderCommitPrepared(Writer* w) EXCLUDES(mu_);
  /// Seals the active memtable via the writer queue (so the swap cannot
  /// race a leader's WAL write); used by Flush(). With `force`, seals even
  /// when the memtable is empty or a hard error is in force (Resume()'s WAL
  /// rotation, which also skips the outgoing fsync — the log is poisoned).
  /// With `for_checkpoint`, rotates even when the memtable is empty but
  /// keeps the outgoing fsync and still fails under a hard error: the
  /// sealed log becomes part of a checkpoint, so it must be durable and
  /// trustworthy.
  Status SealActiveMemTable(bool force = false, bool for_checkpoint = false);
  /// Links `src` to `target`, retrying transient failures with capped
  /// exponential backoff (background_error_retry_initial_micros schedule).
  Status LinkFileWithRetry(const std::string& src, const std::string& target);
  /// Blocks (or fails with Busy under no_slowdown) until the write path has
  /// room; implements the slowdown/stop stall ladder (tutorial §2.2.3).
  /// Only the current write-queue leader may call this. Drops and reacquires
  /// mu_ internally around delay sleeps and stall waits.
  Status MakeRoomForWrite(bool no_slowdown) REQUIRES(mu_);

  /// Builds an SSTable at `level` from `iter`; returns its metadata.
  /// Takes mu_ internally to pin/unpin the output file number.
  Status BuildTableFromIterator(Iterator* iter, int level,
                                uint64_t oldest_tombstone_hint,
                                FileMetaData* meta) EXCLUDES(mu_);
  TableBuilderOptions MakeBuilderOptions(int level) const;

  /// Classifies and records a background error (severity, source, first
  /// cause), bumps the matching stat, and wakes waiters.
  void RecordBackgroundError(const Status& s, ErrorSeverity severity,
                             ErrorSource source) REQUIRES(mu_);
  /// Backoff delay before soft-error retry number `attempt` (0-based).
  uint64_t RetryDelayMicros(int attempt) const;
  /// Sleeps ~`micros` on the calling (pool) thread in small chunks,
  /// returning false early if the DB began shutting down.
  bool SleepForRetry(uint64_t micros) EXCLUDES(mu_);
  /// Pool tasks re-running failed work after backoff.
  void RetryFlushAfterBackoff(uint64_t delay_micros) EXCLUDES(mu_);
  void RetryCompactionAfterBackoff(uint64_t delay_micros) EXCLUDES(mu_);

  void MaybeScheduleFlush() REQUIRES(mu_);
  /// Admission loop: keeps picking and admitting compaction jobs whose
  /// key-ranges and files are disjoint from every running job, until the
  /// picker finds nothing admissible or the concurrency limit is reached.
  void MaybeScheduleCompaction() REQUIRES(mu_);
  void BackgroundFlush() EXCLUDES(mu_);
  /// Pool entry point for one admitted job: runs it off mu_, installs its
  /// edit (or cleans up), unregisters its claims, and re-runs admission.
  void BackgroundCompaction(std::shared_ptr<CompactionJob> job) EXCLUDES(mu_);

  /// Builds the executor context (callbacks, snapshot floor) for a new job.
  CompactionJob::Context MakeCompactionContextLocked() REQUIRES(mu_);
  /// Registers `plan`'s files and key-range claims, bumps the running
  /// count, and schedules the job on the pool.
  void AdmitCompactionLocked(CompactionPlan plan) REQUIRES(mu_);
  /// Drops a finished job's file and range claims.
  void UnregisterCompactionLocked(uint64_t job_id) REQUIRES(mu_);
  /// Applies a finished job's edit atomically, releases its output pins,
  /// records per-level stats, and collects obsolete inputs.
  Status InstallCompactionLocked(CompactionJob* job) REQUIRES(mu_);
  /// Concurrency cap: max_background_compactions, defaulting to the pool
  /// size when 0.
  int MaxConcurrentCompactions() const;

  void RemoveObsoleteFiles() REQUIRES(mu_);

  /// The oldest WAL the engine may let go of, given `normal_min` (the
  /// oldest log the memtable pipeline still needs). Prunes
  /// committed_prepares_ entries whose marker log is itself below
  /// normal_min, then clamps to the oldest log any outstanding prepare
  /// still lives in — a prepared-but-unresolved id must survive a crash,
  /// and a committed id's payload must survive until its marker's log is
  /// obsolete (recovery then sees the marker — or neither record — and
  /// never re-applies the flushed payload).
  uint64_t ClampWalRetentionLocked(uint64_t normal_min) REQUIRES(mu_);

  /// Deletes on-disk WALs below `keep_floor`, strictly oldest-first and
  /// stopping at the first file that refuses to go. Ordered deletion keeps
  /// the surviving logs a suffix of history, which recovery's
  /// prepare/marker reasoning depends on.
  void DeleteObsoleteWalsLocked(uint64_t keep_floor) REQUIRES(mu_);

  SequenceNumber OldestSnapshot() const REQUIRES(mu_);

  Status ResolveValue(const Slice& user_key, ValueType type,
                      const std::string& raw, std::string* value);

  /// Slow path for keys whose newest visible entry is a merge operand:
  /// walks all versions of `key` at `snapshot` within `view`, collects
  /// operands down to the base value, and applies the merge operator.
  Status ResolveMerge(const ReadOptions& options, const ReadView& view,
                      const Slice& key, SequenceNumber snapshot,
                      std::string* value);

  // --- Low-contention read path -----------------------------------------
  /// One pointer copy under the dedicated view lock. Never null after
  /// Initialize succeeds.
  std::shared_ptr<const ReadView> AcquireReadView() const
      EXCLUDES(read_view_mu_) {
    MutexLock lock(&read_view_mu_);
    return read_view_;
  }
  /// Rebuilds the view from {mem_, imms_, versions_->current()} and swaps
  /// it in under read_view_mu_. Called only by the paths that change view
  /// membership: Recover, memtable seal, flush install, and compaction
  /// install.
  void PublishReadView() REQUIRES(mu_) EXCLUDES(read_view_mu_);
  /// Resolves the open TableReader for `f`, preferring the per-file pin in
  /// f.table_handle (one atomic load, no shard lock) and falling back to
  /// the sharded TableCache on first touch, then publishing the result into
  /// the pin for every later reader of any Version containing the file.
  Status GetTableReader(const FileMetaData& f,
                        std::shared_ptr<TableReader>* reader);

  class DBIter;
  std::unique_ptr<Iterator> NewInternalIterator(const ReadOptions& options,
                                                const ReadView& view);
  /// Fetches the raw (unresolved) vlog pointer currently stored for `key`;
  /// NotFound when the key is deleted, absent, or stored inline.
  Status GetRawPointer(const ReadOptions& options, const Slice& key,
                       std::string* raw);

  // ---------------------------------------------------------------------
  const Options options_;  // Normalized copy (env/clock/comparator filled).
  const std::string dbname_;
  InternalKeyComparator internal_comparator_;

  // Facade-owned shared resources (see ShardResources). Never null.
  Statistics* const stats_;
  LruCache* const block_cache_;
  TableCache* const table_cache_;
  ThreadPool* const pool_;
  RateLimiter* const compaction_rate_limiter_;  // Null disables throttling.
  /// This engine's directory scope in the shared table cache; qualifies
  /// every (file number → reader / block-cache key) translation.
  uint64_t cache_dir_id_ = 0;

  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<CompactionPicker> picker_;
  std::unique_ptr<VlogManager> vlog_;
  std::vector<double> monkey_bits_;  // Per-level filter bits (Monkey).

  /// The DB mutex: root of the lock hierarchy (see DESIGN.md, "Locking
  /// discipline"). May be held while taking any leaf lock (VersionSet,
  /// picker, caches, pool) but never while taking writer_queue_mu_.
  mutable Mutex mu_{LockRank::kEngineMu, "shard.mu"};
  CondVar background_cv_;

  std::shared_ptr<MemTable> mem_ GUARDED_BY(mu_);
  std::deque<std::shared_ptr<MemTable>> imms_ GUARDED_BY(mu_);  // Oldest 1st.
  /// Leaf lock for the published view pointer only. Its critical section is
  /// a shared_ptr copy (two atomic ops), so readers never wait on flush
  /// installs, manifest writes, or compaction bookkeeping, all of which
  /// hold mu_. Ordered after mu_ (publishers hold mu_ while swapping);
  /// readers take it alone.
  mutable Mutex read_view_mu_{LockRank::kReadView, "shard.read_view_mu"};
  /// Published read snapshot (see ReadView). Republished by the membership-
  /// changing paths (seal, flush install, compaction install, recovery)
  /// while they hold mu_.
  std::shared_ptr<const ReadView> read_view_ GUARDED_BY(read_view_mu_);
  uint64_t log_file_number_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> log_file_ GUARDED_BY(mu_);
  std::unique_ptr<wal::Writer> log_ GUARDED_BY(mu_);
  /// Log numbers backing the immutable memtables (oldest first).
  std::deque<uint64_t> imm_log_numbers_ GUARDED_BY(mu_);

  /// Cross-shard ids prepared in this engine but not yet committed or
  /// aborted, mapped to the log file holding their prepare record (WAL
  /// retention floor).
  std::map<uint64_t, uint64_t> pending_prepares_ GUARDED_BY(mu_);
  /// Committed cross-shard ids whose prepare payload must stay replayable:
  /// maps id → {prepare log, marker log}. An entry prunes once the marker
  /// log falls below the normal flush horizon (its applied data is then in
  /// SSTables).
  struct CommittedPrepare {
    uint64_t prepare_log = 0;
    uint64_t marker_log = 0;
  };
  std::map<uint64_t, CommittedPrepare> committed_prepares_ GUARDED_BY(mu_);
  /// Highest cross-shard id seen in any WAL record during recovery; written
  /// single-threaded before the engine goes live, read-only afterwards.
  uint64_t max_recovered_prepare_id_ = 0;

  std::multiset<SequenceNumber> snapshots_ GUARDED_BY(mu_);

  bool flush_scheduled_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  /// Background-error condition: severity (soft errors auto-retry with
  /// backoff; hard errors put the DB in read-only mode until Resume()),
  /// source, and first-error provenance. Replaces the old sticky
  /// `background_error_` poison bit.
  ErrorState error_state_ GUARDED_BY(mu_);
  /// Consecutive failed attempts of the flush / compaction currently being
  /// retried; reset on success, promoted to a hard error on exhaustion.
  int flush_retry_attempts_ GUARDED_BY(mu_) = 0;
  int compaction_retry_attempts_ GUARDED_BY(mu_) = 0;
  /// True while a compaction retry is sleeping out its backoff: gates
  /// MaybeScheduleCompaction so the backoff cannot be defeated by an
  /// immediate re-admission, and keeps WaitForBackgroundWork waiting.
  bool compaction_retry_pending_ GUARDED_BY(mu_) = false;

  /// One entry per admitted-but-unfinished compaction job. The claims are
  /// the job's input∪overlap user-key hull at its input and output levels;
  /// the picker refuses any plan whose hull intersects a claim at a shared
  /// level, which is what makes concurrent installs conflict-free.
  struct RunningCompaction {
    uint64_t job_id = 0;
    std::shared_ptr<CompactionJob> job;
    std::vector<ClaimedRange> claims;
  };
  std::vector<RunningCompaction> running_compactions_ GUARDED_BY(mu_);
  /// File numbers owned by running jobs (inputs and overlap); the picker
  /// treats them as untouchable.
  std::set<uint64_t> compacting_files_ GUARDED_BY(mu_);
  int compactions_running_ GUARDED_BY(mu_) = 0;
  uint64_t next_compaction_job_id_ GUARDED_BY(mu_) = 1;
  /// True while CompactRange holds the tree exclusively: blocks new
  /// automatic admissions.
  bool manual_compaction_active_ GUARDED_BY(mu_) = false;

  /// Table files currently being written (flush/compaction outputs) that no
  /// Version references yet. RemoveObsoleteFiles must not delete them.
  /// Entries are erased once the file is installed in a Version or its
  /// builder gave up and removed it.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mu_);

  /// Group-commit writer queue (leader/follower). Acquired before mu_,
  /// never while holding mu_. The front writer is the current leader; it is
  /// the only thread allowed in MakeRoomForWrite, the WAL, or group_batch_
  /// until it hands leadership to the next queued writer.
  Mutex writer_queue_mu_ ACQUIRED_BEFORE(mu_){LockRank::kWriterQueue,
                                              "shard.writer_queue_mu"};
  std::deque<Writer*> write_queue_ GUARDED_BY(writer_queue_mu_);
  /// Leader-only scratch batch holding a coalesced group (> 1 writer).
  /// Owned by whichever thread is leader — an exclusion the analysis cannot
  /// express, so it carries no GUARDED_BY; the leader protocol in
  /// EnqueueWriter/CommitWriteGroup is its lock.
  WriteBatch group_batch_;
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_SHARD_ENGINE_H_
