// Background half of ShardEngine: flushes, compactions, file garbage
// collection, and value-log GC. Split from shard_engine.cc for readability;
// same class.

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "db/shard_engine.h"
#include "db/filename.h"
#include "db/internal_iterators.h"
#include "table/merging_iterator.h"
#include "table/table_builder.h"
#include "util/backoff.h"
#include "util/clock.h"
#include "util/logging.h"

namespace lsmlab {

namespace {
/// Charge the rate limiter in chunks so throttling is smooth but cheap.
constexpr uint64_t kRateLimitChunk = 256 << 10;
}  // namespace

TableBuilderOptions ShardEngine::MakeBuilderOptions(int level) const {
  TableBuilderOptions topt;
  topt.comparator = &internal_comparator_;
  topt.block_size = options_.block_size;
  topt.block_restart_interval = options_.block_restart_interval;
  topt.creation_time_micros = options_.clock->NowMicros();
  topt.index_type = ResolveIndexTypeForLevel(options_, level);
  topt.learned_index_epsilon = options_.learned_index_epsilon;

  if (options_.filter_policy != nullptr) {
    double bits = monkey_bits_[static_cast<size_t>(
        std::min(level, options_.num_levels - 1))];
    topt.filter_bits_per_key = bits;
    if (options_.filter_allocation == FilterAllocation::kMonkey) {
      // Monkey varies bits per level; build with a per-level Bloom filter.
      // (Monkey allocation presumes Bloom-style filters; a level whose
      // optimal FPR reaches 1.0 gets no filter at all.)
      topt.filter_policy =
          bits >= 0.5 ? NewBloomFilterPolicy(bits) : nullptr;
    } else {
      topt.filter_policy = options_.filter_policy;
    }
  }
  return topt;
}

Status ShardEngine::BuildTableFromIterator(Iterator* iter, int level,
                                  uint64_t oldest_tombstone_hint,
                                  FileMetaData* meta) {
  uint64_t file_number;
  {
    MutexLock lock(&mu_);
    file_number = versions_->NewFileNumber();
    // The file exists on disk before any Version references it; pin it so a
    // concurrent RemoveObsoleteFiles does not garbage-collect it mid-build.
    // On success the caller erases the pin once the file is installed.
    pending_outputs_.insert(file_number);
  }
  auto unpin = [&] {
    MutexLock lock(&mu_);
    pending_outputs_.erase(file_number);
  };
  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<WritableFile> file;
  Status s = options_.env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    unpin();
    return s;
  }

  TableBuilderOptions topt = MakeBuilderOptions(level);
  topt.oldest_tombstone_time_micros = oldest_tombstone_hint;
  TableBuilder builder(topt, file.get());

  InternalKey smallest, largest;
  bool first = true;
  uint64_t rate_limit_pending = 0;
  for (; iter->Valid(); iter->Next()) {
    if (first) {
      smallest.DecodeFrom(iter->key());
      first = false;
    }
    largest.DecodeFrom(iter->key());
    builder.Add(iter->key(), iter->value());

    // Flushes and compactions share one background-I/O budget; flushes
    // request at high priority so a compaction burst cannot stall them
    // into a write stop (SILK, tutorial §2.2.3).
    rate_limit_pending += iter->key().size() + iter->value().size();
    if (rate_limit_pending >= kRateLimitChunk) {
      compaction_rate_limiter_->Request(rate_limit_pending,
                                        /*high_priority=*/true);
      rate_limit_pending = 0;
    }
  }
  if (rate_limit_pending > 0) {
    compaction_rate_limiter_->Request(rate_limit_pending,
                                      /*high_priority=*/true);
  }
  if (!iter->status().ok()) {
    builder.Abandon();
    // Best-effort cleanup of the abandoned output; a leftover file is
    // reclaimed by RemoveObsoleteFiles.
    (void)options_.env->RemoveFile(fname);
    unpin();
    return iter->status();
  }
  if (first) {
    // Nothing to write.
    builder.Abandon();
    // Best effort; the empty output is orphaned either way.
    (void)options_.env->RemoveFile(fname);
    unpin();
    meta->file_number = 0;
    return Status::OK();
  }

  s = builder.Finish();
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    // Best effort; a leftover is reclaimed by RemoveObsoleteFiles.
    (void)options_.env->RemoveFile(fname);
    unpin();
    return s;
  }

  meta->file_number = file_number;
  meta->file_size = builder.FileSize();
  meta->smallest = smallest;
  meta->largest = largest;
  meta->num_entries = builder.properties().num_entries;
  meta->num_tombstones = builder.properties().num_tombstones;
  meta->creation_time_micros = builder.properties().creation_time_micros;
  meta->oldest_tombstone_time_micros =
      builder.properties().num_tombstones > 0
          ? builder.properties().oldest_tombstone_time_micros
          : 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Flush
// ---------------------------------------------------------------------------

void ShardEngine::MaybeScheduleFlush() {
  // A hard error gates new work; a soft one does not — its retry is already
  // scheduled and flush_scheduled_ stays true across the backoff window.
  if (flush_scheduled_ || shutting_down_ || imms_.empty() ||
      error_state_.hard()) {
    return;
  }
  flush_scheduled_ = true;
  pool_->Schedule([this] { BackgroundFlush(); }, ThreadPool::Priority::kHigh);
}

void ShardEngine::BackgroundFlush() {
  std::shared_ptr<MemTable> imm;
  {
    MutexLock lock(&mu_);
    if (shutting_down_ || imms_.empty()) {
      flush_scheduled_ = false;
      background_cv_.SignalAll();
      return;
    }
    imm = imms_.front();
  }

  // Build the L0 run outside the lock (tutorial §2.1.2: flush).
  MemTableIteratorAdapter iter(imm);
  iter.SeekToFirst();
  FileMetaData meta;
  Status s = BuildTableFromIterator(&iter, /*level=*/0,
                                    options_.clock->NowMicros(), &meta);
  bool manifest_failure = false;

  MutexLock lock(&mu_);
  if (meta.file_number != 0) {
    // Safe to unpin here: RemoveObsoleteFiles also needs mu_, and we hold it
    // continuously until the file is installed in a Version below.
    pending_outputs_.erase(meta.file_number);
  }
  if (s.ok() && meta.file_number != 0) {
    VersionEdit edit;
    edit.AddFile(0, meta);
    // Everything in logs older than the next immutable (or the active log)
    // is now durable in SSTables, so the manifest's log number — the "all
    // normal records below this are flushed" watermark — advances to the
    // true floor. WALs an outstanding cross-shard prepare still lives in
    // are retained separately (the clamped deletion gates below and in
    // RemoveObsoleteFiles); recovery rescans those pre-watermark logs for
    // tagged records only, never re-applying flushed normal records.
    uint64_t min_log = imm_log_numbers_.size() > 1 ? imm_log_numbers_[1]
                                                   : log_file_number_;
    edit.SetLogNumber(min_log);
    s = versions_->LogAndApply(&edit);
    manifest_failure = !s.ok();
    if (s.ok()) {
      stats_->flushes.fetch_add(1, std::memory_order_relaxed);
      stats_->flush_bytes_written.fetch_add(meta.file_size,
                                           std::memory_order_relaxed);
    }
  } else if (s.ok()) {
    // Memtable held nothing (possible after DeleteRange on empty DB).
    stats_->flushes.fetch_add(1, std::memory_order_relaxed);
  }

  if (s.ok()) {
    imms_.pop_front();
    // The flushed memtable left the view's membership (its data now lives
    // in the installed L0 file); readers holding the old view still pin it.
    PublishReadView();
    imm_log_numbers_.pop_front();
    uint64_t keep_floor = ClampWalRetentionLocked(
        imm_log_numbers_.empty() ? log_file_number_
                                 : imm_log_numbers_.front());
    DeleteObsoleteWalsLocked(keep_floor);
    if (flush_retry_attempts_ > 0) {
      stats_->bg_retry_success.fetch_add(1, std::memory_order_relaxed);
      flush_retry_attempts_ = 0;
    }
    if (!error_state_.ok() && !error_state_.hard() &&
        error_state_.source == ErrorSource::kFlush) {
      error_state_.ClearCurrent();  // The retried flush repaired it.
    }
    LSMLAB_LOG_INFO(options_.info_log.get(),
                    "flushed memtable -> L0 file %llu (%llu bytes)",
                    static_cast<unsigned long long>(meta.file_number),
                    static_cast<unsigned long long>(meta.file_size));
  } else if (manifest_failure) {
    // The manifest may now end in a torn record; appending to it again is
    // never safe. Hard error — Resume() rolls to a fresh manifest.
    RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kManifest);
  } else if (options_.max_background_error_retries <= 0 ||
             flush_retry_attempts_ >= options_.max_background_error_retries) {
    // Retries disabled or exhausted: promote to hard (read-only mode).
    RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kFlush);
  } else {
    // Transient build failure (e.g. ENOSPC writing the L0 file): the
    // memtable is untouched, so the flush is safely repeatable. Keep
    // flush_scheduled_ true across the backoff window — it both prevents a
    // duplicate schedule and keeps Flush()/close paths waiting.
    const int attempt = flush_retry_attempts_++;
    RecordBackgroundError(s, ErrorSeverity::kSoft, ErrorSource::kFlush);
    stats_->bg_retries.fetch_add(1, std::memory_order_relaxed);
    const uint64_t delay = RetryDelayMicros(attempt);
    LSMLAB_LOG_WARN(options_.info_log.get(),
                    "flush retry %d in %llu us: %s", attempt + 1,
                    static_cast<unsigned long long>(delay),
                    s.ToString().c_str());
    pool_->Schedule([this, delay] { RetryFlushAfterBackoff(delay); },
                    ThreadPool::Priority::kHigh);
    background_cv_.SignalAll();
    return;
  }

  flush_scheduled_ = false;
  if (!imms_.empty()) {
    MaybeScheduleFlush();
  }
  MaybeScheduleCompaction();
  background_cv_.SignalAll();
}

Status ShardEngine::Flush() {
  // Seal through the writer queue: swapping the active memtable (and WAL
  // handles) must not race a leader's WAL write, which happens outside mu_.
  Status s = SealActiveMemTable();
  if (!s.ok()) {
    return s;
  }
  MutexLock lock(&mu_);
  // Soft errors keep us waiting — their retries normally drain imms_; if
  // they exhaust, promotion to hard wakes us with the terminal status.
  while (!error_state_.hard() && !imms_.empty()) {
    background_cv_.Wait(mu_);
  }
  return error_state_.hard() ? error_state_.status : Status::OK();
}

// ---------------------------------------------------------------------------
// Compaction: the background job engine
//
// The picker produces CompactionPlans; AdmitCompactionLocked turns each plan
// into a CompactionJob, registers its file and key-range claims, and hands it
// to the pool. Multiple jobs run concurrently when their claims are disjoint
// (the picker refuses conflicting plans), so each finished job can install
// its VersionEdit without coordinating with its siblings.
// ---------------------------------------------------------------------------

int ShardEngine::MaxConcurrentCompactions() const {
  if (options_.max_background_compactions > 0) {
    return options_.max_background_compactions;
  }
  return std::max(1, options_.background_threads);
}

CompactionJob::Context ShardEngine::MakeCompactionContextLocked() {
  CompactionJob::Context ctx;
  ctx.options = &options_;
  ctx.dbname = dbname_;
  ctx.icmp = &internal_comparator_;
  ctx.table_cache = table_cache_;
  ctx.cache_dir_id = cache_dir_id_;
  ctx.vlog = vlog_.get();
  ctx.rate_limiter = compaction_rate_limiter_;
  ctx.stats = stats_;
  ctx.pool = pool_;
  // Fixed at admission: the floor only rises afterwards, so using the
  // admission-time value is merely conservative (drops less).
  ctx.oldest_snapshot = OldestSnapshot();
  ctx.pin_new_file_number = [this] {
    MutexLock lock(&mu_);
    uint64_t number = versions_->NewFileNumber();
    // The file exists on disk before any Version references it; pin it so a
    // concurrent RemoveObsoleteFiles does not garbage-collect it mid-build.
    pending_outputs_.insert(number);
    return number;
  };
  ctx.unpin_output = [this](uint64_t number) {
    MutexLock lock(&mu_);
    pending_outputs_.erase(number);
  };
  ctx.should_abort = [this] {
    MutexLock lock(&mu_);
    return shutting_down_;
  };
  ctx.make_builder_options = [this](int level) {
    return MakeBuilderOptions(level);
  };
  return ctx;
}

void ShardEngine::AdmitCompactionLocked(CompactionPlan plan) {
  RunningCompaction rc;
  rc.job_id = next_compaction_job_id_++;

  // Claim the plan's user-key hull at both levels it touches; the picker
  // rejects any overlapping plan until the claims are dropped.
  std::string smallest, largest;
  plan.KeyRange(&smallest, &largest);
  rc.claims.push_back({plan.input_level, smallest, largest});
  if (plan.output_level != plan.input_level) {
    rc.claims.push_back({plan.output_level, smallest, largest});
  }
  for (const auto& f : plan.inputs) {
    compacting_files_.insert(f.file_number);
  }
  for (const auto& f : plan.overlap) {
    compacting_files_.insert(f.file_number);
  }

  auto job = std::make_shared<CompactionJob>(rc.job_id, std::move(plan),
                                             MakeCompactionContextLocked());
  rc.job = job;
  LSMLAB_LOG_INFO(options_.info_log.get(), "job %llu admitted: %s",
                  static_cast<unsigned long long>(rc.job_id),
                  job->plan().DebugString().c_str());
  running_compactions_.push_back(std::move(rc));
  ++compactions_running_;
  stats_->OnCompactionAdmitted();
  pool_->Schedule([this, job] { BackgroundCompaction(job); },
                  ThreadPool::Priority::kLow);
}

void ShardEngine::UnregisterCompactionLocked(uint64_t job_id) {
  for (auto it = running_compactions_.begin(); it != running_compactions_.end();
       ++it) {
    if (it->job_id != job_id) {
      continue;
    }
    const CompactionPlan& plan = it->job->plan();
    for (const auto& f : plan.inputs) {
      compacting_files_.erase(f.file_number);
    }
    for (const auto& f : plan.overlap) {
      compacting_files_.erase(f.file_number);
    }
    running_compactions_.erase(it);
    break;
  }
  --compactions_running_;
  stats_->OnCompactionFinished();
}

void ShardEngine::MaybeScheduleCompaction() {
  // Re-evaluate after every admission: the previous job's claims change
  // what remains admissible, and a single pass would leave admissible
  // disjoint work idle until the next flush. A pending retry holds the
  // admission loop closed for the backoff window (re-picking immediately
  // would defeat the backoff); a soft *flush* error does not block
  // compactions.
  if (shutting_down_ || manual_compaction_active_ || error_state_.hard() ||
      compaction_retry_pending_) {
    return;
  }
  const int limit = MaxConcurrentCompactions();
  while (compactions_running_ < limit) {
    std::vector<ClaimedRange> claims;
    int deepest_output = -1;
    for (const auto& rc : running_compactions_) {
      for (const auto& claim : rc.claims) {
        deepest_output = std::max(deepest_output, claim.level);
        claims.push_back(claim);
      }
    }
    PickContext pick_ctx;
    pick_ctx.busy_files = &compacting_files_;
    pick_ctx.claimed = &claims;
    pick_ctx.deepest_running_output = deepest_output;
    auto plan = picker_->Pick(*versions_->current(),
                              options_.clock->NowMicros(), pick_ctx);
    if (!plan.has_value()) {
      return;
    }
    AdmitCompactionLocked(std::move(*plan));
  }
}

void ShardEngine::BackgroundCompaction(std::shared_ptr<CompactionJob> job) {
  const uint64_t start_micros = options_.clock->NowMicros();
  Status s;
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      s = Status::Aborted("shutting down");
    }
  }
  bool run_failed = false;
  if (s.ok()) {
    s = job->Run();
    run_failed = !s.ok();
  }

  bool installed = false;
  if (s.ok()) {
    MutexLock lock(&mu_);
    s = InstallCompactionLocked(job.get());
    installed = s.ok();
  } else {
    job->Cleanup();
  }

  // Leaper-inspired cache re-warm: immediately reload the hot region that
  // the compaction displaced (tutorial §2.1.3). Outside the lock.
  if (installed && options_.cache_rewarm_after_compaction &&
      block_cache_ != nullptr) {
    for (const auto& meta : job->outputs()) {
      std::shared_ptr<TableReader> reader;
      if (table_cache_
              ->GetReader(cache_dir_id_, meta.file_number, meta.file_size,
                          &reader)
              .ok()) {
        reader->WarmCache();
      }
    }
  }

  const uint64_t duration_micros = options_.clock->NowMicros() - start_micros;
  MutexLock lock(&mu_);
  stats_->RecordCompactionDuration(duration_micros);
  if (installed && compaction_retry_attempts_ > 0) {
    stats_->bg_retry_success.fetch_add(1, std::memory_order_relaxed);
    compaction_retry_attempts_ = 0;
    if (!error_state_.ok() && !error_state_.hard() &&
        error_state_.source == ErrorSource::kCompaction) {
      error_state_.ClearCurrent();
    }
  }
  if (!s.ok() && !s.IsAborted()) {
    // Shutdown aborts are expected and must not poison the DB status.
    if (!run_failed) {
      // LogAndApply failed: the manifest may end in a torn record, so no
      // further append to it is safe. Hard error; Resume() rolls it.
      RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kManifest);
    } else if (options_.max_background_error_retries <= 0 ||
               compaction_retry_attempts_ >=
                   options_.max_background_error_retries) {
      RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kCompaction);
    } else {
      // The job's outputs were cleaned up and no Version changed, so the
      // same work is safely repickable. Hold admissions closed for the
      // backoff window, then let the picker rediscover the work.
      const int attempt = compaction_retry_attempts_++;
      RecordBackgroundError(s, ErrorSeverity::kSoft, ErrorSource::kCompaction);
      stats_->bg_retries.fetch_add(1, std::memory_order_relaxed);
      compaction_retry_pending_ = true;
      const uint64_t delay = RetryDelayMicros(attempt);
      LSMLAB_LOG_WARN(options_.info_log.get(),
                      "compaction retry %d in %llu us: %s", attempt + 1,
                      static_cast<unsigned long long>(delay),
                      s.ToString().c_str());
      pool_->Schedule([this, delay] { RetryCompactionAfterBackoff(delay); },
                      ThreadPool::Priority::kLow);
    }
  }
  UnregisterCompactionLocked(job->id());
  MaybeScheduleCompaction();  // The freed claims may unblock more work.
  background_cv_.SignalAll();
}

Status ShardEngine::InstallCompactionLocked(CompactionJob* job) {
  Status s = versions_->LogAndApply(job->edit());
  for (const auto& meta : job->outputs()) {
    pending_outputs_.erase(meta.file_number);  // Installed (or doomed).
  }
  if (!s.ok()) {
    return s;
  }
  // New Version is current: route new readers to it.
  PublishReadView();
  const CompactionPlan& plan = job->plan();
  stats_->compactions.fetch_add(1, std::memory_order_relaxed);
  stats_->RecordCompactionAtLevel(plan.output_level, job->bytes_read(),
                                 job->bytes_written());
  LSMLAB_LOG_INFO(
      options_.info_log.get(),
      "job %llu installed: L%d->L%d in %d shard(s), %llu in, %llu out",
      static_cast<unsigned long long>(job->id()), plan.input_level,
      plan.output_level, job->num_shards(),
      static_cast<unsigned long long>(job->bytes_read()),
      static_cast<unsigned long long>(job->bytes_written()));
  RemoveObsoleteFiles();
  return s;
}

Status ShardEngine::CompactRange() {
  Status s = Flush();
  if (!s.ok()) {
    return s;
  }
  // Drain the automatic backlog first, then force every level down.
  s = WaitForBackgroundWork();
  if (!s.ok()) {
    return s;
  }

  // Exclusive mode: block new automatic admissions, then wait out any job
  // admitted between the drain above and taking the lock.
  {
    MutexLock lock(&mu_);
    manual_compaction_active_ = true;
    while (compactions_running_ != 0 && !error_state_.hard()) {
      background_cv_.Wait(mu_);
    }
    if (error_state_.hard()) {
      manual_compaction_active_ = false;
      background_cv_.SignalAll();
      return error_state_.status;
    }
  }

  while (s.ok()) {
    std::shared_ptr<CompactionJob> job;
    {
      MutexLock lock(&mu_);
      std::optional<CompactionPlan> plan;
      const Version& v = *versions_->current();
      for (int level = 0; level < v.num_levels() - 1; ++level) {
        if (v.NumFiles(level) > 0) {
          plan = picker_->PickManual(v, level);
          break;
        }
      }
      if (!plan.has_value()) {
        // Compact a multi-run last level down to one run (pure tiering).
        int last = v.num_levels() - 1;
        if (v.NumFiles(last) > 1 && v.IsTieredLevel(last)) {
          plan = picker_->PickManual(v, last);
        }
      }
      if (!plan.has_value()) {
        break;
      }
      job = std::make_shared<CompactionJob>(next_compaction_job_id_++,
                                            std::move(*plan),
                                            MakeCompactionContextLocked());
    }
    s = job->Run();
    if (s.ok()) {
      MutexLock lock(&mu_);
      s = InstallCompactionLocked(job.get());
      if (!s.ok()) {
        // Manifest append failed mid-manual-compaction: same torn-record
        // hazard as the background path, and equally hard.
        RecordBackgroundError(s, ErrorSeverity::kHard, ErrorSource::kManifest);
      }
    } else {
      job->Cleanup();
    }
  }

  {
    MutexLock lock(&mu_);
    manual_compaction_active_ = false;
    MaybeScheduleCompaction();
    background_cv_.SignalAll();
  }
  return s;
}

Status ShardEngine::WaitForBackgroundWork() {
  MutexLock lock(&mu_);
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  while (!error_state_.hard() &&
         (flush_scheduled_ || compactions_running_ > 0 || !imms_.empty() ||
          compaction_retry_pending_ ||
          // Nothing running: an unconstrained pick now equals what the
          // admission loop would see, so "no plan" means the tree is fully
          // settled.
          picker_->Pick(*versions_->current(), options_.clock->NowMicros())
              .has_value())) {
    background_cv_.Wait(mu_);
  }
  return error_state_.hard() ? error_state_.status : Status::OK();
}

// ---------------------------------------------------------------------------
// Background-error recovery (DESIGN.md, "Failure model & recovery")
// ---------------------------------------------------------------------------

void ShardEngine::RecordBackgroundError(const Status& s, ErrorSeverity severity,
                               ErrorSource source) {
  const bool was_hard = error_state_.hard();
  error_state_.Record(s, severity, source, options_.clock->NowMicros());
  if (severity == ErrorSeverity::kSoft) {
    stats_->bg_error_soft.fetch_add(1, std::memory_order_relaxed);
  }
  if (!was_hard && error_state_.hard()) {
    stats_->bg_error_hard.fetch_add(1, std::memory_order_relaxed);
    LSMLAB_LOG_WARN(options_.info_log.get(),
                    "entering read-only mode: [%s/%s] %s",
                    ErrorSeverityName(error_state_.severity),
                    ErrorSourceName(error_state_.source),
                    s.ToString().c_str());
  }
  // Stalled writers and Flush()/WaitForBackgroundWork waiters re-examine
  // the error state.
  background_cv_.SignalAll();
}

uint64_t ShardEngine::RetryDelayMicros(int attempt) const {
  ExponentialBackoff backoff(options_.background_error_retry_initial_micros,
                             options_.background_error_retry_max_micros);
  return backoff.DelayMicros(attempt);
}

bool ShardEngine::SleepForRetry(uint64_t micros) {
  // Sleep in short chunks so shutdown never waits out a full backoff
  // window. The pool has no delayed scheduling; burning a worker for the
  // (capped, sub-second) delay is acceptable at lsmlab's scale.
  constexpr uint64_t kChunkMicros = 10 * 1000;
  uint64_t remaining = micros;
  while (true) {
    {
      MutexLock lock(&mu_);
      if (shutting_down_) {
        return false;
      }
    }
    if (remaining == 0) {
      return true;
    }
    const uint64_t step = std::min(remaining, kChunkMicros);
    options_.clock->SleepForMicros(step);
    remaining -= step;
  }
}

void ShardEngine::RetryFlushAfterBackoff(uint64_t delay_micros) {
  if (!SleepForRetry(delay_micros)) {
    // Shutting down: release the flush slot so teardown waiters make
    // progress.
    MutexLock lock(&mu_);
    flush_scheduled_ = false;
    background_cv_.SignalAll();
    return;
  }
  {
    MutexLock lock(&mu_);
    if (error_state_.hard()) {
      // A hard error landed during the backoff window; the DB is read-only
      // and flushing now would append to a possibly-torn manifest (and, on
      // success, delete the old WAL). Release the slot; Resume() reschedules.
      flush_scheduled_ = false;
      background_cv_.SignalAll();
      return;
    }
    if (!error_state_.ok() && error_state_.source == ErrorSource::kFlush) {
      // Drop the stale soft status before re-attempting; a new failure
      // re-records it (first-error provenance is preserved either way).
      error_state_.ClearCurrent();
    }
  }
  BackgroundFlush();  // flush_scheduled_ is still ours.
}

void ShardEngine::RetryCompactionAfterBackoff(uint64_t delay_micros) {
  const bool proceed = SleepForRetry(delay_micros);
  MutexLock lock(&mu_);
  compaction_retry_pending_ = false;
  if (proceed) {
    if (!error_state_.ok() && !error_state_.hard() &&
        error_state_.source == ErrorSource::kCompaction) {
      error_state_.ClearCurrent();
    }
    // Re-open the admission loop; the picker rediscovers the failed work
    // (and anything else that accumulated during the backoff window).
    MaybeScheduleCompaction();
  }
  background_cv_.SignalAll();
}

Status ShardEngine::Resume() {
  // resume_calls is recorded by the facade (once per user call, not once
  // per shard).
  ErrorState snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = error_state_;
    if (snapshot.ok()) {
      return Status::OK();  // Nothing to recover from.
    }
    if (snapshot.source == ErrorSource::kMemtable) {
      // A partially applied write group cannot be repaired in place —
      // flushing the memtable would persist unacked writes. Only a reopen
      // (which replays each WAL record atomically) is safe.
      return snapshot.status;
    }
  }

  if (snapshot.hard() && snapshot.source == ErrorSource::kWal) {
    // Rotate off the poisoned WAL through the writer queue, so the handle
    // swap cannot race a leader's append (leaders write the WAL outside
    // mu_). Its acked contents live in the memtable being sealed; the wait
    // below flushes them to L0, restoring their durability.
    Status s = SealActiveMemTable(/*force=*/true);
    if (!s.ok()) {
      return s;
    }
  }

  MutexLock lock(&mu_);
  if (snapshot.hard() && snapshot.source == ErrorSource::kManifest) {
    // The old manifest may end in a torn record; snapshot current state
    // into a fresh manifest and repoint CURRENT at it.
    Status s = versions_->RollManifest();
    if (!s.ok()) {
      return s;
    }
  }
  if (error_state_.source == ErrorSource::kMemtable) {
    // A concurrent write failed mid-apply while we were recovering; that
    // state is not resumable (see above).
    return error_state_.status;
  }
  if (error_state_.severity != snapshot.severity ||
      error_state_.source != snapshot.source ||
      error_state_.status.ToString() != snapshot.status.ToString()) {
    // The error we repaired is no longer the current one: a different
    // error (e.g. a hard WAL failure from a concurrent writer) was recorded
    // after the snapshot. Clearing it here would skip its repair — a
    // poisoned WAL would stay active. Return it; the caller can Resume()
    // again to repair the new error. (If a soft retry already cleared the
    // snapshot error, this returns OK with nothing left to do.)
    return error_state_.status;
  }

  error_state_.ClearCurrent();
  flush_retry_attempts_ = 0;
  compaction_retry_attempts_ = 0;
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  background_cv_.SignalAll();
  LSMLAB_LOG_INFO(options_.info_log.get(), "resumed from [%s/%s] %s",
                  ErrorSeverityName(snapshot.severity),
                  ErrorSourceName(snapshot.source),
                  snapshot.status.ToString().c_str());

  if (snapshot.hard() && snapshot.source == ErrorSource::kWal) {
    // Resume() returning OK must mean previously acked writes are durable
    // again, so wait for the rescued memtable(s) to reach L0.
    while (!error_state_.hard() && !imms_.empty()) {
      background_cv_.Wait(mu_);
    }
    if (error_state_.hard()) {
      return error_state_.status;
    }
  }
  return Status::OK();
}

uint64_t ShardEngine::ClampWalRetentionLocked(uint64_t normal_min) {
  // A committed cross-shard prepare must stay replayable until the
  // memtable that absorbed it (whose WAL is marker_log) has flushed; once
  // the normal retention horizon passes the marker's log, the applied data
  // is durable in SSTables and the entry — plus both its logs — may go.
  for (auto it = committed_prepares_.begin();
       it != committed_prepares_.end();) {
    if (normal_min > it->second.marker_log) {
      it = committed_prepares_.erase(it);
    } else {
      ++it;
    }
  }
  uint64_t min_log = normal_min;
  for (const auto& [id, prepare_log] : pending_prepares_) {
    min_log = std::min(min_log, prepare_log);
  }
  for (const auto& [id, cp] : committed_prepares_) {
    min_log = std::min(min_log, cp.prepare_log);
  }
  return min_log;
}

void ShardEngine::DeleteObsoleteWalsLocked(uint64_t keep_floor) {
  if (!options_.enable_wal) {
    return;
  }
  std::vector<std::string> children;
  if (!options_.env->GetChildren(dbname_, &children).ok()) {
    return;
  }
  std::vector<uint64_t> stale;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == FileType::kLogFile &&
        number < keep_floor) {
      stale.push_back(number);
    }
  }
  std::sort(stale.begin(), stale.end());
  // WALs die strictly oldest-first. Recovery decides "this prepare's batch
  // was already flushed" by seeing its commit marker in a retained log — or
  // by the prepare record being gone altogether. If a newer log (holding
  // the marker) were deleted while an older one (holding the prepare)
  // lingered, reopen would find a committed prepare with no marker and
  // re-apply flushed data above later writes. Stopping at the first
  // surviving file keeps the on-disk logs a suffix of history.
  for (uint64_t number : stale) {
    const std::string fname = LogFileName(dbname_, number);
    if (!options_.env->RemoveFile(fname).ok() &&
        options_.env->FileExists(fname)) {
      break;
    }
  }
}

void ShardEngine::RemoveObsoleteFiles() {
  std::set<uint64_t> live;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> children;
  if (!options_.env->GetChildren(dbname_, &children).ok()) {
    return;
  }
  uint64_t min_log = ClampWalRetentionLocked(
      imm_log_numbers_.empty() ? log_file_number_
                               : imm_log_numbers_.front());
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) {
      continue;
    }
    bool keep = true;
    switch (type) {
      case FileType::kTableFile:
        // Live in some still-referenced Version, or an in-flight
        // flush/compaction output not yet installed in any Version.
        keep = live.count(number) > 0 || pending_outputs_.count(number) > 0;
        break;
      case FileType::kLogFile:
        keep = true;  // WALs are deleted oldest-first below, never inline.
        break;
      case FileType::kManifestFile:
        keep = number >= versions_->manifest_file_number();
        break;
      case FileType::kTempFile:
        keep = false;
        break;
      case FileType::kVlogFile:   // Managed by vlog GC.
      case FileType::kCurrentFile:
      case FileType::kCommitLogFile:  // Facade-owned; never engine garbage.
      case FileType::kShardsFile:
      case FileType::kUnknown:
        keep = true;
        break;
    }
    if (!keep) {
      if (type == FileType::kTableFile) {
        table_cache_->Evict(cache_dir_id_, number);
      }
      // Best effort: a file that survives is retried on the next pass.
      (void)options_.env->RemoveFile(dbname_ + "/" + child);
    }
  }
  DeleteObsoleteWalsLocked(min_log);
}

// ---------------------------------------------------------------------------
// WiscKey value-log GC
// ---------------------------------------------------------------------------

Status ShardEngine::GarbageCollectVlog() {
  if (vlog_ == nullptr) {
    return Status::OK();
  }
  // Roll to a fresh active log so old logs become immutable, then rewrite
  // every live value from the old logs and drop the old files. Liveness is
  // checked by comparing each record's pointer against the key's current
  // pointer in the LSM.
  std::vector<uint64_t> old_logs;
  {
    std::vector<std::string> children;
    Status s = options_.env->GetChildren(dbname_, &children);
    if (!s.ok()) {
      return s;
    }
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kVlogFile) {
        old_logs.push_back(number);
      }
    }
  }
  uint64_t new_log;
  {
    MutexLock lock(&mu_);
    new_log = versions_->NewFileNumber();
  }
  Status s = vlog_->OpenActive(new_log);
  if (!s.ok()) {
    return s;
  }

  for (uint64_t log : old_logs) {
    if (log == new_log) {
      continue;
    }
    Status relocate_status;
    s = vlog_->ForEachRecord(
        log, [&](const Slice& key, const Slice& value, const VlogPointer& ptr) {
          // Live iff the LSM still points at exactly this record.
          std::string current;
          Status gs = GetRawPointer(ReadOptions(), key, &current);
          if (!gs.ok()) {
            return true;  // Deleted or overwritten inline: dead record.
          }
          VlogPointer current_ptr;
          if (!current_ptr.DecodeFrom(current) ||
              current_ptr.file_number != ptr.file_number ||
              current_ptr.offset != ptr.offset) {
            return true;  // Superseded: dead record.
          }
          // Live: relocate by re-putting through the normal write path. A
          // failed relocation must stop the scan — deleting the old log
          // below would otherwise drop the record.
          WriteOptions wo;
          relocate_status = Put(wo, key, value);
          return relocate_status.ok();
        });
    if (!s.ok()) {
      return s;
    }
    if (!relocate_status.ok()) {
      return relocate_status;
    }
    s = vlog_->DeleteLog(log);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status ShardEngine::GetRawPointer(const ReadOptions& options, const Slice& key,
                         std::string* raw) {
  std::shared_ptr<const ReadView> view = AcquireReadView();
  SequenceNumber snapshot = versions_->last_sequence();
  LookupKey lkey(key, snapshot);
  ValueType type;
  if (view->mem->Get(lkey, raw, &type)) {
    return type == kTypeVlogPointer ? Status::OK()
                                    : Status::NotFound("not separated");
  }
  for (const auto& imm : view->imms) {
    if (imm->Get(lkey, raw, &type)) {
      return type == kTypeVlogPointer ? Status::OK()
                                      : Status::NotFound("not separated");
    }
  }
  const Version* version = view->version.get();
  for (int level = 0; level < version->num_levels(); ++level) {
    for (const FileMetaData* f : version->FilesContaining(level, key)) {
      std::shared_ptr<TableReader> reader;
      Status s = GetTableReader(*f, &reader);
      if (!s.ok()) {
        return s;
      }
      if (reader->KeyDefinitelyAbsent(key)) {
        continue;
      }
      bool found;
      std::string entry_key;
      s = reader->InternalGet(options, lkey.internal_key(), &found,
                              &entry_key, raw);
      if (!s.ok()) {
        return s;
      }
      if (found) {
        return ExtractValueType(entry_key) == kTypeVlogPointer
                   ? Status::OK()
                   : Status::NotFound("not separated");
      }
    }
  }
  return Status::NotFound("key not found");
}

}  // namespace lsmlab
