// Per-shard checkpoint capture and checksum scrub (DESIGN.md, "Checkpoint &
// restore"). Split from shard_engine.cc: these are control-plane operations
// with no coupling to the write or read hot paths.

#include <string>
#include <vector>

#include "db/filename.h"
#include "db/shard_engine.h"
#include "util/backoff.h"
#include "util/lock_order.h"

namespace lsmlab {

Status ShardEngine::LinkFileWithRetry(const std::string& src,
                                      const std::string& target) {
  const int max_attempts =
      options_.max_background_error_retries > 0
          ? options_.max_background_error_retries
          : 1;
  ExponentialBackoff backoff(options_.background_error_retry_initial_micros,
                             options_.background_error_retry_max_micros);
  Status s;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    s = options_.env->LinkFile(src, target);
    if (s.ok() || s.IsNotFound()) {
      // NotFound is permanent: the source vanished (or never existed);
      // backing off cannot bring it back.
      return s;
    }
    if (attempt + 1 < max_attempts) {
      options_.clock->SleepForMicros(backoff.DelayMicros(attempt));
    }
  }
  return s;
}

Status ShardEngine::CheckpointInto(const std::string& dir) {
  Status s = options_.env->CreateDir(dir);
  if (!s.ok() && !options_.env->FileExists(dir)) {
    return s;
  }

  // Cut the WAL: rotate to a fresh log so everything the checkpoint covers
  // lives in sealed (fully fsynced) logs, and later writes land in a log the
  // checkpoint excludes. Without a WAL the memtables are the only record of
  // recent writes, so persist them as tables instead.
  if (options_.enable_wal) {
    s = SealActiveMemTable(/*force=*/false, /*for_checkpoint=*/true);
  } else {
    s = Flush();
  }
  if (!s.ok()) {
    return s;
  }

  MutexLock lock(&mu_);
  if (error_state_.hard()) {
    return error_state_.status;
  }
  // Holding mu_ for the whole capture freezes version installs (flush and
  // compaction installs need mu_) and file deletion (RemoveObsoleteFiles /
  // DeleteObsoleteWalsLocked require mu_), so the pinned version, the WAL
  // set on disk, and the manifest snapshot describe one instant. Linking is
  // metadata-only; the one data op is the vlog sync below.
  lock_rank::IoAllowedSection checkpoint_io(
      "Checkpoint capture links immutable files and snapshots the manifest "
      "under mu_ by design: mu_ is what freezes the instant being captured, "
      "exactly like the sanctioned obsolete-file GC pattern.");

  std::shared_ptr<const Version> version = versions_->current();

  if (vlog_ != nullptr) {
    // Vlog appends are not WAL-covered; sync the active vlog so every
    // pointer the checkpointed tables/WALs hold resolves after restore.
    s = vlog_->Sync();
    if (!s.ok()) {
      return s;
    }
  }

  // Sealed WALs and vlogs: everything on disk except the active log. The
  // active log only holds records from after the cut (the checkpoint seal
  // rotated before we got here).
  std::vector<std::string> children;
  s = options_.env->GetChildren(dbname_, &children);
  if (!s.ok()) {
    return s;
  }
  for (const std::string& child : children) {
    uint64_t number = 0;
    FileType type = FileType::kUnknown;
    if (!ParseFileName(child, &number, &type)) {
      continue;
    }
    const bool sealed_wal =
        type == FileType::kLogFile && number != log_file_number_;
    const bool vlog_file = type == FileType::kVlogFile;
    if (!sealed_wal && !vlog_file) {
      continue;
    }
    s = LinkFileWithRetry(dbname_ + "/" + child, dir + "/" + child);
    if (!s.ok()) {
      return s;
    }
  }

  // Every table of the pinned version. Tables are immutable once installed
  // and mu_ keeps them from being GC'd mid-capture.
  for (int level = 0; level < version->num_levels(); ++level) {
    for (const FileMetaData& f : version->files(level)) {
      s = LinkFileWithRetry(TableFileName(dbname_, f.file_number),
                            TableFileName(dir, f.file_number));
      if (!s.ok()) {
        return s;
      }
    }
  }

  // Manifest last: it names exactly the files linked above, so a checkpoint
  // directory with a readable CURRENT+manifest is complete by construction.
  // (The facade still gates opens on its CHECKPOINT completion record.)
  return versions_->WriteCheckpointManifest(dir);
}

Status ShardEngine::VerifyChecksums() {
  std::shared_ptr<const ReadView> view = AcquireReadView();
  const std::shared_ptr<const Version>& version = view->version;

  ReadOptions scrub_options;
  scrub_options.verify_checksums = true;
  scrub_options.fill_cache = false;  // A scrub must not evict the hot set.

  for (int level = 0; level < version->num_levels(); ++level) {
    for (const FileMetaData& f : version->files(level)) {
      if (compaction_rate_limiter_ != nullptr) {
        compaction_rate_limiter_->Request(f.file_size);
      }
      std::shared_ptr<TableReader> reader;
      Status s = GetTableReader(f, &reader);
      if (s.ok()) {
        std::unique_ptr<Iterator> iter = reader->NewIterator(scrub_options);
        for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        }
        s = iter->status();
      }
      if (!s.ok()) {
        stats_->scrub_corruptions.fetch_add(1, std::memory_order_relaxed);
        return Status::Corruption(
            "scrub: " + TableFileName(dbname_, f.file_number) + " (level " +
                std::to_string(level) + ")",
            s.ToString());
      }
      stats_->scrub_bytes_verified.fetch_add(f.file_size,
                                             std::memory_order_relaxed);
    }
  }

  if (vlog_ == nullptr) {
    return Status::OK();
  }
  // Vlog records carry no per-record checksum; parsing every record and
  // echoing its key exercises the length headers and framing end to end,
  // which is what vlog reads themselves verify.
  std::vector<std::string> children;
  Status s = options_.env->GetChildren(dbname_, &children);
  if (!s.ok()) {
    return s;
  }
  for (const std::string& child : children) {
    uint64_t number = 0;
    FileType type = FileType::kUnknown;
    if (!ParseFileName(child, &number, &type) ||
        type != FileType::kVlogFile) {
      continue;
    }
    uint64_t bytes = 0;
    // Size is only for rate pacing; a failed stat just skips the pacing.
    (void)options_.env->GetFileSize(dbname_ + "/" + child, &bytes);
    if (compaction_rate_limiter_ != nullptr && bytes > 0) {
      compaction_rate_limiter_->Request(bytes);
    }
    s = vlog_->ForEachRecord(
        number,
        [](const Slice&, const Slice&, const VlogPointer&) { return true; });
    if (!s.ok()) {
      stats_->scrub_corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption("scrub: " + VlogFileName(dbname_, number),
                                s.ToString());
    }
    stats_->scrub_bytes_verified.fetch_add(bytes, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace lsmlab
