#ifndef LSMLAB_DB_STATISTICS_H_
#define LSMLAB_DB_STATISTICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Engine-wide counters. Every experiment reads these to report the
/// I/O-shape metrics the tutorial reasons about (superfluous probes saved by
/// filters, compaction traffic, stall time). All fields are atomics;
/// increments are relaxed.
struct Statistics {
  // Read path.
  std::atomic<uint64_t> point_lookups{0};
  std::atomic<uint64_t> point_lookup_found{0};
  std::atomic<uint64_t> runs_probed{0};          // Sorted runs actually read.
  std::atomic<uint64_t> runs_skipped_by_filter{0};
  std::atomic<uint64_t> filter_checks{0};
  std::atomic<uint64_t> filter_false_positives{0};
  std::atomic<uint64_t> range_scans{0};
  /// Table-reader resolutions served without opening the file (a pinned
  /// per-version handle or the sharded reader map already held it) vs.
  /// resolutions that had to open and parse the table footer.
  std::atomic<uint64_t> table_cache_hits{0};
  std::atomic<uint64_t> table_cache_misses{0};
  /// ReadView republications (membership changes of {mem, imms, version});
  /// steady-state reads acquire the current view without touching them.
  std::atomic<uint64_t> read_views_published{0};
  /// MultiGet batches and the keys they carried; keys / batches is the mean
  /// batch size.
  std::atomic<uint64_t> multiget_batches{0};
  std::atomic<uint64_t> multiget_keys{0};
  /// Batched I/O (DESIGN.md, "Batched I/O"): MultiRead submissions issued
  /// by the read path, the block reads they carried (reads / batches is the
  /// mean submission depth), and the bytes those reads returned.
  std::atomic<uint64_t> io_batches{0};
  std::atomic<uint64_t> io_batch_reads{0};
  std::atomic<uint64_t> io_batch_bytes{0};
  /// Iterator readahead: data-block reads served from the prefetch buffer
  /// vs. reads that had to go to the device.
  std::atomic<uint64_t> readahead_hits{0};
  std::atomic<uint64_t> readahead_misses{0};
  /// Learned per-table indexes (DESIGN.md, "Pluggable per-table indexes"):
  /// lookups the model certified from digests alone vs. lookups that hit a
  /// digest tie and fell back to the binary-searched fence block. A
  /// mispredicting model shows up here, not as silent slowdown.
  std::atomic<uint64_t> learned_index_hits{0};
  std::atomic<uint64_t> learned_index_fallbacks{0};
  /// Index bytes pinned in memory by table opens plus lazy fence-block
  /// loads; learned tables pin the (much smaller) model block up front and
  /// the fence block only on first fallback.
  std::atomic<uint64_t> index_bytes_loaded{0};

  // Write path. `writes` counts operations; `write_groups` counts leader
  // commits, so writes / write_groups is the mean group-commit batch size.
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> write_groups{0};
  std::atomic<uint64_t> wal_syncs{0};
  std::atomic<uint64_t> wal_bytes_written{0};
  std::atomic<uint64_t> write_stall_micros{0};
  std::atomic<uint64_t> write_slowdown_micros{0};

  // Internal operations.
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_bytes_read{0};
  std::atomic<uint64_t> compaction_bytes_written{0};
  std::atomic<uint64_t> flush_bytes_written{0};
  std::atomic<uint64_t> tombstones_dropped{0};
  std::atomic<uint64_t> entries_dropped_obsolete{0};

  // Background job engine. Per-level counters are indexed by the output
  // level of the compaction (clamped to kMaxStatsLevels - 1).
  static constexpr int kMaxStatsLevels = 16;
  std::array<std::atomic<uint64_t>, kMaxStatsLevels> compactions_at_level{};
  std::array<std::atomic<uint64_t>, kMaxStatsLevels>
      compaction_bytes_read_at_level{};
  std::array<std::atomic<uint64_t>, kMaxStatsLevels>
      compaction_bytes_written_at_level{};
  /// Gauge: compactions admitted and not yet finished.
  std::atomic<uint64_t> compactions_running{0};
  /// High-water mark of compactions_running (observed parallelism).
  std::atomic<uint64_t> max_compactions_running{0};
  /// Subcompaction shards executed (counts only split jobs' shards).
  std::atomic<uint64_t> subcompactions{0};

  // Background-error recovery (DESIGN.md, "Failure model & recovery").
  /// Soft (retryable) background errors recorded; counts every occurrence,
  /// so one transient window may record several.
  std::atomic<uint64_t> bg_error_soft{0};
  /// Transitions into the hard (read-only) error state.
  std::atomic<uint64_t> bg_error_hard{0};
  /// Retry attempts scheduled after soft errors.
  std::atomic<uint64_t> bg_retries{0};
  /// Retried flushes/compactions that subsequently succeeded.
  std::atomic<uint64_t> bg_retry_success{0};
  /// DB::Resume() invocations.
  std::atomic<uint64_t> resume_calls{0};
  /// Checksum scrub (DB::VerifyChecksums): bytes walked through
  /// block-trailer / record-framing verification, and corruptions found.
  std::atomic<uint64_t> scrub_bytes_verified{0};
  std::atomic<uint64_t> scrub_corruptions{0};

  // Sharded facade (DESIGN.md, "Sharding architecture"). Only the facade
  // increments these; engines never touch them, so shared Statistics are
  // never double-counted.
  /// WriteBatches that spanned more than one shard (two-phase committed).
  std::atomic<uint64_t> cross_shard_batches{0};
  /// Per-shard prepare records written for cross-shard batches.
  std::atomic<uint64_t> shard_prepares{0};
  /// Cross-shard batches whose facade commit record reached the commit log.
  std::atomic<uint64_t> shard_commits{0};
  /// Cross-shard batches aborted after a prepare failure.
  std::atomic<uint64_t> shard_aborts{0};

  void Reset() {
    point_lookups = 0;
    point_lookup_found = 0;
    runs_probed = 0;
    runs_skipped_by_filter = 0;
    filter_checks = 0;
    filter_false_positives = 0;
    range_scans = 0;
    table_cache_hits = 0;
    table_cache_misses = 0;
    read_views_published = 0;
    multiget_batches = 0;
    multiget_keys = 0;
    io_batches = 0;
    io_batch_reads = 0;
    io_batch_bytes = 0;
    readahead_hits = 0;
    readahead_misses = 0;
    learned_index_hits = 0;
    learned_index_fallbacks = 0;
    index_bytes_loaded = 0;
    writes = 0;
    write_groups = 0;
    wal_syncs = 0;
    wal_bytes_written = 0;
    write_stall_micros = 0;
    write_slowdown_micros = 0;
    {
      MutexLock lock(&write_group_size_mu_);
      write_group_size_.Clear();
    }
    flushes = 0;
    compactions = 0;
    compaction_bytes_read = 0;
    compaction_bytes_written = 0;
    flush_bytes_written = 0;
    tombstones_dropped = 0;
    entries_dropped_obsolete = 0;
    for (int i = 0; i < kMaxStatsLevels; ++i) {
      compactions_at_level[static_cast<size_t>(i)] = 0;
      compaction_bytes_read_at_level[static_cast<size_t>(i)] = 0;
      compaction_bytes_written_at_level[static_cast<size_t>(i)] = 0;
    }
    // compactions_running is a live gauge; resetting it would corrupt the
    // scheduler's accounting, so only the high-water mark clears.
    max_compactions_running = 0;
    subcompactions = 0;
    bg_error_soft = 0;
    bg_error_hard = 0;
    bg_retries = 0;
    bg_retry_success = 0;
    resume_calls = 0;
    scrub_bytes_verified = 0;
    scrub_corruptions = 0;
    cross_shard_batches = 0;
    shard_prepares = 0;
    shard_commits = 0;
    shard_aborts = 0;
    {
      MutexLock lock(&compaction_duration_mu_);
      compaction_duration_micros_.Clear();
    }
  }

  /// Average sorted runs touched per point lookup — the read-cost metric of
  /// the tutorial's filter discussion.
  double RunsProbedPerLookup() const {
    uint64_t lookups = point_lookups.load();
    return lookups == 0 ? 0.0
                        : static_cast<double>(runs_probed.load()) /
                              static_cast<double>(lookups);
  }

  double FilterFalsePositiveRate() const {
    uint64_t checks = filter_checks.load();
    return checks == 0 ? 0.0
                       : static_cast<double>(filter_false_positives.load()) /
                             static_cast<double>(checks);
  }

  /// Records the number of writers coalesced into one group commit.
  void RecordWriteGroupSize(uint64_t writers_in_group)
      EXCLUDES(write_group_size_mu_) {
    MutexLock lock(&write_group_size_mu_);
    write_group_size_.Add(static_cast<double>(writers_in_group));
  }

  /// Snapshot of the group-size distribution (writers per WAL record).
  Histogram WriteGroupSizes() const EXCLUDES(write_group_size_mu_) {
    MutexLock lock(&write_group_size_mu_);
    return write_group_size_;
  }

  /// WAL fsyncs per operation; < 1 under sync writes means fsyncs are being
  /// amortized across group-committed writers.
  double WalSyncsPerWrite() const {
    uint64_t w = writes.load();
    return w == 0 ? 0.0
                  : static_cast<double>(wal_syncs.load()) /
                        static_cast<double>(w);
  }

  /// Credits a finished compaction against its output level's counters.
  void RecordCompactionAtLevel(int output_level, uint64_t bytes_read,
                               uint64_t bytes_written) {
    size_t slot = static_cast<size_t>(
        std::min(std::max(output_level, 0), kMaxStatsLevels - 1));
    compactions_at_level[slot].fetch_add(1, std::memory_order_relaxed);
    compaction_bytes_read_at_level[slot].fetch_add(bytes_read,
                                                   std::memory_order_relaxed);
    compaction_bytes_written_at_level[slot].fetch_add(
        bytes_written, std::memory_order_relaxed);
  }

  /// Marks a compaction admitted; returns nothing but maintains the gauge
  /// and its high-water mark.
  void OnCompactionAdmitted() {
    uint64_t running =
        compactions_running.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t seen = max_compactions_running.load(std::memory_order_relaxed);
    while (running > seen &&
           !max_compactions_running.compare_exchange_weak(
               seen, running, std::memory_order_relaxed)) {
    }
  }

  void OnCompactionFinished() {
    compactions_running.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Records the wall-clock duration of one compaction job.
  void RecordCompactionDuration(uint64_t micros)
      EXCLUDES(compaction_duration_mu_) {
    MutexLock lock(&compaction_duration_mu_);
    compaction_duration_micros_.Add(static_cast<double>(micros));
  }

  /// Snapshot of the per-job compaction duration distribution (micros).
  Histogram CompactionDurations() const EXCLUDES(compaction_duration_mu_) {
    MutexLock lock(&compaction_duration_mu_);
    return compaction_duration_micros_;
  }

 private:
  mutable Mutex write_group_size_mu_{LockRank::kStatistics,
                                     "stats.write_group_size_mu"};
  Histogram write_group_size_ GUARDED_BY(write_group_size_mu_);
  mutable Mutex compaction_duration_mu_{LockRank::kStatistics,
                                        "stats.compaction_duration_mu"};
  Histogram compaction_duration_micros_ GUARDED_BY(compaction_duration_mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_STATISTICS_H_
