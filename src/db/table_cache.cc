#include "db/table_cache.h"

#include "db/filename.h"
#include "io/env.h"

namespace lsmlab {

TableCache::TableCache(std::string dbname, const Options* options,
                       const InternalKeyComparator* icmp,
                       LruCache* block_cache, Statistics* statistics)
    : dbname_(std::move(dbname)), options_(options) {
  reader_options_.comparator = icmp;
  reader_options_.filter_policy = options->filter_policy;
  reader_options_.block_cache = block_cache;
  reader_options_.statistics = statistics;
  reader_options_.verify_checksums = false;
}

Status TableCache::GetReader(uint64_t file_number, uint64_t file_size,
                             std::shared_ptr<TableReader>* reader) {
  {
    MutexLock lock(&mu_);
    auto it = readers_.find(file_number);
    if (it != readers_.end()) {
      *reader = it->second;
      return Status::OK();
    }
  }

  std::unique_ptr<RandomAccessFile> file;
  std::string fname = TableFileName(dbname_, file_number);
  Status s = options_->env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<TableReader> table;
  s = TableReader::Open(reader_options_, std::move(file), file_size,
                        file_number, &table);
  if (!s.ok()) {
    return s;
  }

  MutexLock lock(&mu_);
  auto [it, inserted] = readers_.emplace(file_number, std::move(table));
  *reader = it->second;
  return Status::OK();
}

void TableCache::Evict(uint64_t file_number) {
  MutexLock lock(&mu_);
  readers_.erase(file_number);
}

}  // namespace lsmlab
