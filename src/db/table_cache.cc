#include "db/table_cache.h"

#include "db/filename.h"
#include "io/env.h"

namespace lsmlab {

TableCache::TableCache(std::string dbname, const Options* options,
                       const InternalKeyComparator* icmp,
                       LruCache* block_cache, Statistics* statistics)
    : dbname_(std::move(dbname)), options_(options), stats_(statistics) {
  reader_options_.comparator = icmp;
  reader_options_.filter_policy = options->filter_policy;
  reader_options_.block_cache = block_cache;
  reader_options_.statistics = statistics;
  reader_options_.verify_checksums = options->verify_checksums;
}

Status TableCache::GetReader(uint64_t file_number, uint64_t file_size,
                             std::shared_ptr<TableReader>* reader) {
  Shard& shard = ShardFor(file_number);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.readers.find(file_number);
    if (it != shard.readers.end()) {
      *reader = it->second;
      stats_->table_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  // Open outside the shard lock: table opens read the footer, index, and
  // filter, and must not serialize unrelated lookups behind that I/O.
  std::unique_ptr<RandomAccessFile> file;
  std::string fname = TableFileName(dbname_, file_number);
  Status s = options_->env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<TableReader> table;
  s = TableReader::Open(reader_options_, std::move(file), file_size,
                        file_number, &table);
  if (!s.ok()) {
    return s;
  }
  stats_->table_cache_misses.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(&shard.mu);
  // Two threads may race to open the same cold file; emplace keeps the
  // first and the loser's reader is discarded (harmless, already open).
  auto [it, inserted] = shard.readers.emplace(file_number, std::move(table));
  *reader = it->second;
  return Status::OK();
}

void TableCache::Evict(uint64_t file_number) {
  Shard& shard = ShardFor(file_number);
  MutexLock lock(&shard.mu);
  shard.readers.erase(file_number);
}

}  // namespace lsmlab
