#include "db/table_cache.h"

#include "db/filename.h"
#include "io/env.h"

namespace lsmlab {

TableCache::TableCache(const Options* options,
                       const InternalKeyComparator* icmp,
                       LruCache* block_cache, Statistics* statistics)
    : options_(options), stats_(statistics) {
  reader_options_.comparator = icmp;
  reader_options_.filter_policy = options->filter_policy;
  reader_options_.block_cache = block_cache;
  reader_options_.statistics = statistics;
  reader_options_.verify_checksums = options->verify_checksums;
}

uint64_t TableCache::RegisterDir(const std::string& dir) {
  MutexLock lock(&dirs_mu_);
  dirs_.push_back(dir);
  return dirs_.size() - 1;
}

Status TableCache::GetReader(uint64_t dir_id, uint64_t file_number,
                             uint64_t file_size,
                             std::shared_ptr<TableReader>* reader) {
  const uint64_t scoped_id = ScopedId(dir_id, file_number);
  Shard& shard = ShardFor(scoped_id);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.readers.find(scoped_id);
    if (it != shard.readers.end()) {
      *reader = it->second;
      stats_->table_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  // Open outside the shard lock: table opens read the footer, index, and
  // filter, and must not serialize unrelated lookups behind that I/O.
  std::string fname;
  {
    MutexLock lock(&dirs_mu_);
    fname = TableFileName(dirs_[dir_id], file_number);
  }
  std::unique_ptr<RandomAccessFile> file;
  Status s = options_->env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<TableReader> table;
  // The scoped id names the table's block-cache entries: two shards may
  // both own a file 7, and their blocks must not alias in the shared cache.
  s = TableReader::Open(reader_options_, std::move(file), file_size,
                        scoped_id, &table);
  if (!s.ok()) {
    return s;
  }
  stats_->table_cache_misses.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(&shard.mu);
  // Two threads may race to open the same cold file; emplace keeps the
  // first and the loser's reader is discarded (harmless, already open).
  auto [it, inserted] = shard.readers.emplace(scoped_id, std::move(table));
  *reader = it->second;
  return Status::OK();
}

void TableCache::Evict(uint64_t dir_id, uint64_t file_number) {
  const uint64_t scoped_id = ScopedId(dir_id, file_number);
  Shard& shard = ShardFor(scoped_id);
  MutexLock lock(&shard.mu);
  shard.readers.erase(scoped_id);
}

}  // namespace lsmlab
