#ifndef LSMLAB_DB_TABLE_CACHE_H_
#define LSMLAB_DB_TABLE_CACHE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/table_reader.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Keeps one open TableReader per live SSTable. Readers are shared_ptrs so
/// a table can be evicted (file deleted by compaction) while an iterator
/// still drains it. Thread-safe.
///
/// One TableCache is shared by every shard of a sharded DB, so entries are
/// scoped by a registered directory: shards allocate file numbers
/// independently, and `(dir_id, file_number)` — not the bare number — names
/// a table. The scoped id also names the table's block-cache entries, so
/// two shards' file 7s never collide in the shared block cache either.
///
/// The reader map is striped: scoped ids hash (mask) onto independent
/// shards, each with its own mutex, so concurrent point lookups resolving
/// different files never serialize on one cache lock. Steady-state reads
/// usually bypass the cache entirely via the per-version pinned handles
/// (FileMetaData::table_handle); the shards absorb the cold-file and
/// compaction traffic that remains.
class TableCache {
 public:
  TableCache(const Options* options, const InternalKeyComparator* icmp,
             LruCache* block_cache, Statistics* statistics);

  /// Registers a DB (shard) directory and returns its scope id. Called
  /// once per shard before the shard serves traffic.
  uint64_t RegisterDir(const std::string& dir) EXCLUDES(dirs_mu_);

  /// Returns (opening on miss) the reader for `file_number` in `dir_id`.
  Status GetReader(uint64_t dir_id, uint64_t file_number, uint64_t file_size,
                   std::shared_ptr<TableReader>* reader);

  /// Drops the cached reader (after the file is deleted).
  void Evict(uint64_t dir_id, uint64_t file_number);

  /// Per-table effective filter policy override used by Monkey: tables are
  /// opened with the shared policy; this just re-exposes the reader options.
  const TableReaderOptions& reader_options() const { return reader_options_; }

 private:
  /// Power-of-two stripe count; file numbers are sequential, so masking the
  /// low bits spreads adjacent files across all stripes evenly.
  static constexpr size_t kNumShards = 16;
  /// Scoped ids pack the dir id above the file number. File numbers are
  /// far below 2^48 at lsmlab's scale, and dir ids are tiny.
  static constexpr int kDirIdShift = 48;

  static uint64_t ScopedId(uint64_t dir_id, uint64_t file_number) {
    return (dir_id << kDirIdShift) | file_number;
  }

  struct Shard {
    mutable Mutex mu{LockRank::kTableCacheShard, "table_cache.shard.mu"};
    std::unordered_map<uint64_t, std::shared_ptr<TableReader>> readers
        GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t scoped_id) {
    return shards_[scoped_id & (kNumShards - 1)];
  }

  const Options* const options_;
  Statistics* const stats_;
  TableReaderOptions reader_options_;
  /// Registered directories, indexed by dir id. Guarded: registration (at
  /// open) may race a concurrent cold-file resolve in another shard.
  mutable Mutex dirs_mu_{LockRank::kTableCacheDirs, "table_cache.dirs_mu"};
  std::vector<std::string> dirs_ GUARDED_BY(dirs_mu_);
  std::array<Shard, kNumShards> shards_;  // Each Shard locks itself (mu).
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_TABLE_CACHE_H_
