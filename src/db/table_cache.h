#ifndef LSMLAB_DB_TABLE_CACHE_H_
#define LSMLAB_DB_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "table/table_reader.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Keeps one open TableReader per live SSTable. Readers are shared_ptrs so
/// a table can be evicted (file deleted by compaction) while an iterator
/// still drains it. Thread-safe.
class TableCache {
 public:
  TableCache(std::string dbname, const Options* options,
             const InternalKeyComparator* icmp, LruCache* block_cache,
             Statistics* statistics);

  /// Returns (opening on miss) the reader for `file_number`.
  Status GetReader(uint64_t file_number, uint64_t file_size,
                   std::shared_ptr<TableReader>* reader) EXCLUDES(mu_);

  /// Drops the cached reader (after the file is deleted).
  void Evict(uint64_t file_number) EXCLUDES(mu_);

  /// Per-table effective filter policy override used by Monkey: tables are
  /// opened with the shared policy; this just re-exposes the reader options.
  const TableReaderOptions& reader_options() const { return reader_options_; }

 private:
  const std::string dbname_;
  const Options* const options_;
  TableReaderOptions reader_options_;
  Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<TableReader>> readers_
      GUARDED_BY(mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_TABLE_CACHE_H_
