#ifndef LSMLAB_DB_TABLE_CACHE_H_
#define LSMLAB_DB_TABLE_CACHE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "table/table_reader.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Keeps one open TableReader per live SSTable. Readers are shared_ptrs so
/// a table can be evicted (file deleted by compaction) while an iterator
/// still drains it. Thread-safe.
///
/// The reader map is striped: file numbers hash (mask) onto independent
/// shards, each with its own mutex, so concurrent point lookups resolving
/// different files never serialize on one cache lock. Steady-state reads
/// usually bypass the cache entirely via the per-version pinned handles
/// (FileMetaData::table_handle); the shards absorb the cold-file and
/// compaction traffic that remains.
class TableCache {
 public:
  TableCache(std::string dbname, const Options* options,
             const InternalKeyComparator* icmp, LruCache* block_cache,
             Statistics* statistics);

  /// Returns (opening on miss) the reader for `file_number`.
  Status GetReader(uint64_t file_number, uint64_t file_size,
                   std::shared_ptr<TableReader>* reader);

  /// Drops the cached reader (after the file is deleted).
  void Evict(uint64_t file_number);

  /// Per-table effective filter policy override used by Monkey: tables are
  /// opened with the shared policy; this just re-exposes the reader options.
  const TableReaderOptions& reader_options() const { return reader_options_; }

 private:
  /// Power-of-two stripe count; file numbers are sequential, so masking the
  /// low bits spreads adjacent files across all stripes evenly.
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<TableReader>> readers
        GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t file_number) {
    return shards_[file_number & (kNumShards - 1)];
  }

  const std::string dbname_;
  const Options* const options_;
  Statistics* const stats_;
  TableReaderOptions reader_options_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_TABLE_CACHE_H_
