#include "db/write_batch.h"

#include "util/coding.h"

namespace lsmlab {

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeaderSize, '\0');
}

uint32_t WriteBatch::Count() const {
  return DecodeFixed32(rep_.data() + 8);
}

SequenceNumber WriteBatch::sequence() const {
  return DecodeFixed64(rep_.data());
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(rep_.data(), seq);
}

void WriteBatch::PutTyped(ValueType type, const Slice& key,
                          const Slice& value) {
  EncodeFixed32(rep_.data() + 8, Count() + 1);
  rep_.push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  PutTyped(kTypeValue, key, value);
}

void WriteBatch::Delete(const Slice& key) {
  PutTyped(kTypeDeletion, key, Slice());
}

void WriteBatch::SingleDelete(const Slice& key) {
  PutTyped(kTypeSingleDeletion, key, Slice());
}

void WriteBatch::Merge(const Slice& key, const Slice& operand) {
  PutTyped(kTypeMerge, key, operand);
}

void WriteBatch::Append(const WriteBatch& other) {
  const uint32_t other_count = other.Count();
  if (other_count == 0) {
    return;
  }
  EncodeFixed32(rep_.data() + 8, Count() + other_count);
  rep_.append(other.rep_.data() + kHeaderSize,
              other.rep_.size() - kHeaderSize);
}

void WriteBatch::Handler::TypedRecord(ValueType type, const Slice& key,
                                      const Slice& value) {
  switch (type) {
    case kTypeValue:
      Put(key, value);
      break;
    case kTypeDeletion:
      Delete(key);
      break;
    case kTypeSingleDeletion:
      SingleDelete(key);
      break;
    case kTypeMerge:
      Merge(key, value);
      break;
    case kTypeVlogPointer:
      // Only meaningful to raw handlers; treat as a put of the pointer.
      Put(key, value);
      break;
  }
}

Status WriteBatch::SetRep(const Slice& contents) {
  if (contents.size() < kHeaderSize) {
    return Status::Corruption("write batch header too small");
  }
  rep_.assign(contents.data(), contents.size());
  return Status::OK();
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  input.remove_prefix(kHeaderSize);
  uint32_t found = 0;
  while (!input.empty()) {
    ++found;
    uint8_t tag = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    if (tag > kTypeMerge) {
      return Status::Corruption("unknown write batch record type");
    }
    Slice key, value;
    if (!GetLengthPrefixedSlice(&input, &key) ||
        !GetLengthPrefixedSlice(&input, &value)) {
      return Status::Corruption("truncated write batch record");
    }
    handler->TypedRecord(static_cast<ValueType>(tag), key, value);
  }
  if (found != Count()) {
    return Status::Corruption("write batch count mismatch");
  }
  return Status::OK();
}

}  // namespace lsmlab
