#ifndef LSMLAB_DB_WRITE_BATCH_H_
#define LSMLAB_DB_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "db/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// WriteBatch collects updates that apply atomically: all of them become
/// visible at once, and recovery replays all or none (one WAL record holds
/// the whole batch). It is also the engine's internal unit of logging —
/// single writes are one-element batches.
///
/// Serialized representation (also the WAL record payload):
///   fixed64(starting_sequence) | fixed32(count) |
///   { byte(type) | varint-key | varint-value }*
class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void SingleDelete(const Slice& key);
  void Merge(const Slice& key, const Slice& operand);

  /// Appends all of `other`'s records to this batch, preserving their order
  /// and this batch's sequence number. The group-commit write path uses this
  /// to coalesce the queued writers' batches into one WAL record.
  void Append(const WriteBatch& other);

  void Clear();

  /// Number of operations in the batch.
  uint32_t Count() const;

  /// Serialized size in bytes.
  size_t ApproximateSize() const { return rep_.size(); }

  /// Handler for Iterate: receives each operation in insertion order.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
    virtual void SingleDelete(const Slice& key) = 0;
    virtual void Merge(const Slice& key, const Slice& operand) = 0;
    /// Raw access for handlers that need the type tag (e.g. vlog-pointer
    /// entries re-logged during recovery). Default dispatches to the typed
    /// callbacks above.
    virtual void TypedRecord(ValueType type, const Slice& key,
                             const Slice& value);
  };

  /// Replays the batch into `handler`; Corruption on malformed bytes.
  Status Iterate(Handler* handler) const;

  // --- Internal plumbing (DB + recovery) -----------------------------------
  SequenceNumber sequence() const;
  void SetSequence(SequenceNumber seq);
  const std::string& rep() const { return rep_; }
  /// Adopts serialized contents (WAL replay). Validates the header only;
  /// record-level corruption surfaces from Iterate.
  Status SetRep(const Slice& contents);
  /// Appends a record with an explicit type tag (used for vlog pointers).
  void PutTyped(ValueType type, const Slice& key, const Slice& value);

 private:
  static constexpr size_t kHeaderSize = 12;  // seq(8) + count(4).

  std::string rep_;
};

}  // namespace lsmlab

#endif  // LSMLAB_DB_WRITE_BATCH_H_
