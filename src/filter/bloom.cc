#include <algorithm>
#include <cmath>

#include "filter/filter_policy.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// Double hashing: probe_i = h1 + i * h2, the standard trick that gets
/// k independent-enough probes from one 64-bit hash.
inline uint32_t BloomHash(const Slice& key) {
  return HashSlice32(key, 0xbc9f1d34u);
}

class BloomFilterPolicy final : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(double bits_per_key)
      : bits_per_key_(std::max(0.0, bits_per_key)) {
    // k = bits_per_key * ln(2) minimizes the false-positive rate.
    k_ = static_cast<int>(std::round(bits_per_key_ * 0.69314718056));
    k_ = std::clamp(k_, 1, 30);
  }

  const char* Name() const override { return "lsmlab.BloomFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    size_t bits = static_cast<size_t>(
        std::max(64.0, bits_per_key_ * static_cast<double>(n)));
    size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));  // Probe count trailer.
    char* array = dst->data() + init_size;
    for (int i = 0; i < n; ++i) {
      uint32_t h = BloomHash(keys[i]);
      const uint32_t delta = (h >> 17) | (h << 15);
      for (int j = 0; j < k_; ++j) {
        const uint32_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    const size_t len = filter.size();
    if (len < 2) {
      return false;
    }
    const char* array = filter.data();
    const size_t bits = (len - 1) * 8;

    const int k = array[len - 1];
    if (k > 30 || k < 1) {
      // Reserved for future encodings: treat as a match (no false negatives).
      return true;
    }

    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k; ++j) {
      const uint32_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
        return false;
      }
      h += delta;
    }
    return true;
  }

 private:
  double bits_per_key_;
  int k_;
};

class BlockedBloomFilterPolicy final : public FilterPolicy {
 public:
  explicit BlockedBloomFilterPolicy(double bits_per_key)
      : bits_per_key_(std::max(0.0, bits_per_key)) {
    k_ = static_cast<int>(std::round(bits_per_key_ * 0.69314718056));
    k_ = std::clamp(k_, 1, 16);
  }

  const char* Name() const override { return "lsmlab.BlockedBloomFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    size_t bits = static_cast<size_t>(
        std::max(static_cast<double>(kLineBits),
                 bits_per_key_ * static_cast<double>(n)));
    size_t num_lines = (bits + kLineBits - 1) / kLineBits;
    size_t bytes = num_lines * kLineBytes;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));
    char* array = dst->data() + init_size;
    for (int i = 0; i < n; ++i) {
      uint64_t h = HashSlice64(keys[i]);
      // High bits pick the cache line; low bits drive in-line probes.
      size_t line = (h >> 32) % num_lines;
      char* line_start = array + line * kLineBytes;
      uint32_t probe = static_cast<uint32_t>(h);
      const uint32_t delta = (probe >> 17) | (probe << 15);
      for (int j = 0; j < k_; ++j) {
        uint32_t bitpos = probe % kLineBits;
        line_start[bitpos / 8] |= (1 << (bitpos % 8));
        probe += delta;
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    if (filter.size() < kLineBytes + 1) {
      return false;
    }
    const char* array = filter.data();
    const size_t num_lines = (filter.size() - 1) / kLineBytes;
    const int k = array[filter.size() - 1];
    if (k > 16 || k < 1) {
      return true;
    }
    uint64_t h = HashSlice64(key);
    size_t line = (h >> 32) % num_lines;
    const char* line_start = array + line * kLineBytes;
    uint32_t probe = static_cast<uint32_t>(h);
    const uint32_t delta = (probe >> 17) | (probe << 15);
    for (int j = 0; j < k; ++j) {
      uint32_t bitpos = probe % kLineBits;
      if ((line_start[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
        return false;
      }
      probe += delta;
    }
    return true;
  }

 private:
  static constexpr size_t kLineBytes = 64;
  static constexpr size_t kLineBits = kLineBytes * 8;

  double bits_per_key_;
  int k_;
};

}  // namespace

std::shared_ptr<const FilterPolicy> NewBloomFilterPolicy(double bits_per_key) {
  return std::make_shared<BloomFilterPolicy>(bits_per_key);
}

std::shared_ptr<const FilterPolicy> NewBlockedBloomFilterPolicy(
    double bits_per_key) {
  return std::make_shared<BlockedBloomFilterPolicy>(bits_per_key);
}

}  // namespace lsmlab
