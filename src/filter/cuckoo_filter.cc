#include <cstring>
#include <vector>

#include "filter/filter_policy.h"
#include "util/coding.h"
#include "util/hash.h"
#include "util/random.h"

namespace lsmlab {

namespace {

/// Cuckoo filter (Fan et al.): fingerprints in a 4-way-associative bucket
/// array, with the partial-key displacement trick so each fingerprint has
/// two candidate buckets. Build here is offline (all keys known), so a build
/// failure simply falls back to a larger table.
///
/// On-disk layout: fixed32(num_buckets) | fixed8(fp_bits) | bucket array of
/// 16-bit slots (0 = empty).
class CuckooFilterPolicy final : public FilterPolicy {
 public:
  explicit CuckooFilterPolicy(size_t fingerprint_bits)
      : fp_bits_(fingerprint_bits < 4 ? 4
                 : fingerprint_bits > 16
                     ? 16
                     : fingerprint_bits) {}

  const char* Name() const override { return "lsmlab.CuckooFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    // 4 slots per bucket, target load factor ~0.84.
    size_t num_buckets = 1;
    size_t needed = static_cast<size_t>(static_cast<double>(n) / 0.84 / 4.0) + 1;
    while (num_buckets < needed) {
      num_buckets <<= 1;
    }

    std::vector<uint16_t> table;
    while (true) {
      table.assign(num_buckets * 4, 0);
      if (TryBuild(keys, n, num_buckets, &table)) {
        break;
      }
      num_buckets <<= 1;  // Rare with offline builds; double and retry.
    }

    PutFixed32(dst, static_cast<uint32_t>(num_buckets));
    dst->push_back(static_cast<char>(fp_bits_));
    dst->append(reinterpret_cast<const char*>(table.data()),
                table.size() * sizeof(uint16_t));
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    if (filter.size() < 5) {
      return true;
    }
    uint32_t num_buckets = DecodeFixed32(filter.data());
    const char* table = filter.data() + 5;
    size_t table_slots = (filter.size() - 5) / sizeof(uint16_t);
    if (table_slots < static_cast<size_t>(num_buckets) * 4) {
      return true;  // Malformed; fail open.
    }
    auto slot_at = [table](size_t index) {
      uint16_t v;
      std::memcpy(&v, table + index * sizeof(uint16_t), sizeof(v));
      return v;
    };

    uint16_t fp;
    size_t b1, b2;
    Locate(key, num_buckets, &fp, &b1, &b2);
    for (int s = 0; s < 4; ++s) {
      if (slot_at(b1 * 4 + s) == fp || slot_at(b2 * 4 + s) == fp) {
        return true;
      }
    }
    return false;
  }

 private:
  void Locate(const Slice& key, size_t num_buckets, uint16_t* fp, size_t* b1,
              size_t* b2) const {
    uint64_t h = HashSlice64(key);
    uint16_t mask = static_cast<uint16_t>((1u << fp_bits_) - 1);
    *fp = static_cast<uint16_t>((h >> 48) & mask);
    if (*fp == 0) {
      *fp = 1;  // 0 marks an empty slot.
    }
    *b1 = (h & 0xffffffffu) & (num_buckets - 1);
    // Partial-key cuckoo: the alternate bucket is b ^ hash(fp).
    *b2 = (*b1 ^ Hash64(reinterpret_cast<const char*>(fp), 2, 0x5bd1e995)) &
          (num_buckets - 1);
  }

  bool TryBuild(const Slice* keys, int n, size_t num_buckets,
                std::vector<uint16_t>* table) const {
    Random rnd(0xc0ffee);
    for (int i = 0; i < n; ++i) {
      uint16_t fp;
      size_t b1, b2;
      Locate(keys[i], num_buckets, &fp, &b1, &b2);
      if (InsertInto(table, b1, fp) || InsertInto(table, b2, fp)) {
        continue;
      }
      // Displace: kick a random resident fingerprint to its alternate.
      size_t bucket = rnd.OneIn(2) ? b1 : b2;
      uint16_t cur = fp;
      bool placed = false;
      for (int kick = 0; kick < 500; ++kick) {
        size_t slot = rnd.Uniform(4);
        std::swap(cur, (*table)[bucket * 4 + slot]);
        size_t alt =
            (bucket ^
             Hash64(reinterpret_cast<const char*>(&cur), 2, 0x5bd1e995)) &
            (num_buckets - 1);
        if (InsertInto(table, alt, cur)) {
          placed = true;
          break;
        }
        bucket = alt;
      }
      if (!placed) {
        return false;
      }
    }
    return true;
  }

  static bool InsertInto(std::vector<uint16_t>* table, size_t bucket,
                         uint16_t fp) {
    for (int s = 0; s < 4; ++s) {
      if ((*table)[bucket * 4 + s] == 0) {
        (*table)[bucket * 4 + s] = fp;
        return true;
      }
    }
    return false;
  }

  const size_t fp_bits_;
};

}  // namespace

std::shared_ptr<const FilterPolicy> NewCuckooFilterPolicy(
    size_t fingerprint_bits) {
  return std::make_shared<CuckooFilterPolicy>(fingerprint_bits);
}

}  // namespace lsmlab
