#ifndef LSMLAB_FILTER_FILTER_POLICY_H_
#define LSMLAB_FILTER_FILTER_POLICY_H_

#include <memory>
#include <string>

#include "util/slice.h"

namespace lsmlab {

/// FilterPolicy builds the per-run point-query filters of tutorial §2.1.3:
/// an approximate set-membership structure consulted before any disk I/O.
/// False positives cost a wasted I/O; false negatives are forbidden.
class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Name written into the SSTable; a mismatch at read time disables the
  /// filter rather than misinterpreting its bits.
  virtual const char* Name() const = 0;

  /// Appends a filter summarizing keys[0..n-1] (user keys) to *dst.
  virtual void CreateFilter(const Slice* keys, int n,
                            std::string* dst) const = 0;

  /// True if `key` may be in the set summarized by `filter`. Must return
  /// true for every key passed to CreateFilter (no false negatives).
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

/// Standard Bloom filter with ~0.69 * bits_per_key hash probes.
/// `bits_per_key` may be fractional (Monkey hands shallower levels more).
std::shared_ptr<const FilterPolicy> NewBloomFilterPolicy(double bits_per_key);

/// Cache-local ("blocked") Bloom filter: all probes of a key land in one
/// 64-byte cache line. Slightly higher false-positive rate for the same
/// memory, much cheaper CPU (tutorial §2.1.3, hash-sharing/CPU-cost work).
std::shared_ptr<const FilterPolicy> NewBlockedBloomFilterPolicy(
    double bits_per_key);

/// Cuckoo filter storing 12-bit fingerprints in two candidate buckets.
/// Supports the same membership API; the structural basis of Chucky-style
/// unified filter/index designs (tutorial §2.1.3).
std::shared_ptr<const FilterPolicy> NewCuckooFilterPolicy(
    size_t fingerprint_bits = 12);

}  // namespace lsmlab

#endif  // LSMLAB_FILTER_FILTER_POLICY_H_
