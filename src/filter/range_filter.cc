#include "filter/range_filter.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "util/hash.h"

namespace lsmlab {

uint64_t DefaultKeyToUint64(const Slice& key) {
  uint64_t v = 0;
  size_t n = std::min<size_t>(8, key.size());
  for (size_t i = 0; i < n; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(key[i]))
         << (8 * (7 - i));
  }
  return v;
}

namespace {

/// A plain bit-array Bloom filter used as the building block here (the
/// FilterPolicy interface is batch-build; range filters build incrementally).
class BloomBits {
 public:
  void Init(size_t num_keys, double bits_per_key) {
    size_t bits = static_cast<size_t>(
        std::max(64.0, bits_per_key * static_cast<double>(num_keys)));
    bits_.assign((bits + 7) / 8, 0);
    num_bits_ = bits_.size() * 8;
    k_ = std::clamp(
        static_cast<int>(std::round(bits_per_key * 0.69314718056)), 1, 20);
  }

  void Add(uint64_t h) {
    uint32_t probe = static_cast<uint32_t>(h);
    const uint32_t delta = (probe >> 17) | (probe << 15);
    for (int j = 0; j < k_; ++j) {
      size_t bit = probe % num_bits_;
      bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
      probe += delta;
    }
  }

  bool MayContain(uint64_t h) const {
    if (num_bits_ == 0) {
      return false;
    }
    uint32_t probe = static_cast<uint32_t>(h);
    const uint32_t delta = (probe >> 17) | (probe << 15);
    for (int j = 0; j < k_; ++j) {
      size_t bit = probe % num_bits_;
      if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) {
        return false;
      }
      probe += delta;
    }
    return true;
  }

  size_t MemoryUsage() const { return bits_.size(); }

 private:
  std::vector<uint8_t> bits_;
  size_t num_bits_ = 0;
  int k_ = 1;
};

// ---------------------------------------------------------------------------
// Prefix Bloom
// ---------------------------------------------------------------------------

class PrefixBloomRangeFilter final : public RangeFilter {
 public:
  PrefixBloomRangeFilter(size_t prefix_len, double bits_per_prefix)
      : prefix_len_(prefix_len), bits_per_prefix_(bits_per_prefix) {}

  const char* Name() const override { return "prefix-bloom"; }

  void AddKey(const Slice& key) override {
    prefixes_.insert(Prefix(key));
  }

  void Finish() override {
    bloom_.Init(prefixes_.size(), bits_per_prefix_);
    for (const auto& p : prefixes_) {
      bloom_.Add(Hash64(p.data(), p.size(), 0x7b1fa2));
    }
    prefixes_.clear();
    finished_ = true;
  }

  bool MayContainRange(const Slice& lo, const Slice& hi) const override {
    // Enumerate the prefixes covering [lo, hi]; if too many, fail open.
    std::string p = Prefix(lo);
    std::string hi_prefix = Prefix(hi);
    for (int budget = 0; budget < kMaxPrefixProbes; ++budget) {
      if (bloom_.MayContain(Hash64(p.data(), p.size(), 0x7b1fa2))) {
        return true;
      }
      if (p >= hi_prefix) {
        return false;
      }
      if (!IncrementPrefix(&p)) {
        return false;  // Wrapped past the maximum prefix.
      }
    }
    return true;  // Budget exhausted: maybe.
  }

  size_t MemoryUsage() const override { return bloom_.MemoryUsage(); }

 private:
  static constexpr int kMaxPrefixProbes = 64;

  std::string Prefix(const Slice& key) const {
    std::string p(key.data(), std::min(prefix_len_, key.size()));
    p.resize(prefix_len_, '\0');  // Short keys pad with the minimum byte.
    return p;
  }

  static bool IncrementPrefix(std::string* p) {
    for (size_t i = p->size(); i-- > 0;) {
      if (static_cast<uint8_t>((*p)[i]) != 0xff) {
        (*p)[i] = static_cast<char>(static_cast<uint8_t>((*p)[i]) + 1);
        std::fill(p->begin() + static_cast<long>(i) + 1, p->end(), '\0');
        return true;
      }
    }
    return false;
  }

  const size_t prefix_len_;
  const double bits_per_prefix_;
  std::set<std::string> prefixes_;
  BloomBits bloom_;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Rosetta
// ---------------------------------------------------------------------------

class RosettaRangeFilter final : public RangeFilter {
 public:
  RosettaRangeFilter(double bits_per_key, int levels,
                     std::function<uint64_t(const Slice&)> codec)
      : levels_(std::clamp(levels, 1, 64)),
        bits_per_key_(bits_per_key),
        codec_(codec ? std::move(codec) : DefaultKeyToUint64) {}

  const char* Name() const override { return "rosetta"; }

  void AddKey(const Slice& key) override { keys_.push_back(codec_(key)); }

  void Finish() override {
    // Materialize Bloom filters for the deepest `levels_` prefix lengths
    // (bit-prefix lengths 64-levels_+1 .. 64). Memory is allocated
    // leaf-heavy (halving per level upward), as in Rosetta: the leaf level
    // does the final doubt resolution and deserves the lowest FPR.
    min_level_ = 64 - levels_ + 1;
    blooms_.resize(static_cast<size_t>(levels_));
    double total_weight = 0;
    double w = 1.0;
    for (int i = 0; i < levels_; ++i) {
      total_weight += w;
      w *= 0.5;
    }
    w = 1.0;
    for (int l = 64; l >= min_level_; --l, w *= 0.5) {
      double level_bits = bits_per_key_ * (w / total_weight);
      auto& bloom = blooms_[static_cast<size_t>(l - min_level_)];
      bloom.Init(keys_.size(), level_bits);
      for (uint64_t k : keys_) {
        bloom.Add(PrefixHash(k, l));
      }
    }
    keys_.clear();
    keys_.shrink_to_fit();
    finished_ = true;
  }

  bool MayContainRange(const Slice& lo, const Slice& hi) const override {
    uint64_t a = codec_(lo);
    uint64_t b = codec_(hi);
    if (a > b) {
      std::swap(a, b);
    }
    // Decompose [a, b] into maximal dyadic blocks; each block is a segment
    // tree node fully inside the range.
    int budget = kProbeBudget;
    uint64_t cur = a;
    while (true) {
      // Largest aligned block starting at cur that fits within [cur, b].
      int k = cur == 0 ? 64 : CountTrailingZeros(cur);
      while (k > 0 &&
             (k >= 64 || cur + ((uint64_t{1} << k) - 1) > b)) {
        --k;
      }
      int level = 64 - k;
      if (level < min_level_) {
        // The block is shallower than any materialized filter: the range is
        // too long for this filter's resolution; fail open.
        return true;
      }
      if (ProbeDown(cur, level, &budget)) {
        return true;
      }
      uint64_t block = (k >= 63) ? 0 : (uint64_t{1} << k);
      uint64_t block_end = cur + (block == 0 ? ~uint64_t{0} : block - 1);
      if (block_end >= b || block == 0) {
        return false;
      }
      cur = block_end + 1;
    }
  }

  size_t MemoryUsage() const override {
    size_t total = 0;
    for (const auto& bloom : blooms_) {
      total += bloom.MemoryUsage();
    }
    return total;
  }

 private:
  static constexpr int kProbeBudget = 4096;

  static int CountTrailingZeros(uint64_t v) {
    return v == 0 ? 64 : __builtin_ctzll(v);
  }

  /// Hash of the `level`-bit prefix of `key`, level in [min_level_, 64].
  uint64_t PrefixHash(uint64_t key, int level) const {
    uint64_t prefix =
        level >= 64 ? key : (key >> (64 - level)) << (64 - level);
    char buf[9];
    std::memcpy(buf, &prefix, 8);
    buf[8] = static_cast<char>(level);
    return Hash64(buf, 9, 0x526f7365);
  }

  const BloomBits& BloomAt(int level) const {
    return blooms_[static_cast<size_t>(level - min_level_)];
  }

  /// Doubt resolution: the node (`prefix`, `level`) lies fully inside the
  /// query range; does some key below it really exist?
  bool ProbeDown(uint64_t prefix, int level, int* budget) const {
    if (*budget <= 0) {
      return true;  // Out of budget: fail open.
    }
    --*budget;
    if (!BloomAt(level).MayContain(PrefixHash(prefix, level))) {
      return false;
    }
    if (level == 64) {
      return true;  // Leaf-level hit.
    }
    uint64_t half = uint64_t{1} << (64 - level - 1);
    return ProbeDown(prefix, level + 1, budget) ||
           ProbeDown(prefix + half, level + 1, budget);
  }

  const int levels_;
  const double bits_per_key_;
  const std::function<uint64_t(const Slice&)> codec_;
  int min_level_ = 1;
  std::vector<uint64_t> keys_;
  std::vector<BloomBits> blooms_;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<RangeFilter> NewPrefixBloomRangeFilter(
    size_t prefix_len, double bits_per_prefix) {
  return std::make_unique<PrefixBloomRangeFilter>(prefix_len,
                                                  bits_per_prefix);
}

std::unique_ptr<RangeFilter> NewRosettaRangeFilter(
    double bits_per_key, int levels,
    std::function<uint64_t(const Slice&)> key_codec) {
  return std::make_unique<RosettaRangeFilter>(bits_per_key, levels,
                                              std::move(key_codec));
}

}  // namespace lsmlab
