#ifndef LSMLAB_FILTER_RANGE_FILTER_H_
#define LSMLAB_FILTER_RANGE_FILTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/slice.h"

namespace lsmlab {

/// RangeFilter answers "may this sorted run contain any key in [lo, hi]?"
/// before the run is touched on disk — the range-query counterpart of Bloom
/// filters (tutorial §2.1.3). False positives waste a run probe; false
/// negatives are forbidden.
class RangeFilter {
 public:
  virtual ~RangeFilter() = default;

  virtual const char* Name() const = 0;

  /// Adds one key of the run. Keys may arrive in any order.
  virtual void AddKey(const Slice& key) = 0;

  /// Freezes the filter; must be called before queries.
  virtual void Finish() = 0;

  /// True if some key in [lo, hi] (inclusive) may be present.
  virtual bool MayContainRange(const Slice& lo, const Slice& hi) const = 0;

  virtual size_t MemoryUsage() const = 0;
};

/// Fixed-length prefix Bloom filter (RocksDB prefix bloom, tutorial §2.1.3):
/// stores the distinct `prefix_len`-byte prefixes of all keys. A range probe
/// enumerates the prefixes covering [lo, hi] (up to a budget) and checks
/// each; ranges spanning too many prefixes return "maybe". Best for long
/// ranges that stay within few prefixes.
std::unique_ptr<RangeFilter> NewPrefixBloomRangeFilter(size_t prefix_len,
                                                       double bits_per_prefix);

/// Rosetta-style filter (tutorial §2.1.3): a hierarchy of Bloom filters over
/// the binary prefixes of a 64-bit encoding of each key, logically forming a
/// segment tree. Range probes decompose [lo, hi] into dyadic intervals and
/// resolve doubts downward, which makes short ranges cheap and precise.
///
/// `key_codec` maps a key to the 64-bit value whose order must mirror the
/// key order within the filtered domain (defaults to the big-endian value of
/// the first 8 bytes).
std::unique_ptr<RangeFilter> NewRosettaRangeFilter(
    double bits_per_key, int levels = 64,
    std::function<uint64_t(const Slice&)> key_codec = nullptr);

/// Big-endian 64-bit value of the first 8 bytes (zero padded): the default
/// order-preserving key encoding.
uint64_t DefaultKeyToUint64(const Slice& key);

}  // namespace lsmlab

#endif  // LSMLAB_FILTER_RANGE_FILTER_H_
