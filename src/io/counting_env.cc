#include "io/counting_env.h"

namespace lsmlab {

namespace {

class CountingSequentialFile final : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> base,
                         CountingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      env_->RecordRead(result->size());
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  CountingEnv* const env_;
};

class CountingRandomAccessFile final : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                           CountingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      env_->RecordRead(result->size());
    }
    return s;
  }

  void MultiRead(ReadRequest* reqs, size_t n) const override {
    base_->MultiRead(reqs, n);
    for (size_t i = 0; i < n; ++i) {
      if (reqs[i].status.ok()) {
        env_->RecordRead(reqs[i].result.size());
      }
    }
    env_->RecordBatch();
  }

  RandomAccessFile* target() const { return base_.get(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  CountingEnv* const env_;
};

class CountingWritableFile final : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, CountingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      env_->RecordWrite(data.size());
    }
    return s;
  }
  Status Close() override { return base_->Close(); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    env_->RecordSync();
    return base_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  CountingEnv* const env_;
};

class CountingRandomRWFile final : public RandomRWFile {
 public:
  CountingRandomRWFile(std::unique_ptr<RandomRWFile> base, CountingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Write(uint64_t offset, const Slice& data) override {
    Status s = base_->Write(offset, data);
    if (s.ok()) {
      env_->RecordWrite(data.size());
    }
    return s;
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      env_->RecordRead(result->size());
    }
    return s;
  }

  Status Sync() override {
    env_->RecordSync();
    return base_->Sync();
  }

 private:
  std::unique_ptr<RandomRWFile> base_;
  CountingEnv* const env_;
};

}  // namespace

Status CountingEnv::NewRandomRWFile(const std::string& fname,
                                    std::unique_ptr<RandomRWFile>* result) {
  std::unique_ptr<RandomRWFile> base_file;
  Status s = base_->NewRandomRWFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<CountingRandomRWFile>(std::move(base_file), this);
  }
  return s;
}

Status CountingEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base_file;
  Status s = base_->NewSequentialFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<CountingSequentialFile>(std::move(base_file), this);
  }
  return s;
}

Status CountingEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  Status s = base_->NewRandomAccessFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<CountingRandomAccessFile>(std::move(base_file), this);
  }
  return s;
}

Status CountingEnv::NewWritableFile(const std::string& fname,
                                    std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (s.ok()) {
    files_created_.fetch_add(1, std::memory_order_relaxed);
    *result =
        std::make_unique<CountingWritableFile>(std::move(base_file), this);
  }
  return s;
}

void CountingEnv::MultiRead(ReadRequest* reqs, size_t n) {
  // Swap each request's file for the wrapped target so the base env sees
  // one cross-file batch. A request on a foreign file (not opened through
  // this env) falls back to the default per-file grouping, where the
  // file-level wrappers do the counting instead.
  std::vector<ReadRequest> shadow(reqs, reqs + n);
  for (size_t i = 0; i < n; ++i) {
    auto* wrapped = dynamic_cast<CountingRandomAccessFile*>(reqs[i].file);
    if (wrapped == nullptr) {
      // The per-file groups reach CountingRandomAccessFile::MultiRead,
      // which does the counting (including RecordBatch per group).
      Env::MultiRead(reqs, n);
      return;
    }
    shadow[i].file = wrapped->target();
  }
  base_->MultiRead(shadow.data(), n);
  for (size_t i = 0; i < n; ++i) {
    reqs[i].result = shadow[i].result;
    reqs[i].status = shadow[i].status;
    if (reqs[i].status.ok()) {
      RecordRead(reqs[i].result.size());
    }
  }
  RecordBatch();
}

IoStats CountingEnv::GetStats() const {
  IoStats stats;
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  stats.read_ops = read_ops_.load(std::memory_order_relaxed);
  stats.write_ops = write_ops_.load(std::memory_order_relaxed);
  stats.syncs = syncs_.load(std::memory_order_relaxed);
  stats.files_created = files_created_.load(std::memory_order_relaxed);
  stats.files_removed = files_removed_.load(std::memory_order_relaxed);
  stats.multiread_batches = multiread_batches_.load(std::memory_order_relaxed);
  return stats;
}

void CountingEnv::ResetStats() {
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  read_ops_.store(0, std::memory_order_relaxed);
  write_ops_.store(0, std::memory_order_relaxed);
  syncs_.store(0, std::memory_order_relaxed);
  files_created_.store(0, std::memory_order_relaxed);
  files_removed_.store(0, std::memory_order_relaxed);
  multiread_batches_.store(0, std::memory_order_relaxed);
}

}  // namespace lsmlab
