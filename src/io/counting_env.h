#ifndef LSMLAB_IO_COUNTING_ENV_H_
#define LSMLAB_IO_COUNTING_ENV_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "io/env.h"

namespace lsmlab {

/// Aggregated I/O counters. The measurement substrate for every experiment:
/// the tutorial's tradeoffs are stated in I/O terms (write amplification,
/// lookup I/Os), which these counters reproduce deterministically.
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t syncs = 0;
  uint64_t files_created = 0;
  uint64_t files_removed = 0;
  /// MultiRead submissions (each still counts its requests in read_ops, so
  /// serial/batched runs agree on every counter except this one).
  uint64_t multiread_batches = 0;

  /// Write amplification relative to `user_bytes` of ingested data.
  double WriteAmplification(uint64_t user_bytes) const {
    return user_bytes == 0
               ? 0.0
               : static_cast<double>(bytes_written) /
                     static_cast<double>(user_bytes);
  }
};

/// Env decorator that tallies every I/O passing through it. Thread-safe.
class CountingEnv final : public Env {
 public:
  /// Does not take ownership of `base`.
  explicit CountingEnv(Env* base) : base_(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    Status s = base_->RemoveFile(fname);
    if (s.ok()) {
      files_removed_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status LinkFile(const std::string& src, const std::string& target) override {
    return base_->LinkFile(src, target);
  }
  /// Unwraps this env's own file wrappers so the whole cross-file batch
  /// reaches the base env as one submission; each request is still tallied
  /// in read_ops/bytes_read exactly as a serial loop would.
  void MultiRead(ReadRequest* reqs, size_t n) override;

  IoStats GetStats() const;
  void ResetStats();

  // Internal: counter taps used by the wrapper file classes.
  void RecordRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordSync() { syncs_.fetch_add(1, std::memory_order_relaxed); }
  void RecordBatch() {
    multiread_batches_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Env* const base_;
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> files_removed_{0};
  std::atomic<uint64_t> multiread_batches_{0};
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_COUNTING_ENV_H_
