#include "io/env.h"

#include <utility>
#include <vector>

namespace lsmlab {

void RandomAccessFile::MultiRead(ReadRequest* reqs, size_t n) const {
  for (size_t i = 0; i < n; ++i) {
    reqs[i].status = Read(reqs[i].offset, reqs[i].len, &reqs[i].result,
                          reqs[i].scratch);
  }
}

void Env::MultiRead(ReadRequest* reqs, size_t n) {
  // Group by file in order of first appearance. Batches are small (tens of
  // requests), so a linear scan beats a hash map.
  std::vector<std::pair<RandomAccessFile*, std::vector<size_t>>> groups;
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].file == nullptr) {
      reqs[i].status = Status::InvalidArgument("ReadRequest without a file");
      continue;
    }
    bool found = false;
    for (auto& g : groups) {
      if (g.first == reqs[i].file) {
        g.second.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      groups.emplace_back(reqs[i].file, std::vector<size_t>{i});
    }
  }
  std::vector<ReadRequest> batch;
  for (auto& g : groups) {
    if (g.second.size() == 1) {
      g.first->MultiRead(&reqs[g.second[0]], 1);
      continue;
    }
    batch.clear();
    for (size_t idx : g.second) {
      batch.push_back(reqs[idx]);
    }
    g.first->MultiRead(batch.data(), batch.size());
    for (size_t k = 0; k < g.second.size(); ++k) {
      reqs[g.second[k]].result = batch[k].result;
      reqs[g.second[k]].status = batch[k].status;
    }
  }
}

Status Env::LinkFile(const std::string& src, const std::string& target) {
  // Copy fallback: correct (the two names never alias mutable state — link
  // callers only hand over immutable files) but pays the full byte copy.
  // Real substrates override with a true hard link.
  if (FileExists(target)) {
    return Status::IOError(target, "already exists");
  }
  std::string contents;
  Status s = ReadFileToString(this, src, &contents);
  if (!s.ok()) {
    return s;
  }
  return WriteStringToFile(this, contents, target);
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  static constexpr size_t kBufferSize = 64 << 10;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) {
      break;
    }
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) {
      break;
    }
  }
  return s;
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    // Best-effort cleanup of the partially written file; the write error
    // is what the caller needs to see.
    (void)env->RemoveFile(fname);
  }
  return s;
}

}  // namespace lsmlab
