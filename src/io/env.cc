#include "io/env.h"

namespace lsmlab {

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  static constexpr size_t kBufferSize = 64 << 10;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) {
      break;
    }
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) {
      break;
    }
  }
  return s;
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    // Best-effort cleanup of the partially written file; the write error
    // is what the caller needs to see.
    (void)env->RemoveFile(fname);
  }
  return s;
}

}  // namespace lsmlab
