#ifndef LSMLAB_IO_ENV_H_
#define LSMLAB_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// A file opened for sequential reading (WAL/manifest replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes. `*result` points into `scratch`, which must have
  /// at least `n` bytes. A short read signals EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class RandomAccessFile;

/// One positional read in a batch — the submission/completion unit of the
/// batched read API (DESIGN.md, "Batched I/O"). The caller owns `scratch`
/// (>= `len` bytes) and keeps it alive until MultiRead returns; on
/// completion `result` points into `scratch` (a short read signals EOF) and
/// `status` carries the per-request outcome. Requests in a batch are
/// independent: one failing never affects the others, and implementations
/// may execute them in any order (completion ordering is "all done when
/// MultiRead returns", nothing finer).
struct ReadRequest {
  /// Target file. Required for Env::MultiRead (requests of one batch may
  /// span files); RandomAccessFile::MultiRead reads from `this` and ignores
  /// the field.
  RandomAccessFile* file = nullptr;
  uint64_t offset = 0;
  size_t len = 0;
  char* scratch = nullptr;

  // Outputs.
  Slice result;
  Status status;
};

/// A file opened for positional reads (SSTables). Thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset`. `*result` points into
  /// `scratch`.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  /// Reads `n` requests from this file as one batch (`req.file` is
  /// ignored). The base implementation is a serial loop over Read();
  /// decorator files forward the whole batch to their target so counters
  /// and fault rules observe each request, and backends with real
  /// submission queues complete the batch with one kernel round trip.
  virtual void MultiRead(ReadRequest* reqs, size_t n) const;
};

/// A file opened for positional reads AND writes (the in-place page file of
/// the B+-tree baseline; LSM files never need this — they are immutable).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual Status Sync() = 0;
};

/// A file opened for appending (table building, WAL, manifest).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  /// Forces data to stable storage.
  virtual Status Sync() = 0;
};

/// Env abstracts the storage substrate. Production code uses the POSIX Env;
/// tests use MemEnv; measurement wraps either in CountingEnv, and device
/// emulation wraps in LatencyEnv. All methods are thread-safe.
class Env {
 public:
  virtual ~Env() = default;

  /// The default POSIX environment. Singleton; do not delete.
  static Env* Default();

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  /// Opens (creating if absent) a read-write file; existing contents are
  /// preserved (unlike NewWritableFile, which truncates).
  virtual Status NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Makes `target` name the same bytes as `src` (hard link where the
  /// substrate supports it). Both names stay valid; removing one does not
  /// affect the other. Checkpoints use this to share immutable SSTables and
  /// vlogs with the live DB without copying. The base implementation copies
  /// the file contents (and syncs), so substrates without link support stay
  /// correct, just slower. Fails if `src` is missing; `target` must not
  /// already exist.
  virtual Status LinkFile(const std::string& src, const std::string& target);

  /// Batched positional reads, possibly spanning files. Every file in the
  /// batch must have been opened through this env (decorator envs unwrap
  /// their own file wrappers to forward the batch to the base env). The
  /// default groups requests by file — in order of first appearance, each
  /// group in request order, so scripted fault rules fire on the same
  /// per-file op index as a serial loop — and forwards each group to
  /// RandomAccessFile::MultiRead. All requests are complete when the call
  /// returns; per-request outcomes are in ReadRequest::status.
  virtual void MultiRead(ReadRequest* reqs, size_t n);
};

/// Which mechanism the POSIX env uses to execute MultiRead batches.
enum class BatchIoBackend {
  /// One blocking pread per request, in order (the measurement baseline).
  kSerial,
  /// Requests fan out over a small dedicated I/O thread pool; the calling
  /// thread executes one itself. Portable to any kernel.
  kThreadPool,
  /// One io_uring submission (single io_uring_enter) for the whole batch.
  /// Linux-only; requires LSMLAB_IO_URING at build time and a kernel that
  /// accepts io_uring_setup at run time.
  kIoUring,
};

/// The POSIX substrate with a pinned batch backend, for tests, benches, and
/// the CI backend matrix. Returns a process-wide singleton (do not delete),
/// or nullptr for kIoUring when unavailable (compiled out, or the kernel /
/// container seccomp profile refuses io_uring_setup — probed once).
/// Env::Default() prefers io_uring and falls back to the thread pool;
/// the LSMLAB_IO_BACKEND environment variable (serial|threadpool|uring)
/// overrides the choice for a whole process.
Env* PosixEnvWithBackend(BatchIoBackend backend);

/// True when the io_uring backend is compiled in and the kernel accepts
/// io_uring_setup (ENOSYS/EPERM fallback detection; result is cached).
bool IoUringAvailable();

/// Reads the entire named file into `*data`.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Writes `data` as the full contents of the named file (then syncs).
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname);

}  // namespace lsmlab

#endif  // LSMLAB_IO_ENV_H_
