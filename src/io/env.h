#ifndef LSMLAB_IO_ENV_H_
#define LSMLAB_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// A file opened for sequential reading (WAL/manifest replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes. `*result` points into `scratch`, which must have
  /// at least `n` bytes. A short read signals EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// A file opened for positional reads (SSTables). Thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset`. `*result` points into
  /// `scratch`.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// A file opened for positional reads AND writes (the in-place page file of
/// the B+-tree baseline; LSM files never need this — they are immutable).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual Status Sync() = 0;
};

/// A file opened for appending (table building, WAL, manifest).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  /// Forces data to stable storage.
  virtual Status Sync() = 0;
};

/// Env abstracts the storage substrate. Production code uses the POSIX Env;
/// tests use MemEnv; measurement wraps either in CountingEnv, and device
/// emulation wraps in LatencyEnv. All methods are thread-safe.
class Env {
 public:
  virtual ~Env() = default;

  /// The default POSIX environment. Singleton; do not delete.
  static Env* Default();

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  /// Opens (creating if absent) a read-write file; existing contents are
  /// preserved (unlike NewWritableFile, which truncates).
  virtual Status NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
};

/// Reads the entire named file into `*data`.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Writes `data` as the full contents of the named file (then syncs).
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname);

}  // namespace lsmlab

#endif  // LSMLAB_IO_ENV_H_
