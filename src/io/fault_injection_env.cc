#include "io/fault_injection_env.h"

#include <algorithm>
#include <cstring>

#include "db/filename.h"

namespace lsmlab {

namespace {

Status InactiveError() {
  return Status::IOError("injected crash: filesystem inactive");
}

/// Write-through writable file: appends reach the base file immediately
/// (the DB reads its own unsynced output), but the env records how much of
/// the file is covered by a successful Sync() so DropUnsyncedData can
/// rewind to the durable prefix.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::string fname, std::unique_ptr<WritableFile> inner,
                    FaultInjectionEnv* env)
      : fname_(std::move(fname)), inner_(std::move(inner)), env_(env) {}

  Status Append(const Slice& data) override {
    if (!env_->filesystem_active()) {
      return InactiveError();
    }
    if (env_->fail_writes()) {
      return Status::IOError("injected write failure");
    }
    Status injected;
    if (env_->MaybeInjectFault(fname_, kFaultOpAppend, &injected)) {
      return injected;
    }
    Status s = inner_->Append(data);
    if (s.ok()) {
      env_->OnAppend(fname_, data.size());
    }
    return s;
  }

  Status Close() override {
    // Closing never implies durability: unsynced bytes stay droppable.
    return inner_->Close();
  }

  Status Flush() override { return inner_->Flush(); }

  Status Sync() override {
    if (!env_->filesystem_active()) {
      return InactiveError();
    }
    if (env_->fail_writes()) {
      return Status::IOError("injected sync failure");
    }
    Status injected;
    if (env_->MaybeInjectFault(fname_, kFaultOpSync, &injected)) {
      return injected;
    }
    Status s = inner_->Sync();
    if (s.ok()) {
      env_->OnSync(fname_);
    }
    return s;
  }

 private:
  const std::string fname_;
  std::unique_ptr<WritableFile> inner_;
  FaultInjectionEnv* const env_;
};

/// Copies the read result into `scratch` (if not already there) and flips
/// one bit, simulating silent media corruption.
void CorruptReadResult(Slice* result, char* scratch) {
  if (result->empty()) {
    return;
  }
  if (result->data() != scratch) {
    std::memmove(scratch, result->data(), result->size());
  }
  scratch[result->size() / 2] ^= 0x10;
  *result = Slice(scratch, result->size());
}

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(std::string fname, std::unique_ptr<SequentialFile> inner,
                      FaultInjectionEnv* env)
      : fname_(std::move(fname)), inner_(std::move(inner)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status injected;
    if (env_->MaybeInjectFault(fname_, kFaultOpRead, &injected)) {
      return injected;
    }
    Status s = inner_->Read(n, result, scratch);
    if (s.ok() && env_->MaybeCorruptRead(fname_)) {
      CorruptReadResult(result, scratch);
    }
    return s;
  }

  Status Skip(uint64_t n) override { return inner_->Skip(n); }

 private:
  const std::string fname_;
  std::unique_ptr<SequentialFile> inner_;
  FaultInjectionEnv* const env_;
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::string fname,
                        std::unique_ptr<RandomAccessFile> inner,
                        FaultInjectionEnv* env)
      : fname_(std::move(fname)), inner_(std::move(inner)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status injected;
    if (env_->MaybeInjectFault(fname_, kFaultOpRead, &injected)) {
      return injected;
    }
    Status s = inner_->Read(offset, n, result, scratch);
    if (s.ok() && env_->MaybeCorruptRead(fname_)) {
      CorruptReadResult(result, scratch);
    }
    return s;
  }

  // Batched reads keep serial fault semantics by phase separation: all
  // injected-error checks run in request order BEFORE the batch is
  // dispatched, and all corruption checks run in request order over the
  // successful reads AFTER it completes. Error rules (flip_bit == false)
  // and corruption rules (flip_bit == true) have disjoint matched-op
  // counters, so each rule still fires on exactly the op index a serial
  // Read loop would.
  void MultiRead(ReadRequest* reqs, size_t n) const override {
    std::vector<ReadRequest> pass;
    std::vector<size_t> pass_idx;
    pass.reserve(n);
    pass_idx.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Status injected;
      if (env_->MaybeInjectFault(fname_, kFaultOpRead, &injected)) {
        reqs[i].result = Slice();
        reqs[i].status = injected;
        continue;
      }
      pass.push_back(reqs[i]);
      pass_idx.push_back(i);
    }
    if (!pass.empty()) {
      inner_->MultiRead(pass.data(), pass.size());
    }
    for (size_t k = 0; k < pass.size(); ++k) {
      ReadRequest& req = reqs[pass_idx[k]];
      req.result = pass[k].result;
      req.status = pass[k].status;
      if (req.status.ok() && env_->MaybeCorruptRead(fname_)) {
        CorruptReadResult(&req.result, req.scratch);
      }
    }
  }

  RandomAccessFile* target() const { return inner_.get(); }
  const std::string& fname() const { return fname_; }

 private:
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> inner_;
  FaultInjectionEnv* const env_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {}

bool IsNoSpaceError(const Status& s) {
  return s.IsIOError() &&
         s.ToString().find("No space left on device") != std::string::npos;
}

uint32_t FaultInjectionEnv::FileKindOf(const std::string& fname) {
  size_t sep = fname.rfind('/');
  std::string basename =
      sep == std::string::npos ? fname : fname.substr(sep + 1);
  uint64_t number;
  FileType type;
  if (!ParseFileName(basename, &number, &type)) {
    return kFaultOther;
  }
  switch (type) {
    case FileType::kLogFile:
      return kFaultWal;
    case FileType::kTableFile:
      return kFaultTable;
    case FileType::kManifestFile:
      return kFaultManifest;
    case FileType::kVlogFile:
      return kFaultVlog;
    case FileType::kCurrentFile:
      return kFaultCurrent;
    case FileType::kCommitLogFile:
      return kFaultCommitLog;
    case FileType::kTempFile:
    case FileType::kShardsFile:
    case FileType::kUnknown:
      return kFaultOther;
  }
  return kFaultOther;
}

size_t FaultInjectionEnv::AddRule(const FaultRule& rule) {
  MutexLock lock(&mu_);
  rules_.push_back(RuleState{rule, 0, 0});
  have_rules_.store(true, std::memory_order_relaxed);
  return rules_.size() - 1;
}

void FaultInjectionEnv::ClearRules() {
  MutexLock lock(&mu_);
  rules_.clear();
  have_rules_.store(false, std::memory_order_relaxed);
}

bool FaultInjectionEnv::RuleFires(RuleState* rs) {
  const FaultRule& r = rs->rule;
  int64_t op_index = rs->matched - 1;  // Caller already counted this op.
  bool fires = false;
  if (r.at_op_index >= 0 && op_index == r.at_op_index) {
    fires = true;
  }
  if (!fires && r.one_in > 0 && rng_.OneIn(r.one_in)) {
    fires = true;
  }
  if (!fires) {
    return false;
  }
  if (r.max_failures >= 0 && rs->injected >= r.max_failures) {
    return false;  // Transient fault window exhausted.
  }
  ++rs->injected;
  injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjectionEnv::MaybeInjectFault(const std::string& fname, FaultOp op,
                                         Status* error) {
  if (!have_rules_.load(std::memory_order_relaxed)) {
    return false;
  }
  uint32_t kind = FileKindOf(fname);
  MutexLock lock(&mu_);
  for (auto& rs : rules_) {
    if (rs.rule.flip_bit || (rs.rule.file_kinds & kind) == 0 ||
        (rs.rule.ops & static_cast<uint32_t>(op)) == 0) {
      continue;
    }
    ++rs.matched;
    if (RuleFires(&rs)) {
      *error = rs.rule.error;
      return true;
    }
  }
  return false;
}

bool FaultInjectionEnv::MaybeCorruptRead(const std::string& fname) {
  if (!have_rules_.load(std::memory_order_relaxed)) {
    return false;
  }
  uint32_t kind = FileKindOf(fname);
  MutexLock lock(&mu_);
  for (auto& rs : rules_) {
    if (!rs.rule.flip_bit || (rs.rule.file_kinds & kind) == 0 ||
        (rs.rule.ops & kFaultOpRead) == 0) {
      continue;
    }
    ++rs.matched;
    if (RuleFires(&rs)) {
      return true;
    }
  }
  return false;
}

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t bytes) {
  MutexLock lock(&mu_);
  files_[fname].size += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  MutexLock lock(&mu_);
  auto it = files_.find(fname);
  if (it != files_.end()) {
    it->second.synced = it->second.size;
  }
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> inner;
  Status s = base_->NewSequentialFile(fname, &inner);
  if (!s.ok()) {
    return s;
  }
  *result = std::make_unique<FaultSequentialFile>(fname, std::move(inner),
                                                  this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> inner;
  Status s = base_->NewRandomAccessFile(fname, &inner);
  if (!s.ok()) {
    return s;
  }
  *result = std::make_unique<FaultRandomAccessFile>(fname, std::move(inner),
                                                    this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  if (!filesystem_active()) {
    return InactiveError();
  }
  Status injected;
  if (MaybeInjectFault(fname, kFaultOpOpen, &injected)) {
    return injected;
  }
  std::unique_ptr<WritableFile> inner;
  Status s = base_->NewWritableFile(fname, &inner);
  if (!s.ok()) {
    return s;
  }
  {
    // NewWritableFile truncates: the file starts empty and fully unsynced.
    MutexLock lock(&mu_);
    files_[fname] = FileState{};
  }
  *result = std::make_unique<FaultWritableFile>(fname, std::move(inner), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomRWFile(
    const std::string& fname, std::unique_ptr<RandomRWFile>* result) {
  // Only the B+-tree baseline uses RW files; gate the open but pass the
  // handle through unwrapped (no crash tracking for in-place page writes).
  if (!filesystem_active()) {
    return InactiveError();
  }
  Status injected;
  if (MaybeInjectFault(fname, kFaultOpOpen, &injected)) {
    return injected;
  }
  return base_->NewRandomRWFile(fname, result);
}

void FaultInjectionEnv::MultiRead(ReadRequest* reqs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (dynamic_cast<FaultRandomAccessFile*>(reqs[i].file) == nullptr) {
      // Foreign file in the batch: per-file groups reach the file-level
      // wrapper override, which keeps serial semantics within each group.
      Env::MultiRead(reqs, n);
      return;
    }
  }
  // Same two-phase split as the file-level override (see
  // FaultRandomAccessFile::MultiRead), here across files: checks follow
  // request order even when the batch interleaves files, which the default
  // group-by-file dispatch would reorder.
  std::vector<ReadRequest> pass;
  std::vector<size_t> pass_idx;
  pass.reserve(n);
  pass_idx.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto* file = static_cast<FaultRandomAccessFile*>(reqs[i].file);
    Status injected;
    if (MaybeInjectFault(file->fname(), kFaultOpRead, &injected)) {
      reqs[i].result = Slice();
      reqs[i].status = injected;
      continue;
    }
    ReadRequest shadow = reqs[i];
    shadow.file = file->target();
    pass.push_back(shadow);
    pass_idx.push_back(i);
  }
  if (!pass.empty()) {
    base_->MultiRead(pass.data(), pass.size());
  }
  for (size_t k = 0; k < pass.size(); ++k) {
    ReadRequest& req = reqs[pass_idx[k]];
    auto* file = static_cast<FaultRandomAccessFile*>(req.file);
    req.result = pass[k].result;
    req.status = pass[k].status;
    if (req.status.ok() && MaybeCorruptRead(file->fname())) {
      CorruptReadResult(&req.result, req.scratch);
    }
  }
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  if (!filesystem_active()) {
    return InactiveError();
  }
  Status injected;
  if (MaybeInjectFault(fname, kFaultOpRemove, &injected)) {
    return injected;
  }
  Status s = base_->RemoveFile(fname);
  if (s.ok()) {
    MutexLock lock(&mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  if (!filesystem_active()) {
    return InactiveError();
  }
  return base_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  if (!filesystem_active()) {
    return InactiveError();
  }
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  if (!filesystem_active()) {
    return InactiveError();
  }
  Status injected;
  if (MaybeInjectFault(src, kFaultOpRename, &injected)) {
    return injected;
  }
  Status s = base_->RenameFile(src, target);
  if (s.ok()) {
    MutexLock lock(&mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

Status FaultInjectionEnv::LinkFile(const std::string& src,
                                   const std::string& target) {
  if (!filesystem_active()) {
    return InactiveError();
  }
  Status injected;
  if (MaybeInjectFault(src, kFaultOpLink, &injected)) {
    return injected;
  }
  Status s = base_->LinkFile(src, target);
  if (s.ok()) {
    MutexLock lock(&mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      // The link names the same bytes as the source, so it inherits the
      // source's durability exactly: synced prefix and all. Without this a
      // crash right after a checkpoint would rewind the linked name to
      // empty and "tear" an immutable SSTable that was in fact durable.
      files_[target] = it->second;
    }
    // An untracked source (created before this env wrapped the substrate)
    // stays untracked under the target name too: untracked files are
    // treated as fully durable, which is what immutability implies.
  }
  return s;
}

Status FaultInjectionEnv::DropUnsyncedData(uint64_t torn_tail_one_in) {
  MutexLock lock(&mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    FileState& state = it->second;
    const std::string& fname = it->first;
    if (state.synced >= state.size) {
      ++it;
      continue;  // Fully durable.
    }
    std::string contents;
    Status s = ReadFileToString(base_, fname, &contents);
    if (s.IsNotFound()) {
      it = files_.erase(it);  // Already gone (renamed-over or removed).
      continue;
    }
    if (!s.ok()) {
      return s;
    }
    std::string keep = contents.substr(
        0, static_cast<size_t>(std::min<uint64_t>(state.synced,
                                                  contents.size())));
    std::string tail = contents.substr(keep.size());
    // Torn tails only apply to files with at least one durable prefix byte:
    // a never-synced file's directory entry was never fsynced either, so
    // after a crash the whole file disappears (below) — no fragment may
    // keep it alive.
    if (torn_tail_one_in > 0 && !tail.empty() && state.synced > 0 &&
        rng_.OneIn(torn_tail_one_in)) {
      // A torn write: part of the unsynced tail made it to the platter,
      // with its final byte mangled mid-transfer.
      size_t frag_len = 1 + static_cast<size_t>(rng_.Uniform(tail.size()));
      std::string frag = tail.substr(0, frag_len);
      frag.back() = static_cast<char>(frag.back() ^ 0x40);
      keep += frag;
    }
    if (keep.empty()) {
      // Never synced: after a crash the file (its directory entry was never
      // fsynced either) is simply gone.
      s = base_->RemoveFile(fname);
      if (!s.ok() && !s.IsNotFound()) {
        return s;
      }
      it = files_.erase(it);
      continue;
    }
    s = WriteStringToFile(base_, keep, fname);
    if (!s.ok()) {
      return s;
    }
    state.size = keep.size();
    state.synced = keep.size();
    ++it;
  }
  return Status::OK();
}

}  // namespace lsmlab
