#ifndef LSMLAB_IO_FAULT_INJECTION_ENV_H_
#define LSMLAB_IO_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/env.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Bitmask selecting which DB files a fault rule applies to (classified by
/// filename via db/filename.h).
enum FaultFileKind : uint32_t {
  kFaultWal = 1u << 0,
  kFaultTable = 1u << 1,
  kFaultManifest = 1u << 2,
  kFaultVlog = 1u << 3,
  kFaultCurrent = 1u << 4,
  kFaultOther = 1u << 5,  // CURRENT temp files, unknown names.
  kFaultCommitLog = 1u << 6,  // Sharded facade's cross-shard commit log.
  kFaultAnyFile = 0xffffffffu,
};

/// Bitmask selecting which operations a fault rule intercepts.
enum FaultOp : uint32_t {
  kFaultOpOpen = 1u << 0,    // NewWritableFile
  kFaultOpAppend = 1u << 1,  // WritableFile::Append
  kFaultOpSync = 1u << 2,    // WritableFile::Sync
  kFaultOpRead = 1u << 3,    // Sequential / random-access reads
  kFaultOpRename = 1u << 4,  // Env::RenameFile (matched on source name)
  kFaultOpRemove = 1u << 5,  // Env::RemoveFile
  kFaultOpLink = 1u << 6,    // Env::LinkFile (matched on source name)
};

/// One fault program: scripted (`at_op_index`) or probabilistic (`one_in`)
/// injection into the matching (file kind x operation) set. Transient
/// faults are expressed with `max_failures`; a rule with max_failures < 0
/// injects forever (a hard device failure).
struct FaultRule {
  uint32_t file_kinds = kFaultAnyFile;
  uint32_t ops = 0;
  /// Probabilistic: each matching op fails with probability 1/one_in
  /// (0 disables the probabilistic trigger).
  uint64_t one_in = 0;
  /// Scripted: exactly the at_op_index-th matching op (0-based) fails.
  /// -1 disables the scripted trigger.
  int64_t at_op_index = -1;
  /// Stop injecting after this many failures; < 0 means unlimited.
  int64_t max_failures = -1;
  /// Read rules only: instead of failing the read, flip one bit in the
  /// returned data (silent corruption; exercises checksum paths).
  bool flip_bit = false;
  /// The error injected failures return.
  Status error = Status::IOError("injected fault");

  /// A disk-full (ENOSPC) rule for the given file kinds and ops: same
  /// machinery, but the injected error carries the POSIX no-space message
  /// so ErrorState can classify it (soft for flush/compaction outputs,
  /// hard for WAL/manifest). `max_failures` bounds the outage; < 0 means
  /// the disk never frees up.
  static FaultRule NoSpace(uint32_t file_kinds, uint32_t ops,
                           int64_t at_op_index = 0,
                           int64_t max_failures = -1) {
    FaultRule rule;
    rule.file_kinds = file_kinds;
    rule.ops = ops;
    rule.at_op_index = at_op_index;
    rule.max_failures = max_failures;
    rule.error = Status::IOError("No space left on device");
    return rule;
  }
};

/// True when `s` is the disk-full error FaultRule::NoSpace injects (or a
/// real POSIX ENOSPC surfaced through PosixError). The kFaultNoSpace test
/// axes use this to assert the right error reached the right layer.
bool IsNoSpaceError(const Status& s);

/// Env decorator for robustness testing (peer of CountingEnv/LatencyEnv):
/// injects scripted or probabilistic I/O errors per file kind and op, and
/// simulates process crashes. Writes pass through to the base env (the DB
/// reads its own unsynced output, e.g. vlog values), but every byte
/// appended after the file's last successful Sync() is tracked; a "crash"
/// (SetFilesystemActive(false) -> close DB -> DropUnsyncedData()) truncates
/// each file back to its synced prefix — never-synced files disappear
/// entirely — optionally leaving a deterministic torn tail. Thread-safe;
/// does not take ownership of `base`.
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base, uint64_t seed = 0xfeedfacedeadbeefull);

  // --- Fault programs ------------------------------------------------------
  /// Installs a rule; returns its index (for debugging).
  size_t AddRule(const FaultRule& rule) EXCLUDES(mu_);
  void ClearRules() EXCLUDES(mu_);
  /// Total faults injected by rules (not by the crash kill switch).
  uint64_t injected_faults() const {
    return injected_faults_.load(std::memory_order_relaxed);
  }

  /// Convenience kill switch matching the old test-local FailSwitchEnv:
  /// while set, every Append and Sync on every file fails.
  void SetFailWrites(bool fail) {
    fail_writes_.store(fail, std::memory_order_relaxed);
  }

  // --- Crash simulation ----------------------------------------------------
  /// While inactive, every mutating operation (opens, appends, syncs,
  /// renames, removals, mkdir) fails as if the device vanished; reads keep
  /// working. This freezes on-disk state at the crash point so the DB can
  /// be shut down without its background work mutating anything further.
  void SetFilesystemActive(bool active) {
    filesystem_active_.store(active, std::memory_order_relaxed);
  }
  bool filesystem_active() const {
    return filesystem_active_.load(std::memory_order_relaxed);
  }

  /// Completes the crash: rewinds every tracked file to its last-synced
  /// prefix (deleting files that were never synced). With
  /// torn_tail_one_in > 0, each file that lost bytes keeps — with
  /// probability 1/n — a random-length prefix of its unsynced tail whose
  /// final byte is corrupted (a torn write). Deterministic given the
  /// constructor seed. Requires all DB handles into this env to be closed.
  Status DropUnsyncedData(uint64_t torn_tail_one_in = 0) EXCLUDES(mu_);

  // --- Env interface -------------------------------------------------------
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src, const std::string& target) override;
  /// Forwards the link and copies the source's synced-prefix bookkeeping to
  /// the target: a linked file is exactly as durable as its source, so a
  /// later crash must not spuriously "tear" an immutable linked SSTable.
  Status LinkFile(const std::string& src, const std::string& target) override;
  /// Batched reads with serial-equivalent fault semantics: every
  /// injected-error rule check runs in request order before dispatch, every
  /// flip_bit check in request order after completion, so scripted
  /// at_op_index rules fire on the same per-rule op index as a serial Read
  /// loop over the same requests. Unwraps this env's own file wrappers so
  /// the base env sees one cross-file batch.
  void MultiRead(ReadRequest* reqs, size_t n) override;

  // Internal taps used by the wrapper file classes (public for them only).
  /// Returns true (filling *error) when a rule fires for (fname, op).
  bool MaybeInjectFault(const std::string& fname, FaultOp op, Status* error)
      EXCLUDES(mu_);
  /// Read-side corruption: true when a flip_bit read rule fires for fname.
  bool MaybeCorruptRead(const std::string& fname) EXCLUDES(mu_);
  void OnAppend(const std::string& fname, uint64_t bytes) EXCLUDES(mu_);
  void OnSync(const std::string& fname) EXCLUDES(mu_);
  bool fail_writes() const {
    return fail_writes_.load(std::memory_order_relaxed);
  }

 private:
  /// Write-through bookkeeping for one file created via this env.
  struct FileState {
    uint64_t size = 0;    // Bytes successfully appended.
    uint64_t synced = 0;  // Size at the last successful Sync().
  };
  struct RuleState {
    FaultRule rule;
    int64_t matched = 0;   // Ops seen matching (kinds x ops).
    int64_t injected = 0;  // Faults this rule has injected.
  };

  static uint32_t FileKindOf(const std::string& fname);
  bool RuleFires(RuleState* rs) REQUIRES(mu_);

  Env* const base_;
  std::atomic<bool> filesystem_active_{true};
  std::atomic<bool> fail_writes_{false};
  std::atomic<uint64_t> injected_faults_{0};
  /// Cheap gate so fault-free runs skip the mutex on every op.
  std::atomic<bool> have_rules_{false};

  mutable Mutex mu_{LockRank::kIoWrapperEnv, "fault_injection_env.mu"};
  Random rng_ GUARDED_BY(mu_);
  std::vector<RuleState> rules_ GUARDED_BY(mu_);
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_FAULT_INJECTION_ENV_H_
