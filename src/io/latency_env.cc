#include "io/latency_env.h"

namespace lsmlab {

namespace {

class LatencySequentialFile final : public SequentialFile {
 public:
  LatencySequentialFile(std::unique_ptr<SequentialFile> base,
                        const LatencyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      env_->ChargeIo(result->size());
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  const LatencyEnv* const env_;
};

class LatencyRandomAccessFile final : public RandomAccessFile {
 public:
  LatencyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                          const LatencyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      env_->ChargeIo(result->size());
    }
    return s;
  }

  void MultiRead(ReadRequest* reqs, size_t n) const override {
    base_->MultiRead(reqs, n);
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (reqs[i].status.ok()) {
        total += reqs[i].result.size();
      }
    }
    env_->ChargeIo(total);  // One op charge for the whole batch (NCQ).
  }

  RandomAccessFile* target() const { return base_.get(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  const LatencyEnv* const env_;
};

class LatencyWritableFile final : public WritableFile {
 public:
  LatencyWritableFile(std::unique_ptr<WritableFile> base,
                      const LatencyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      env_->ChargeIo(data.size());
    }
    return s;
  }
  Status Close() override { return base_->Close(); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    Status s = base_->Sync();
    if (s.ok()) {
      // An fsync costs one device round trip regardless of bytes; this is
      // what group commit amortizes across writers.
      env_->ChargeIo(0);
    }
    return s;
  }

 private:
  std::unique_ptr<WritableFile> base_;
  const LatencyEnv* const env_;
};

class LatencyRandomRWFile final : public RandomRWFile {
 public:
  LatencyRandomRWFile(std::unique_ptr<RandomRWFile> base,
                      const LatencyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Write(uint64_t offset, const Slice& data) override {
    Status s = base_->Write(offset, data);
    if (s.ok()) {
      env_->ChargeIo(data.size());
    }
    return s;
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      env_->ChargeIo(result->size());
    }
    return s;
  }

  Status Sync() override { return base_->Sync(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  const LatencyEnv* const env_;
};

}  // namespace

Status LatencyEnv::NewRandomRWFile(const std::string& fname,
                                   std::unique_ptr<RandomRWFile>* result) {
  std::unique_ptr<RandomRWFile> base_file;
  Status s = base_->NewRandomRWFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<LatencyRandomRWFile>(std::move(base_file), this);
  }
  return s;
}

void LatencyEnv::MultiRead(ReadRequest* reqs, size_t n) {
  std::vector<ReadRequest> shadow(reqs, reqs + n);
  for (size_t i = 0; i < n; ++i) {
    auto* wrapped = dynamic_cast<LatencyRandomAccessFile*>(reqs[i].file);
    if (wrapped == nullptr) {
      // Foreign file in the batch: the per-file groups reach
      // LatencyRandomAccessFile::MultiRead, which charges per group.
      Env::MultiRead(reqs, n);
      return;
    }
    shadow[i].file = wrapped->target();
  }
  base_->MultiRead(shadow.data(), n);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    reqs[i].result = shadow[i].result;
    reqs[i].status = shadow[i].status;
    if (reqs[i].status.ok()) {
      total += reqs[i].result.size();
    }
  }
  ChargeIo(total);  // One op charge for the whole cross-file batch (NCQ).
}

void LatencyEnv::ChargeIo(uint64_t bytes) const {
  uint64_t transfer_micros =
      model_.bandwidth_bytes_per_sec == 0
          ? 0
          : bytes * 1000000ull / model_.bandwidth_bytes_per_sec;
  clock_->SleepForMicros(model_.per_op_latency_micros + transfer_micros);
}

Status LatencyEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base_file;
  Status s = base_->NewSequentialFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<LatencySequentialFile>(std::move(base_file), this);
  }
  return s;
}

Status LatencyEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  Status s = base_->NewRandomAccessFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<LatencyRandomAccessFile>(std::move(base_file), this);
  }
  return s;
}

Status LatencyEnv::NewWritableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (s.ok()) {
    *result =
        std::make_unique<LatencyWritableFile>(std::move(base_file), this);
  }
  return s;
}

}  // namespace lsmlab
