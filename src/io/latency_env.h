#ifndef LSMLAB_IO_LATENCY_ENV_H_
#define LSMLAB_IO_LATENCY_ENV_H_

#include <cstdint>

#include "io/env.h"
#include "util/clock.h"

namespace lsmlab {

/// Parameters of an emulated storage device. The tutorial's experiments ran
/// on real SSD/HDD testbeds; LatencyEnv substitutes a configurable device
/// model so latency-shaped results (write stalls, SILK tail latencies) are
/// reproducible on any machine.
struct DeviceModel {
  /// Fixed cost per I/O operation (seek/command overhead).
  uint64_t per_op_latency_micros = 100;
  /// Streaming throughput in bytes/sec used to charge transfer time.
  uint64_t bandwidth_bytes_per_sec = 200ull << 20;

  static DeviceModel Ssd() { return DeviceModel{100, 500ull << 20}; }
  static DeviceModel Hdd() { return DeviceModel{8000, 150ull << 20}; }
  static DeviceModel Nvme() { return DeviceModel{20, 2000ull << 20}; }
};

/// Env decorator that charges DeviceModel time for every read/write by
/// sleeping on the provided Clock. Combine with MockClock for deterministic
/// virtual-time experiments, or SystemClock for wall-clock emulation.
class LatencyEnv final : public Env {
 public:
  /// Does not take ownership of `base` or `clock`.
  LatencyEnv(Env* base, DeviceModel model, Clock* clock)
      : base_(base), model_(model), clock_(clock) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status LinkFile(const std::string& src, const std::string& target) override {
    return base_->LinkFile(src, target);  // Metadata op: no transfer charge.
  }
  /// Charges the batch like a queued device (NCQ): ONE per-op latency for
  /// the whole submission plus transfer time for the total bytes — the cost
  /// model behind the batched-MultiGet speedup measured in A6. Unwraps this
  /// env's own file wrappers so the base env sees one cross-file batch.
  void MultiRead(ReadRequest* reqs, size_t n) override;

  // Internal: charges `bytes` of transfer plus one op of fixed latency.
  void ChargeIo(uint64_t bytes) const;

 private:
  Env* const base_;
  const DeviceModel model_;
  Clock* const clock_;
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_LATENCY_ENV_H_
