#include "io/lock_checking_env.h"

#include <utility>

#include "util/lock_rank.h"

namespace lsmlab {

namespace {

class LockCheckingSequentialFile final : public SequentialFile {
 public:
  LockCheckingSequentialFile(std::string fname,
                             std::unique_ptr<SequentialFile> base)
      : fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", fname_.c_str());
    return base_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  const std::string fname_;
  const std::unique_ptr<SequentialFile> base_;
};

class LockCheckingRandomAccessFile final : public RandomAccessFile {
 public:
  LockCheckingRandomAccessFile(std::string fname,
                               std::unique_ptr<RandomAccessFile> base)
      : fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", fname_.c_str());
    return base_->Read(offset, n, result, scratch);
  }

  void MultiRead(ReadRequest* reqs, size_t n) const override {
    LSMLAB_CHECK_IO_UNDER_LOCK("MultiRead", fname_.c_str());
    // Re-point the batch at the wrapped files so the base env (or base
    // file) services real handles, mirroring FaultInjectionEnv::MultiRead.
    std::vector<RandomAccessFile*> saved(n);
    for (size_t i = 0; i < n; ++i) {
      saved[i] = reqs[i].file;
      auto* wrapper =
          static_cast<const LockCheckingRandomAccessFile*>(reqs[i].file);
      reqs[i].file = wrapper->base();
    }
    base_->MultiRead(reqs, n);
    for (size_t i = 0; i < n; ++i) {
      reqs[i].file = saved[i];
    }
  }

  RandomAccessFile* base() const { return base_.get(); }

 private:
  const std::string fname_;
  const std::unique_ptr<RandomAccessFile> base_;
};

class LockCheckingWritableFile final : public WritableFile {
 public:
  LockCheckingWritableFile(std::string fname,
                           std::unique_ptr<WritableFile> base)
      : fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Append", fname_.c_str());
    return base_->Append(data);
  }

  Status Close() override { return base_->Close(); }
  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Sync", fname_.c_str());
    return base_->Sync();
  }

 private:
  const std::string fname_;
  const std::unique_ptr<WritableFile> base_;
};

class LockCheckingRandomRWFile final : public RandomRWFile {
 public:
  LockCheckingRandomRWFile(std::string fname,
                           std::unique_ptr<RandomRWFile> base)
      : fname_(std::move(fname)), base_(std::move(base)) {}

  Status Write(uint64_t offset, const Slice& data) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Write", fname_.c_str());
    return base_->Write(offset, data);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", fname_.c_str());
    return base_->Read(offset, n, result, scratch);
  }

  Status Sync() override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Sync", fname_.c_str());
    return base_->Sync();
  }

 private:
  const std::string fname_;
  const std::unique_ptr<RandomRWFile> base_;
};

}  // namespace

Status LockCheckingEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> inner;
  Status s = base_->NewSequentialFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<LockCheckingSequentialFile>(fname, std::move(inner));
  }
  return s;
}

Status LockCheckingEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> inner;
  Status s = base_->NewRandomAccessFile(fname, &inner);
  if (s.ok()) {
    *result = std::make_unique<LockCheckingRandomAccessFile>(fname,
                                                             std::move(inner));
  }
  return s;
}

Status LockCheckingEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> inner;
  Status s = base_->NewWritableFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<LockCheckingWritableFile>(fname, std::move(inner));
  }
  return s;
}

Status LockCheckingEnv::NewRandomRWFile(const std::string& fname,
                                        std::unique_ptr<RandomRWFile>* result) {
  std::unique_ptr<RandomRWFile> inner;
  Status s = base_->NewRandomRWFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<LockCheckingRandomRWFile>(fname, std::move(inner));
  }
  return s;
}

bool LockCheckingEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status LockCheckingEnv::GetChildren(const std::string& dir,
                                    std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status LockCheckingEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}

Status LockCheckingEnv::CreateDir(const std::string& dirname) {
  return base_->CreateDir(dirname);
}

Status LockCheckingEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status LockCheckingEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status LockCheckingEnv::RenameFile(const std::string& src,
                                   const std::string& target) {
  return base_->RenameFile(src, target);
}

Status LockCheckingEnv::LinkFile(const std::string& src,
                                 const std::string& target) {
  // Metadata op, unchecked like Rename: checkpoints link under the engine
  // mutex by design (the same sanctioned pattern as obsolete-file GC).
  return base_->LinkFile(src, target);
}

void LockCheckingEnv::MultiRead(ReadRequest* reqs, size_t n) {
  LSMLAB_CHECK_IO_UNDER_LOCK("MultiRead", "batch");
  std::vector<RandomAccessFile*> saved(n);
  for (size_t i = 0; i < n; ++i) {
    saved[i] = reqs[i].file;
    auto* wrapper =
        static_cast<const LockCheckingRandomAccessFile*>(reqs[i].file);
    reqs[i].file = wrapper->base();
  }
  base_->MultiRead(reqs, n);
  for (size_t i = 0; i < n; ++i) {
    reqs[i].file = saved[i];
  }
}

}  // namespace lsmlab
