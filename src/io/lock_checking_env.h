#ifndef LSMLAB_IO_LOCK_CHECKING_ENV_H_
#define LSMLAB_IO_LOCK_CHECKING_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "io/env.h"

namespace lsmlab {

/// Env wrapper that asserts no I/O-forbidding ranked mutex (see
/// RankForbidsIo in util/lock_order.h) is held when a data-path operation —
/// Append/Sync/Read/Write/MultiRead — enters the wrapped env. The concrete
/// envs (PosixEnv, MemEnv) already run the same check inline; this wrapper
/// exists for composition tests and for checking env implementations that
/// carry no hooks of their own (e.g. a test double), so the detector's
/// coverage does not depend on which backend a test happens to use.
///
/// Metadata operations (FileExists, GetChildren, Remove/Rename/CreateDir)
/// are deliberately unchecked: several are held under mu_ by design
/// (obsolete-file GC) and they do not sit on any user-visible latency path.
///
/// When the validator is compiled out (no LSMLAB_LOCK_RANK_CHECKS) the
/// wrapper degrades to pure delegation.
class LockCheckingEnv : public Env {
 public:
  /// Does not take ownership of `base`, matching FaultInjectionEnv.
  explicit LockCheckingEnv(Env* base) : base_(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status LinkFile(const std::string& src, const std::string& target) override;
  void MultiRead(ReadRequest* reqs, size_t n) override;

  Env* base() const { return base_; }

 private:
  Env* const base_;
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_LOCK_CHECKING_ENV_H_
