#include "io/mem_env.h"

#include "util/lock_rank.h"

#include <algorithm>
#include <cstring>

namespace lsmlab {

namespace {

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)), pos_(0) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", "mem sequential file");
    size_t available = content_->size() - std::min(pos_, content_->size());
    size_t to_read = std::min(n, available);
    std::memcpy(scratch, content_->data() + pos_, to_read);
    pos_ += to_read;
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

 private:
  const std::shared_ptr<std::string> content_;
  size_t pos_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", "mem random-access file");
    if (offset >= content_->size()) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    size_t to_read =
        std::min(n, content_->size() - static_cast<size_t>(offset));
    std::memcpy(scratch, content_->data() + offset, to_read);
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

 private:
  const std::shared_ptr<std::string> content_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)) {}

  Status Append(const Slice& data) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Append", "mem writable file");
    content_->append(data.data(), data.size());
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Sync", "mem writable file");
    return Status::OK();
  }

 private:
  const std::shared_ptr<std::string> content_;
};

class MemRandomRWFile final : public RandomRWFile {
 public:
  explicit MemRandomRWFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)) {}

  Status Write(uint64_t offset, const Slice& data) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Write", "mem random-rw file");
    size_t end = static_cast<size_t>(offset) + data.size();
    if (content_->size() < end) {
      content_->resize(end, '\0');
    }
    std::memcpy(content_->data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (offset >= content_->size()) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    size_t to_read =
        std::min(n, content_->size() - static_cast<size_t>(offset));
    std::memcpy(scratch, content_->data() + offset, to_read);
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  const std::shared_ptr<std::string> content_;
};

}  // namespace

Status MemEnv::NewRandomRWFile(const std::string& fname,
                               std::unique_ptr<RandomRWFile>* result) {
  MutexLock lock(&mu_);
  auto it = files_.find(fname);
  std::shared_ptr<std::string> content;
  if (it == files_.end()) {
    content = std::make_shared<std::string>();
    files_[fname] = content;
  } else {
    content = it->second;
  }
  *result = std::make_unique<MemRandomRWFile>(std::move(content));
  return Status::OK();
}

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  MutexLock lock(&mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    result->reset();
    return Status::NotFound(fname);
  }
  *result = std::make_unique<MemSequentialFile>(it->second);
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  MutexLock lock(&mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    result->reset();
    return Status::NotFound(fname);
  }
  *result = std::make_unique<MemRandomAccessFile>(it->second);
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  MutexLock lock(&mu_);
  auto content = std::make_shared<std::string>();
  files_[fname] = content;
  *result = std::make_unique<MemWritableFile>(std::move(content));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  MutexLock lock(&mu_);
  return files_.count(fname) > 0;
}

Status MemEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  result->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') {
    prefix += '/';
  }
  MutexLock lock(&mu_);
  for (const auto& [name, content] : files_) {
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.find('/', prefix.size()) == std::string::npos) {
      result->push_back(name.substr(prefix.size()));
    }
  }
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  MutexLock lock(&mu_);
  if (files_.erase(fname) == 0) {
    return Status::NotFound(fname);
  }
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string& dirname) {
  MutexLock lock(&mu_);
  dirs_.insert(dirname);
  return Status::OK();
}

Status MemEnv::RemoveDir(const std::string& dirname) {
  MutexLock lock(&mu_);
  dirs_.erase(dirname);
  return Status::OK();
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  MutexLock lock(&mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    *size = 0;
    return Status::NotFound(fname);
  }
  *size = it->second->size();
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  MutexLock lock(&mu_);
  auto it = files_.find(src);
  if (it == files_.end()) {
    return Status::NotFound(src);
  }
  files_[target] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::LinkFile(const std::string& src, const std::string& target) {
  MutexLock lock(&mu_);
  auto it = files_.find(src);
  if (it == files_.end()) {
    return Status::NotFound(src);
  }
  if (files_.count(target) > 0) {
    return Status::IOError(target, "already exists");
  }
  // True hard-link semantics: both names share the content object.
  // NewWritableFile replaces (not mutates) the map entry, so a later
  // truncate of either name cannot bleed into the other.
  files_[target] = it->second;
  return Status::OK();
}

uint64_t MemEnv::TotalFileBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, content] : files_) {
    total += content->size();
  }
  return total;
}

}  // namespace lsmlab
