#ifndef LSMLAB_IO_MEM_ENV_H_
#define LSMLAB_IO_MEM_ENV_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "io/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// An Env backed entirely by in-process memory. Deterministic and fast; the
/// default substrate for unit tests and I/O-count benchmarks. Directory
/// structure is emulated by path prefixes.
class MemEnv final : public Env {
 public:
  MemEnv() = default;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status LinkFile(const std::string& src, const std::string& target) override;

  /// Total bytes held across all files (space-amplification measurements).
  uint64_t TotalFileBytes() const;

 private:
  // Shared ownership: open readers keep content alive after RemoveFile, as
  // POSIX unlink semantics require (compactions delete inputs while
  // iterators may still read them).
  using FileRef = std::shared_ptr<const std::string>;

  mutable Mutex mu_{LockRank::kIoEnv, "mem_env.mu"};
  std::map<std::string, std::shared_ptr<std::string>> files_ GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_MEM_ENV_H_
