#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "io/env.h"
#include "io/uring_io.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace lsmlab {

namespace {

// strerror_r has two incompatible signatures (XSI returns int and fills the
// buffer; GNU returns the message pointer). These overloads unpack either
// at compile time, keeping PosixError thread-safe (std::strerror is not).
inline const char* StrerrorResult(char* ret, const char* /*buf*/) {
  return ret;  // GNU variant.
}
inline const char* StrerrorResult(int /*ret*/, const char* buf) {
  return buf;  // XSI variant.
}

Status PosixError(const std::string& context, int err) {
  char buf[256];
  buf[0] = '\0';
  const char* msg = StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
  if (err == ENOENT) {
    return Status::NotFound(context, msg);
  }
  return Status::IOError(context, msg);
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", fname_.c_str());
    while (true) {
      ::ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

/// One ReadRequest bound to its target fd, ready for any backend.
struct BoundRead {
  int fd = -1;
  const std::string* fname = nullptr;
  ReadRequest* req = nullptr;
};

void ExecuteOne(const BoundRead& op) {
  ::ssize_t r = ::pread(op.fd, op.req->scratch, op.req->len,
                        static_cast<off_t>(op.req->offset));
  if (r < 0) {
    op.req->result = Slice();
    op.req->status = PosixError(*op.fname, errno);
    return;
  }
  op.req->result = Slice(op.req->scratch, static_cast<size_t>(r));
  op.req->status = Status::OK();
}

/// Dedicated I/O pool for the thread-pool backend. Separate from the DB's
/// flush/compaction pool: batch reads must not queue behind a compaction
/// (and the DB pool must not queue behind reads).
ThreadPool* IoPool() {
  static ThreadPool* pool = new ThreadPool(4);
  return pool;
}

void ThreadPoolBatch(BoundRead* ops, size_t n) {
  if (n == 1) {
    ExecuteOne(ops[0]);
    return;
  }
  Mutex mu{LockRank::kIoLatch, "posix_env.batch_latch"};
  CondVar cv;
  size_t pending = n - 1;
  ThreadPool* pool = IoPool();
  for (size_t i = 1; i < n; ++i) {
    pool->Schedule(
        [&mu, &cv, &pending, op = ops[i]] {
          ExecuteOne(op);
          MutexLock lock(&mu);
          if (--pending == 0) {
            cv.Signal();
          }
        },
        ThreadPool::Priority::kHigh);
  }
  // The calling thread contributes a read instead of idling on the latch.
  ExecuteOne(ops[0]);
  MutexLock lock(&mu);
  while (pending > 0) {
    cv.Wait(mu);
  }
}

/// One io_uring submission for the whole batch. Returns false when no ring
/// is available on this thread (caller falls back to the thread pool).
bool UringBatch(BoundRead* ops, size_t n) {
  // One ring per thread: rings are single-threaded by design and a
  // thread_local avoids locking around the submission queue.
  static thread_local std::unique_ptr<UringQueue> ring =
      UringQueue::Create(64);
  if (ring == nullptr) {
    return false;
  }
  std::vector<UringPread> preads(n);
  for (size_t i = 0; i < n; ++i) {
    preads[i].fd = ops[i].fd;
    preads[i].offset = ops[i].req->offset;
    preads[i].len = ops[i].req->len;
    preads[i].buf = ops[i].req->scratch;
  }
  if (!ring->PreadBatch(preads.data(), n)) {
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    ReadRequest* req = ops[i].req;
    if (preads[i].result < 0) {
      req->result = Slice();
      req->status =
          PosixError(*ops[i].fname, static_cast<int>(-preads[i].result));
    } else {
      req->result =
          Slice(req->scratch, static_cast<size_t>(preads[i].result));
      req->status = Status::OK();
    }
  }
  return true;
}

void DispatchBatch(BatchIoBackend backend, BoundRead* ops, size_t n) {
  if (n == 0) {
    return;
  }
  switch (backend) {
    case BatchIoBackend::kIoUring:
      if (UringBatch(ops, n)) {
        return;
      }
      [[fallthrough]];  // Ring unavailable on this thread: portable path.
    case BatchIoBackend::kThreadPool:
      ThreadPoolBatch(ops, n);
      return;
    case BatchIoBackend::kSerial:
      for (size_t i = 0; i < n; ++i) {
        ExecuteOne(ops[i]);
      }
      return;
  }
}

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, BatchIoBackend backend)
      : fname_(std::move(fname)), fd_(fd), backend_(backend) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Read", fname_.c_str());
    ::ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) {
      return PosixError(fname_, errno);
    }
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  void MultiRead(ReadRequest* reqs, size_t n) const override {
    LSMLAB_CHECK_IO_UNDER_LOCK("MultiRead", fname_.c_str());
    std::vector<BoundRead> ops(n);
    for (size_t i = 0; i < n; ++i) {
      ops[i] = {fd_, &fname_, &reqs[i]};
    }
    DispatchBatch(backend_, ops.data(), n);
  }

  int fd() const { return fd_; }
  const std::string& fname() const { return fname_; }

 private:
  const std::string fname_;
  const int fd_;
  const BatchIoBackend backend_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      // A destructor cannot report the error; callers that care about
      // durability must Close() (or Sync()) explicitly first.
      (void)Close();
    }
  }

  Status Append(const Slice& data) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Append", fname_.c_str());
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ::ssize_t w = ::write(fd_, p, left);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      p += w;
      left -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Close() override {
    Status s;
    if (fd_ >= 0 && ::close(fd_) < 0) {
      s = PosixError(fname_, errno);
    }
    fd_ = -1;
    return s;
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Sync", fname_.c_str());
    if (::fdatasync(fd_) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  int fd_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  PosixRandomRWFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomRWFile() override { ::close(fd_); }

  Status Write(uint64_t offset, const Slice& data) override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Write", fname_.c_str());
    const char* p = data.data();
    size_t left = data.size();
    uint64_t off = offset;
    while (left > 0) {
      ::ssize_t w = ::pwrite(fd_, p, left, static_cast<off_t>(off));
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      p += w;
      off += static_cast<uint64_t>(w);
      left -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ::ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) {
      return PosixError(fname_, errno);
    }
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  Status Sync() override {
    LSMLAB_CHECK_IO_UNDER_LOCK("Sync", fname_.c_str());
    if (::fdatasync(fd_) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixEnv final : public Env {
 public:
  explicit PosixEnv(BatchIoBackend backend) : backend_(backend) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd, backend_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(),
                    O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixRandomRWFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        result->push_back(std::move(name));
      }
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0) {
      if (errno == EEXIST) {
        return Status::OK();
      }
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct ::stat st;
    if (::stat(fname.c_str(), &st) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  Status LinkFile(const std::string& src, const std::string& target) override {
    if (::link(src.c_str(), target.c_str()) != 0) {
      if (errno == EXDEV || errno == ENOTSUP || errno == EPERM) {
        // Cross-filesystem (or link-hostile) destination: fall back to the
        // base copy so checkpoints can target any mount.
        return Env::LinkFile(src, target);
      }
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  void MultiRead(ReadRequest* reqs, size_t n) override {
    // Cross-file batches go down as one backend submission. Files not
    // opened through this env (no fd to extract) execute individually via
    // their own MultiRead.
    std::vector<BoundRead> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (reqs[i].file == nullptr) {
        reqs[i].status = Status::InvalidArgument("ReadRequest without a file");
        continue;
      }
      auto* pf = dynamic_cast<const PosixRandomAccessFile*>(reqs[i].file);
      if (pf == nullptr) {
        reqs[i].file->MultiRead(&reqs[i], 1);
        continue;
      }
      ops.push_back({pf->fd(), &pf->fname(), &reqs[i]});
    }
    DispatchBatch(backend_, ops.data(), ops.size());
  }

 private:
  const BatchIoBackend backend_;
};

}  // namespace

bool IoUringAvailable() { return UringQueue::KernelSupported(); }

Env* PosixEnvWithBackend(BatchIoBackend backend) {
  static PosixEnv* serial = new PosixEnv(BatchIoBackend::kSerial);
  static PosixEnv* thread_pool = new PosixEnv(BatchIoBackend::kThreadPool);
  static PosixEnv* uring =
      IoUringAvailable() ? new PosixEnv(BatchIoBackend::kIoUring) : nullptr;
  switch (backend) {
    case BatchIoBackend::kSerial:
      return serial;
    case BatchIoBackend::kThreadPool:
      return thread_pool;
    case BatchIoBackend::kIoUring:
      return uring;
  }
  return serial;
}

Env* Env::Default() {
  static Env* env = [] {
    const char* choice = std::getenv("LSMLAB_IO_BACKEND");
    if (choice != nullptr) {
      std::string v = choice;
      if (v == "serial") {
        return PosixEnvWithBackend(BatchIoBackend::kSerial);
      }
      if (v == "threadpool") {
        return PosixEnvWithBackend(BatchIoBackend::kThreadPool);
      }
      if (v == "uring") {
        Env* e = PosixEnvWithBackend(BatchIoBackend::kIoUring);
        if (e != nullptr) {
          return e;
        }
        // Requested but unavailable: fall through to the default order.
      }
    }
    Env* e = PosixEnvWithBackend(BatchIoBackend::kIoUring);
    return e != nullptr ? e
                        : PosixEnvWithBackend(BatchIoBackend::kThreadPool);
  }();
  return env;
}

}  // namespace lsmlab
