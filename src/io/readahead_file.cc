#include "io/readahead_file.h"

#include <algorithm>
#include <cstring>

namespace lsmlab {

namespace {

void Bump(std::atomic<uint64_t>* counter) {
  if (counter != nullptr) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

ReadaheadRandomAccessFile::ReadaheadRandomAccessFile(
    const RandomAccessFile* base, size_t initial_readahead,
    size_t max_readahead, std::atomic<uint64_t>* hits,
    std::atomic<uint64_t>* misses)
    : base_(base),
      initial_readahead_(std::max<size_t>(initial_readahead, 1)),
      max_readahead_(std::max(max_readahead, initial_readahead_)),
      hits_(hits),
      misses_(misses),
      window_(initial_readahead_) {}

Status ReadaheadRandomAccessFile::Read(uint64_t offset, size_t n,
                                       Slice* result, char* scratch) const {
  if (n >= max_readahead_) {
    // Larger than anything we would buffer: pass through untouched (no
    // hit/miss accounting — the buffer was never in play).
    return base_->Read(offset, n, result, scratch);
  }
  if (offset >= buffer_offset_ && offset + n <= buffer_offset_ + buffer_len_) {
    Bump(hits_);
    std::memcpy(scratch, buffer_.data() + (offset - buffer_offset_), n);
    *result = Slice(scratch, n);
    return Status::OK();
  }
  Bump(misses_);
  if (offset == buffer_offset_ + buffer_len_ && buffer_len_ > 0) {
    // The cursor continued exactly where the buffer ended: sequential
    // consumer, ramp up.
    window_ = std::min(window_ * 2, max_readahead_);
  } else if (buffer_len_ > 0) {
    window_ = initial_readahead_;  // Random jump: stop speculating.
  }
  size_t fetch = std::max(n, window_);
  if (buffer_.size() < fetch) {
    buffer_.resize(fetch);
  }
  Slice fetched;
  Status s = base_->Read(offset, fetch, &fetched, buffer_.data());
  if (!s.ok()) {
    buffer_len_ = 0;
    return s;
  }
  if (fetched.data() != buffer_.data() && !fetched.empty()) {
    std::memmove(buffer_.data(), fetched.data(), fetched.size());
  }
  buffer_offset_ = offset;
  buffer_len_ = fetched.size();
  size_t serve = std::min(n, buffer_len_);
  std::memcpy(scratch, buffer_.data(), serve);
  *result = Slice(scratch, serve);  // Short only at EOF, like a plain Read.
  return Status::OK();
}

void ReadaheadRandomAccessFile::MultiRead(ReadRequest* reqs, size_t n) const {
  base_->MultiRead(reqs, n);
}

}  // namespace lsmlab
