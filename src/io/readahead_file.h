#ifndef LSMLAB_IO_READAHEAD_FILE_H_
#define LSMLAB_IO_READAHEAD_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "io/env.h"

namespace lsmlab {

/// RandomAccessFile decorator that turns a sequential read pattern into
/// larger device reads: on a buffer miss it fetches max(n, window) bytes,
/// and the window doubles (up to `max_readahead`) each time the cursor
/// continues exactly where the buffer ends — the classic readahead ramp, so
/// a scan over a table costs O(file/window) device ops instead of one per
/// block. Sized-down sibling of RocksDB's FilePrefetchBuffer.
///
/// NOT thread-safe: one instance serves one iterator. Random (non-covered,
/// non-sequential) reads shrink the window back to `initial_readahead` so a
/// seek-heavy consumer degrades to near-passthrough instead of wasting
/// bandwidth on dead prefetch.
class ReadaheadRandomAccessFile final : public RandomAccessFile {
 public:
  /// Does not take ownership of `base`. `hits`/`misses` (nullable) receive
  /// buffer-hit accounting, e.g. the DB's readahead_hits/misses stats.
  ReadaheadRandomAccessFile(const RandomAccessFile* base,
                            size_t initial_readahead, size_t max_readahead,
                            std::atomic<uint64_t>* hits = nullptr,
                            std::atomic<uint64_t>* misses = nullptr);

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override;

  /// Batches bypass the buffer: a MultiRead caller already knows every
  /// offset it needs, so prefetch speculation would only duplicate bytes.
  void MultiRead(ReadRequest* reqs, size_t n) const override;

  const RandomAccessFile* target() const { return base_; }
  size_t window() const { return window_; }

 private:
  const RandomAccessFile* const base_;
  const size_t initial_readahead_;
  const size_t max_readahead_;
  std::atomic<uint64_t>* const hits_;
  std::atomic<uint64_t>* const misses_;

  // Buffer covers [buffer_offset_, buffer_offset_ + buffer_len_).
  mutable std::string buffer_;
  mutable uint64_t buffer_offset_ = 0;
  mutable size_t buffer_len_ = 0;
  mutable size_t window_;
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_READAHEAD_FILE_H_
