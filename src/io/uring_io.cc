#include "io/uring_io.h"

#if LSMLAB_IO_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

namespace lsmlab {

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

// The SQ/CQ head and tail live in kernel-shared memory; plain loads/stores
// would race with the kernel side. C++20 atomic_ref gives the acquire/release
// discipline the io_uring ABI requires without wrapping the mapping.
unsigned LoadAcquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}

void StoreRelease(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

bool UringQueue::KernelSupported() {
  static const bool supported = [] {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    int fd = SysIoUringSetup(1, &params);
    if (fd < 0) {
      return false;  // ENOSYS (old kernel) or EPERM (seccomp).
    }
    close(fd);
    return true;
  }();
  return supported;
}

std::unique_ptr<UringQueue> UringQueue::Create(unsigned entries) {
  if (!KernelSupported()) {
    return nullptr;
  }
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  int fd = SysIoUringSetup(entries, &params);
  if (fd < 0) {
    return nullptr;
  }

  std::unique_ptr<UringQueue> q(new UringQueue());
  q->ring_fd_ = fd;
  q->sq_entries_ = params.sq_entries;

  size_t sq_size =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_size =
      params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
  bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_size > sq_size) {
    sq_size = cq_size;
  }

  void* sq_ptr = mmap(nullptr, sq_size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (sq_ptr == MAP_FAILED) {
    return nullptr;  // ~UringQueue closes fd.
  }
  q->sq_ring_ = sq_ptr;
  q->sq_ring_size_ = sq_size;

  void* cq_ptr = sq_ptr;
  if (!single_mmap) {
    cq_ptr = mmap(nullptr, cq_size, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq_ptr == MAP_FAILED) {
      return nullptr;
    }
    q->cq_ring_ = cq_ptr;
    q->cq_ring_size_ = cq_size;
  }

  size_t sqes_size = params.sq_entries * sizeof(struct io_uring_sqe);
  void* sqes = mmap(nullptr, sqes_size, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return nullptr;
  }
  q->sqes_ = sqes;
  q->sqes_size_ = sqes_size;

  char* sq_base = static_cast<char*>(sq_ptr);
  q->sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  q->sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  q->sq_mask_ =
      *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  q->sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);

  char* cq_base = static_cast<char*>(cq_ptr);
  q->cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  q->cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  q->cq_mask_ =
      *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  q->cqes_ = cq_base + params.cq_off.cqes;
  return q;
}

UringQueue::~UringQueue() {
  if (sqes_ != nullptr) {
    munmap(sqes_, sqes_size_);
  }
  if (cq_ring_ != nullptr) {
    munmap(cq_ring_, cq_ring_size_);
  }
  if (sq_ring_ != nullptr) {
    munmap(sq_ring_, sq_ring_size_);
  }
  if (ring_fd_ >= 0) {
    close(ring_fd_);
  }
}

bool UringQueue::PreadBatch(UringPread* ops, size_t n) {
  auto* sqes = static_cast<struct io_uring_sqe*>(sqes_);
  auto* cqes = static_cast<struct io_uring_cqe*>(cqes_);
  // IORING_OP_READV needs an iovec per op that stays alive until completion;
  // one array reused across chunks.
  std::vector<struct iovec> iovs(sq_entries_);

  size_t done = 0;
  while (done < n) {
    size_t chunk = n - done;
    if (chunk > sq_entries_) {
      chunk = sq_entries_;
    }

    unsigned tail = LoadAcquire(sq_tail_);
    for (size_t i = 0; i < chunk; ++i) {
      UringPread& op = ops[done + i];
      unsigned slot = (tail + static_cast<unsigned>(i)) & sq_mask_;
      iovs[slot].iov_base = op.buf;
      iovs[slot].iov_len = op.len;
      struct io_uring_sqe* sqe = &sqes[slot];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READV;
      sqe->fd = op.fd;
      sqe->off = op.offset;
      sqe->addr = reinterpret_cast<uint64_t>(&iovs[slot]);
      sqe->len = 1;
      sqe->user_data = done + i;
      sq_array_[slot] = slot;
    }
    StoreRelease(sq_tail_, tail + static_cast<unsigned>(chunk));

    // One kernel round trip: submit the whole chunk and wait for all of its
    // completions before reaping.
    size_t reaped = 0;
    unsigned to_submit = static_cast<unsigned>(chunk);
    while (reaped < chunk) {
      int ret = SysIoUringEnter(ring_fd_, to_submit,
                                static_cast<unsigned>(chunk - reaped),
                                IORING_ENTER_GETEVENTS);
      if (ret < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      to_submit -= static_cast<unsigned>(ret);
      unsigned head = LoadAcquire(cq_head_);
      unsigned cq_tail = LoadAcquire(cq_tail_);
      while (head != cq_tail) {
        struct io_uring_cqe* cqe = &cqes[head & cq_mask_];
        if (cqe->user_data < n) {
          ops[cqe->user_data].result = cqe->res;
        }
        ++head;
        ++reaped;
      }
      StoreRelease(cq_head_, head);
    }
    done += chunk;
  }
  return true;
}

}  // namespace lsmlab

#else  // !LSMLAB_IO_URING

namespace lsmlab {

bool UringQueue::KernelSupported() { return false; }

std::unique_ptr<UringQueue> UringQueue::Create(unsigned /*entries*/) {
  return nullptr;
}

UringQueue::~UringQueue() = default;

bool UringQueue::PreadBatch(UringPread* /*ops*/, size_t /*n*/) {
  return false;
}

}  // namespace lsmlab

#endif  // LSMLAB_IO_URING
