#ifndef LSMLAB_IO_URING_IO_H_
#define LSMLAB_IO_URING_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace lsmlab {

/// One pread in an io_uring batch. `result` follows kernel convention:
/// >= 0 bytes read (short read = EOF), < 0 is -errno.
struct UringPread {
  int fd = -1;
  uint64_t offset = 0;
  size_t len = 0;
  char* buf = nullptr;
  int64_t result = 0;
};

/// A raw-syscall io_uring submission/completion queue pair (no liburing
/// dependency: the container toolchain ships only the kernel uapi header).
/// Single-threaded: callers keep one ring per thread. Compiled out to an
/// always-unavailable stub without LSMLAB_IO_URING.
class UringQueue {
 public:
  /// Probes io_uring_setup once per process; false under ENOSYS (old
  /// kernel), EPERM (container seccomp), or a compiled-out build — callers
  /// then use the portable thread-pool fanout instead.
  static bool KernelSupported();

  /// Creates a ring with `entries` submission slots (rounded up by the
  /// kernel). Returns nullptr when unsupported or setup fails.
  static std::unique_ptr<UringQueue> Create(unsigned entries);

  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Submits all `n` preads — in sq-capacity chunks, one io_uring_enter
  /// each — and blocks until every completion is reaped. Returns false on a
  /// ring-level failure (submission rejected); per-op outcomes are in
  /// UringPread::result.
  bool PreadBatch(UringPread* ops, size_t n);

  unsigned sq_capacity() const { return sq_entries_; }

 private:
  UringQueue() = default;

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;

  // Mapped submission ring.
  void* sq_ring_ = nullptr;
  size_t sq_ring_size_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  void* sqes_ = nullptr;
  size_t sqes_size_ = 0;

  // Mapped completion ring (may alias sq_ring_ under
  // IORING_FEAT_SINGLE_MMAP).
  void* cq_ring_ = nullptr;
  size_t cq_ring_size_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;
};

}  // namespace lsmlab

#endif  // LSMLAB_IO_URING_IO_H_
