#ifndef LSMLAB_IO_WAL_FORMAT_H_
#define LSMLAB_IO_WAL_FORMAT_H_

namespace lsmlab::wal {

/// WAL records are packed into fixed-size blocks; a logical record that does
/// not fit is fragmented across blocks. Each physical record is
///   checksum(4) | length(2) | type(1) | payload
/// where type says whether this fragment is the full record or its
/// first/middle/last fragment.
enum RecordType {
  kZeroType = 0,  // Preallocated/zeroed space.
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
constexpr int kMaxRecordType = kLastType;

constexpr int kBlockSize = 32768;

/// Header: checksum (4 bytes), length (2 bytes), type (1 byte).
constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace lsmlab::wal

#endif  // LSMLAB_IO_WAL_FORMAT_H_
