#ifndef LSMLAB_IO_WAL_READER_H_
#define LSMLAB_IO_WAL_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "io/env.h"
#include "io/wal_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab::wal {

/// Replays records written by wal::Writer, reassembling fragments and
/// verifying CRCs. Corrupt tails (from a crash mid-write) are reported via
/// the Reporter and skipped, matching recovery semantics.
class Reader {
 public:
  /// Interface for reporting dropped bytes during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// Does not take ownership of `file` or `reporter` (either may be null
  /// only for `reporter`).
  Reader(SequentialFile* file, Reporter* reporter);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next complete logical record into *record. Returns false at
  /// EOF. *scratch is backing storage for fragmented records.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extended record types for internal signalling.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_;
};

}  // namespace lsmlab::wal

#endif  // LSMLAB_IO_WAL_READER_H_
