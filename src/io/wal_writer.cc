#include "io/wal_writer.h"

#include <cassert>

#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab::wal {

Writer::Writer(WritableFile* dest) : dest_(dest), block_offset_(0) {
  for (int i = 0; i <= kMaxRecordType; ++i) {
    char t = static_cast<char>(i);
    type_crc_[i] = crc32c::Value(&t, 1);
  }
}

Status Writer::AddRecord(const Slice& slice) {
  const char* ptr = slice.data();
  size_t left = slice.size();

  // Fragment the record if necessary. Empty records still emit one
  // zero-length kFullType fragment.
  Status s;
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    assert(leftover >= 0);
    if (leftover < kHeaderSize) {
      // Not even a header fits; pad the block with zeros.
      if (leftover > 0) {
        s = dest_->Append(Slice("\x00\x00\x00\x00\x00\x00", leftover));
        if (!s.ok()) {
          return s;
        }
      }
      block_offset_ = 0;
    }

    const size_t avail =
        static_cast<size_t>(kBlockSize - block_offset_ - kHeaderSize);
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* ptr,
                                  size_t length) {
  assert(length <= 0xffff);
  assert(block_offset_ + kHeaderSize + static_cast<int>(length) <= kBlockSize);

  char buf[kHeaderSize];
  buf[4] = static_cast<char>(length & 0xff);
  buf[5] = static_cast<char>(length >> 8);
  buf[6] = static_cast<char>(type);

  uint32_t crc = crc32c::Extend(type_crc_[type], ptr, length);
  crc = crc32c::Mask(crc);
  EncodeFixed32(buf, crc);

  Status s = dest_->Append(Slice(buf, kHeaderSize));
  if (s.ok()) {
    s = dest_->Append(Slice(ptr, length));
    if (s.ok()) {
      s = dest_->Flush();
    }
  }
  block_offset_ += kHeaderSize + static_cast<int>(length);
  return s;
}

}  // namespace lsmlab::wal
