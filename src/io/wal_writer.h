#ifndef LSMLAB_IO_WAL_WRITER_H_
#define LSMLAB_IO_WAL_WRITER_H_

#include <cstdint>
#include <memory>

#include "io/env.h"
#include "io/wal_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab::wal {

/// Appends length-prefixed, CRC-protected records to a log file. Used for
/// both the write-ahead log and the manifest. Not thread-safe; the write
/// path serializes access.
class Writer {
 public:
  /// Does not take ownership of `dest`, which must remain live.
  explicit Writer(WritableFile* dest);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

  /// Forces buffered data to stable storage.
  Status Sync() { return dest_->Sync(); }

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset within the current block.
  // Pre-computed CRCs of the record-type bytes, extended with payload.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace lsmlab::wal

#endif  // LSMLAB_IO_WAL_WRITER_H_
