#include "kvsep/vlog.h"

#include "db/filename.h"
#include "util/coding.h"

namespace lsmlab {

void VlogPointer::EncodeTo(std::string* dst) const {
  PutVarint64(dst, file_number);
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

bool VlogPointer::DecodeFrom(Slice input) {
  return GetVarint64(&input, &file_number) && GetVarint64(&input, &offset) &&
         GetVarint64(&input, &size);
}

VlogManager::VlogManager(std::string dbname, Env* env)
    : dbname_(std::move(dbname)), env_(env) {}

Status VlogManager::OpenActive(uint64_t file_number) {
  MutexLock lock(&mu_);
  Status s =
      env_->NewWritableFile(VlogFileName(dbname_, file_number), &active_file_);
  if (s.ok()) {
    active_file_number_ = file_number;
    active_offset_ = 0;
  }
  return s;
}

Status VlogManager::Append(const Slice& key, const Slice& value,
                           VlogPointer* ptr) {
  MutexLock lock(&mu_);
  if (active_file_ == nullptr) {
    return Status::IOError("no active vlog");
  }
  std::string record;
  PutVarint32(&record, static_cast<uint32_t>(key.size()));
  PutVarint32(&record, static_cast<uint32_t>(value.size()));
  record.append(key.data(), key.size());
  record.append(value.data(), value.size());

  ptr->file_number = active_file_number_;
  // Offset points at the record header; size is the payload length.
  ptr->offset = active_offset_;
  ptr->size = value.size();

  Status s = active_file_->Append(record);
  if (s.ok()) {
    active_offset_ += record.size();
    total_bytes_ += record.size();
  }
  return s;
}

Status VlogManager::Read(const VlogPointer& ptr, const Slice& expected_key,
                         std::string* value) {
  // Open a fresh reader per read; Envs cache cheaply and this keeps the
  // manager lock-free on the read path.
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(VlogFileName(dbname_, ptr.file_number),
                                       &file);
  if (!s.ok()) {
    return s;
  }
  // Header is at most 10 bytes; read header + key + value in one shot.
  size_t max_len =
      10 + expected_key.size() + static_cast<size_t>(ptr.size) + 10;
  std::string scratch(max_len, '\0');
  Slice record;
  s = file->Read(ptr.offset, max_len, &record, scratch.data());
  if (!s.ok()) {
    return s;
  }
  uint32_t key_len, value_len;
  Slice input = record;
  if (!GetVarint32(&input, &key_len) || !GetVarint32(&input, &value_len) ||
      input.size() < key_len + value_len) {
    return Status::Corruption("bad vlog record");
  }
  Slice stored_key(input.data(), key_len);
  if (stored_key != expected_key) {
    return Status::Corruption("vlog key mismatch");
  }
  value->assign(input.data() + key_len, value_len);
  return Status::OK();
}

void VlogManager::AddGarbage(uint64_t file_number, uint64_t bytes) {
  MutexLock lock(&mu_);
  garbage_bytes_[file_number] += bytes;
}

double VlogManager::GarbageRatio() const {
  MutexLock lock(&mu_);
  if (total_bytes_ == 0) {
    return 0.0;
  }
  uint64_t garbage = 0;
  for (const auto& [file, bytes] : garbage_bytes_) {
    garbage += bytes;
  }
  return static_cast<double>(garbage) / static_cast<double>(total_bytes_);
}

uint64_t VlogManager::TotalBytes() const {
  MutexLock lock(&mu_);
  return total_bytes_;
}

uint64_t VlogManager::GarbageBytes() const {
  MutexLock lock(&mu_);
  uint64_t garbage = 0;
  for (const auto& [file, bytes] : garbage_bytes_) {
    garbage += bytes;
  }
  return garbage;
}

Status VlogManager::ForEachRecord(
    uint64_t file_number,
    const std::function<bool(const Slice& key, const Slice& value,
                             const VlogPointer& ptr)>& callback) {
  std::string contents;
  Status s = ReadFileToString(
      env_, VlogFileName(dbname_, file_number), &contents);
  if (!s.ok()) {
    return s;
  }
  Slice input(contents);
  uint64_t offset = 0;
  while (!input.empty()) {
    Slice at_record = input;
    uint32_t key_len, value_len;
    if (!GetVarint32(&input, &key_len) || !GetVarint32(&input, &value_len) ||
        input.size() < key_len + value_len) {
      return Status::Corruption("truncated vlog record");
    }
    Slice key(input.data(), key_len);
    Slice value(input.data() + key_len, value_len);
    input.remove_prefix(key_len + value_len);

    VlogPointer ptr;
    ptr.file_number = file_number;
    ptr.offset = offset;
    ptr.size = value_len;
    offset += static_cast<uint64_t>(at_record.size() - input.size());
    if (!callback(key, value, ptr)) {
      break;
    }
  }
  return Status::OK();
}

Status VlogManager::DeleteLog(uint64_t file_number) {
  {
    MutexLock lock(&mu_);
    garbage_bytes_.erase(file_number);
  }
  return env_->RemoveFile(VlogFileName(dbname_, file_number));
}

Status VlogManager::Sync() {
  MutexLock lock(&mu_);
  if (active_file_ == nullptr) {
    return Status::OK();
  }
  return active_file_->Sync();
}

}  // namespace lsmlab
