#ifndef LSMLAB_KVSEP_VLOG_H_
#define LSMLAB_KVSEP_VLOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "io/env.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// A pointer into the value log: the "value" stored in the LSM-tree for
/// separated entries (WiscKey, tutorial §2.2.2).
struct VlogPointer {
  uint64_t file_number = 0;
  uint64_t offset = 0;
  uint64_t size = 0;  // Payload size (the value bytes).

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice input);
};

/// VlogManager owns the value-log files of a DB: appends values, serves
/// random reads, and reports garbage ratios for GC decisions. Thread-safe.
///
/// Record format: varint32(key_len) varint32(value_len) key value. Keys are
/// stored alongside values so GC can check liveness without a reverse index.
class VlogManager {
 public:
  VlogManager(std::string dbname, Env* env);

  VlogManager(const VlogManager&) = delete;
  VlogManager& operator=(const VlogManager&) = delete;

  /// Opens (or rolls to) the active log numbered `file_number`.
  Status OpenActive(uint64_t file_number) EXCLUDES(mu_);

  /// Appends (key, value); returns the pointer to store in the LSM.
  Status Append(const Slice& key, const Slice& value, VlogPointer* ptr)
      EXCLUDES(mu_);

  /// Reads the value behind `ptr` and verifies the stored key matches.
  Status Read(const VlogPointer& ptr, const Slice& expected_key,
              std::string* value);

  /// Accounts `bytes` of a now-dead value (its LSM pointer was dropped).
  void AddGarbage(uint64_t file_number, uint64_t bytes) EXCLUDES(mu_);

  /// Fraction of appended bytes known dead, across all logs.
  double GarbageRatio() const EXCLUDES(mu_);

  uint64_t TotalBytes() const EXCLUDES(mu_);
  uint64_t GarbageBytes() const EXCLUDES(mu_);
  uint64_t active_file_number() const EXCLUDES(mu_) {
    // Must lock: OpenActive (GC roll-over) writes this field concurrently
    // with readers. Previously returned the field bare — a torn/stale read
    // the annotation sweep surfaced.
    MutexLock lock(&mu_);
    return active_file_number_;
  }

  /// Iterates every record of log `file_number` (GC support). The callback
  /// receives (key, value, pointer); returning false stops the walk.
  Status ForEachRecord(
      uint64_t file_number,
      const std::function<bool(const Slice& key, const Slice& value,
                               const VlogPointer& ptr)>& callback);

  /// Removes a fully rewritten log file.
  Status DeleteLog(uint64_t file_number) EXCLUDES(mu_);

  Status Sync() EXCLUDES(mu_);

 private:
  const std::string dbname_;
  Env* const env_;

  mutable Mutex mu_{LockRank::kVlog, "vlog.mu"};
  std::unique_ptr<WritableFile> active_file_ GUARDED_BY(mu_);
  uint64_t active_file_number_ GUARDED_BY(mu_) = 0;
  uint64_t active_offset_ GUARDED_BY(mu_) = 0;
  uint64_t total_bytes_ GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, uint64_t> garbage_bytes_ GUARDED_BY(mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_KVSEP_VLOG_H_
