#include <algorithm>
#include <vector>

#include "memtable/memtable_rep.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// Hash-linklist rep (tutorial §2.2.1): buckets of sorted singly linked
/// lists. The most memory-frugal rep for small buckets; insertion cost grows
/// linearly with bucket occupancy, and ordered scans require a full
/// collect-and-sort like the other hashed rep.
class HashLinkListRep final : public MemTableRep {
 public:
  HashLinkListRep(const MemTableKeyComparator& cmp, Arena* arena,
                  size_t bucket_count)
      : cmp_(cmp),
        arena_(arena),
        buckets_(bucket_count == 0 ? 1 : bucket_count, nullptr) {}

  void Insert(const char* entry) override {
    size_t index = BucketIndex(GetLengthPrefixedEntryKey(entry));
    Node* node = new (arena_->AllocateAligned(sizeof(Node))) Node{entry, nullptr};
    Node** link = &buckets_[index];
    // Keep the bucket sorted by internal key: splice before the first node
    // that compares greater.
    while (*link != nullptr && cmp_((*link)->entry, entry) < 0) {
      link = &(*link)->next;
    }
    node->next = *link;
    *link = node;
    ++count_;
  }

  const char* PointSeek(const Slice& internal_key) override {
    Node* node = buckets_[BucketIndex(internal_key)];
    while (node != nullptr &&
           cmp_.CompareEntryToKey(node->entry, internal_key) < 0) {
      node = node->next;
    }
    return node == nullptr ? nullptr : node->entry;
  }

  size_t Count() const override { return count_; }

  std::unique_ptr<Iterator> NewIterator() override {
    std::vector<const char*> entries;
    entries.reserve(count_);
    for (Node* node : buckets_) {
      for (; node != nullptr; node = node->next) {
        entries.push_back(node->entry);
      }
    }
    std::sort(entries.begin(), entries.end(),
              [this](const char* a, const char* b) { return cmp_(a, b) < 0; });
    return std::make_unique<IteratorImpl>(std::move(entries), cmp_);
  }

 private:
  struct Node {
    const char* entry;
    Node* next;
  };

  size_t BucketIndex(const Slice& internal_key) const {
    Slice user_key = ExtractUserKey(internal_key);
    return HashSlice64(user_key) % buckets_.size();
  }

  class IteratorImpl final : public Iterator {
   public:
    IteratorImpl(std::vector<const char*> entries,
                 const MemTableKeyComparator& cmp)
        : entries_(std::move(entries)), cmp_(cmp), index_(0) {}

    bool Valid() const override { return index_ < entries_.size(); }
    const char* entry() const override { return entries_[index_]; }
    void Next() override { ++index_; }
    void SeekToFirst() override { index_ = 0; }
    void Seek(const Slice& internal_key) override {
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), internal_key,
          [this](const char* entry, const Slice& key) {
            return cmp_.CompareEntryToKey(entry, key) < 0;
          });
      index_ = static_cast<size_t>(it - entries_.begin());
    }

   private:
    const std::vector<const char*> entries_;
    MemTableKeyComparator cmp_;
    size_t index_;
  };

  MemTableKeyComparator cmp_;
  Arena* const arena_;
  std::vector<Node*> buckets_;
  size_t count_ = 0;
};

}  // namespace

std::unique_ptr<MemTableRep> NewHashLinkListRep(
    const MemTableKeyComparator& cmp, Arena* arena, size_t bucket_count) {
  return std::make_unique<HashLinkListRep>(cmp, arena, bucket_count);
}

}  // namespace lsmlab
