#include <algorithm>
#include <vector>

#include "memtable/memtable_rep.h"
#include "memtable/skiplist.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// Hash-skiplist rep (tutorial §2.2.1): a fixed bucket array where each
/// bucket is its own small skip list. Point access touches one short list;
/// whole-rep iteration (flush) must merge all buckets, so it materializes a
/// sorted snapshot.
class HashSkipListRep final : public MemTableRep {
 public:
  HashSkipListRep(const MemTableKeyComparator& cmp, Arena* arena,
                  size_t bucket_count)
      : cmp_(cmp),
        arena_(arena),
        buckets_(bucket_count == 0 ? 1 : bucket_count) {}

  void Insert(const char* entry) override {
    Bucket(GetLengthPrefixedEntryKey(entry)).Insert(entry);
    ++count_;
  }

  const char* PointSeek(const Slice& internal_key) override {
    ListType::Iterator iter(&Bucket(internal_key));
    std::string probe;
    PutVarint32(&probe, static_cast<uint32_t>(internal_key.size()));
    probe.append(internal_key.data(), internal_key.size());
    iter.Seek(probe.data());
    return iter.Valid() ? iter.key() : nullptr;
  }

  size_t Count() const override { return count_; }

  std::unique_ptr<Iterator> NewIterator() override {
    // Collect all entries from every bucket and sort: hashed reps do not
    // support cheap ordered scans, which is their documented weakness.
    std::vector<const char*> entries;
    entries.reserve(count_);
    for (auto& slot : buckets_) {
      if (!slot.holder) {
        continue;
      }
      ListType::Iterator iter(&slot.holder->list);
      for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
        entries.push_back(iter.key());
      }
    }
    std::sort(entries.begin(), entries.end(),
              [this](const char* a, const char* b) { return cmp_(a, b) < 0; });
    return std::make_unique<IteratorImpl>(std::move(entries), cmp_);
  }

 private:
  struct EntryComparator {
    explicit EntryComparator(const MemTableKeyComparator& c) : cmp(c) {}
    int operator()(const char* a, const char* b) const { return cmp(a, b); }
    MemTableKeyComparator cmp;
  };
  using ListType = SkipList<const char*, EntryComparator>;

  struct BucketHolder {
    ListType list;
    explicit BucketHolder(const EntryComparator& cmp, Arena* arena)
        : list(cmp, arena) {}
  };

  ListType& Bucket(const Slice& internal_key) {
    Slice user_key = ExtractUserKey(internal_key);
    size_t index = HashSlice64(user_key) % buckets_.size();
    auto& slot = buckets_[index];
    if (!slot.holder) {
      slot.holder =
          std::make_unique<BucketHolder>(EntryComparator(cmp_), arena_);
    }
    return slot.holder->list;
  }

  class IteratorImpl final : public Iterator {
   public:
    IteratorImpl(std::vector<const char*> entries,
                 const MemTableKeyComparator& cmp)
        : entries_(std::move(entries)), cmp_(cmp), index_(0) {}

    bool Valid() const override { return index_ < entries_.size(); }
    const char* entry() const override { return entries_[index_]; }
    void Next() override { ++index_; }
    void SeekToFirst() override { index_ = 0; }
    void Seek(const Slice& internal_key) override {
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), internal_key,
          [this](const char* entry, const Slice& key) {
            return cmp_.CompareEntryToKey(entry, key) < 0;
          });
      index_ = static_cast<size_t>(it - entries_.begin());
    }

   private:
    const std::vector<const char*> entries_;
    MemTableKeyComparator cmp_;
    size_t index_;
  };

  struct Slot {
    std::unique_ptr<BucketHolder> holder;
  };

  MemTableKeyComparator cmp_;
  Arena* const arena_;
  std::vector<Slot> buckets_;
  size_t count_ = 0;
};

}  // namespace

std::unique_ptr<MemTableRep> NewHashSkipListRep(
    const MemTableKeyComparator& cmp, Arena* arena, size_t bucket_count) {
  return std::make_unique<HashSkipListRep>(cmp, arena, bucket_count);
}

}  // namespace lsmlab
