#include "memtable/memtable.h"

#include <cstring>

#include "util/coding.h"

namespace lsmlab {

MemTable::MemTable(const InternalKeyComparator* comparator,
                   MemTableRepType rep_type, size_t hash_bucket_count)
    : comparator_(comparator->user_comparator()),
      entry_comparator_(&comparator_),
      rep_(NewMemTableRep(rep_type, entry_comparator_, &arena_,
                          hash_bucket_count)) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  // Entry format:
  //   varint32(internal_key_size) | user_key | fixed64(seq<<8|type)
  //   | varint32(value_size) | value
  size_t user_key_size = user_key.size();
  size_t internal_key_size = user_key_size + 8;
  size_t value_size = value.size();
  size_t encoded_len = VarintLength(internal_key_size) + internal_key_size +
                       VarintLength(value_size) + value_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = buf;

  // varint32 internal key size.
  uint32_t iks = static_cast<uint32_t>(internal_key_size);
  while (iks >= 128) {
    *p++ = static_cast<char>(iks | 128);
    iks >>= 7;
  }
  *p++ = static_cast<char>(iks);

  std::memcpy(p, user_key.data(), user_key_size);
  p += user_key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;

  uint32_t vs = static_cast<uint32_t>(value_size);
  while (vs >= 128) {
    *p++ = static_cast<char>(vs | 128);
    vs >>= 7;
  }
  *p++ = static_cast<char>(vs);
  std::memcpy(p, value.data(), value_size);

  rep_->Insert(buf);
  data_size_ += user_key_size + value_size;
}

bool MemTable::Get(const LookupKey& key, std::string* value,
                   ValueType* type_out) {
  const char* entry = rep_->PointSeek(key.internal_key());
  if (entry == nullptr) {
    return false;
  }
  Slice internal_key = GetLengthPrefixedEntryKey(entry);
  // The seek may land on a later user key (or a hash-bucket neighbour).
  if (comparator_.user_comparator()->Compare(ExtractUserKey(internal_key),
                                             key.user_key()) != 0) {
    return false;
  }
  ValueType type = ExtractValueType(internal_key);
  *type_out = type;
  if (type == kTypeValue || type == kTypeVlogPointer || type == kTypeMerge) {
    // The length-prefixed value immediately follows the internal key.
    const char* value_start = internal_key.data() + internal_key.size();
    uint32_t len;
    const char* p = GetVarint32Ptr(value_start, value_start + 5, &len);
    value->assign(p, len);
  }
  return true;
}

Slice MemTable::Iterator::key() const {
  return GetLengthPrefixedEntryKey(iter_->entry());
}

Slice MemTable::Iterator::value() const {
  Slice internal_key = GetLengthPrefixedEntryKey(iter_->entry());
  const char* value_start = internal_key.data() + internal_key.size();
  uint32_t len;
  const char* p = GetVarint32Ptr(value_start, value_start + 5, &len);
  return Slice(p, len);
}

std::unique_ptr<MemTable::Iterator> MemTable::NewIterator() {
  return std::make_unique<Iterator>(rep_->NewIterator());
}

size_t MemTable::ApproximateMemoryUsage() const {
  return arena_.MemoryUsage();
}

}  // namespace lsmlab
