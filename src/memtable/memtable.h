#ifndef LSMLAB_MEMTABLE_MEMTABLE_H_
#define LSMLAB_MEMTABLE_MEMTABLE_H_

#include <memory>
#include <string>

#include "db/dbformat.h"
#include "memtable/memtable_rep.h"
#include "util/arena.h"
#include "util/options.h"

namespace lsmlab {

/// MemTable is the in-memory LSM component (tutorial §2.1): an ordered
/// buffer of recent writes. Writes are serialized externally; the skip-list
/// rep additionally allows reads concurrent with a writer. MemTables are
/// shared between the active write path, flush jobs, and live iterators via
/// shared_ptr.
class MemTable {
 public:
  MemTable(const InternalKeyComparator* comparator, MemTableRepType rep_type,
           size_t hash_bucket_count);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Buffers an entry. `type` distinguishes puts, deletes, single-deletes,
  /// and vlog pointers.
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Point lookup at `key`'s snapshot. Returns true if this memtable
  /// resolves the key (value found or tombstone hit); the entry type is
  /// returned through `type_out` and the value (if any) through `value`.
  bool Get(const LookupKey& key, std::string* value, ValueType* type_out);

  /// Iterator over entries in internal-key order. The iterator (and the
  /// values it yields) remain valid for the memtable's lifetime.
  class Iterator {
   public:
    explicit Iterator(std::unique_ptr<MemTableRep::Iterator> iter)
        : iter_(std::move(iter)) {}

    bool Valid() const { return iter_->Valid(); }
    void SeekToFirst() { iter_->SeekToFirst(); }
    void Seek(const Slice& internal_key) { iter_->Seek(internal_key); }
    void Next() { iter_->Next(); }
    /// The full internal key of the current entry.
    Slice key() const;
    Slice value() const;

   private:
    std::unique_ptr<MemTableRep::Iterator> iter_;
  };

  std::unique_ptr<Iterator> NewIterator();

  size_t ApproximateMemoryUsage() const;
  size_t Count() const { return rep_->Count(); }
  bool Empty() const { return rep_->Count() == 0; }

  /// Bytes of raw user data (keys+values) added; drives flush triggering.
  size_t DataSize() const { return data_size_; }

  const InternalKeyComparator* comparator() const { return &comparator_; }

 private:
  InternalKeyComparator comparator_;
  MemTableKeyComparator entry_comparator_;
  Arena arena_;
  std::unique_ptr<MemTableRep> rep_;
  size_t data_size_ = 0;
};

}  // namespace lsmlab

#endif  // LSMLAB_MEMTABLE_MEMTABLE_H_
