#include "memtable/memtable_rep.h"

#include "util/coding.h"

namespace lsmlab {

Slice GetLengthPrefixedEntryKey(const char* entry) {
  uint32_t len;
  // +5: a varint32 is at most 5 bytes.
  const char* p = GetVarint32Ptr(entry, entry + 5, &len);
  return Slice(p, len);
}

int MemTableKeyComparator::operator()(const char* a, const char* b) const {
  return comparator_->Compare(GetLengthPrefixedEntryKey(a),
                              GetLengthPrefixedEntryKey(b));
}

int MemTableKeyComparator::CompareEntryToKey(const char* entry,
                                             const Slice& internal_key) const {
  return comparator_->Compare(GetLengthPrefixedEntryKey(entry), internal_key);
}

std::unique_ptr<MemTableRep> NewMemTableRep(MemTableRepType type,
                                            const MemTableKeyComparator& cmp,
                                            Arena* arena,
                                            size_t bucket_count) {
  switch (type) {
    case MemTableRepType::kSkipList:
      return NewSkipListRep(cmp, arena);
    case MemTableRepType::kVector:
      return NewVectorRep(cmp);
    case MemTableRepType::kHashSkipList:
      return NewHashSkipListRep(cmp, arena, bucket_count);
    case MemTableRepType::kHashLinkList:
      return NewHashLinkListRep(cmp, arena, bucket_count);
  }
  return NewSkipListRep(cmp, arena);
}

}  // namespace lsmlab
