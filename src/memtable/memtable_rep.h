#ifndef LSMLAB_MEMTABLE_MEMTABLE_REP_H_
#define LSMLAB_MEMTABLE_MEMTABLE_REP_H_

#include <memory>

#include "db/dbformat.h"
#include "util/arena.h"
#include "util/options.h"
#include "util/slice.h"

namespace lsmlab {

/// Decodes the length-prefixed internal key at the head of a memtable entry.
Slice GetLengthPrefixedEntryKey(const char* entry);

/// Orders encoded memtable entries by their internal keys.
class MemTableKeyComparator {
 public:
  explicit MemTableKeyComparator(const InternalKeyComparator* cmp)
      : comparator_(cmp) {}

  int operator()(const char* a, const char* b) const;
  /// Compares an entry against an encoded internal key (no length prefix).
  int CompareEntryToKey(const char* entry, const Slice& internal_key) const;

  const InternalKeyComparator* internal_comparator() const {
    return comparator_;
  }

 private:
  const InternalKeyComparator* comparator_;
};

/// MemTableRep is the in-memory index over buffered writes — the buffer
/// implementation knob of tutorial §2.2.1. Entries are immutable,
/// arena-allocated buffers; the rep stores and orders pointers to them.
///
/// Thread-safety contract: Insert/PointSeek/NewIterator calls are externally
/// serialized by the DB mutex. The skip-list rep additionally supports
/// readers concurrent with one writer; other reps do not, so DB iterators
/// snapshot their contents at creation.
class MemTableRep {
 public:
  /// Forward iterator over entries in internal-key order.
  class Iterator {
   public:
    virtual ~Iterator() = default;
    virtual bool Valid() const = 0;
    /// The encoded entry. Requires Valid().
    virtual const char* entry() const = 0;
    virtual void Next() = 0;
    virtual void SeekToFirst() = 0;
    /// Positions at the first entry whose internal key >= `internal_key`.
    virtual void Seek(const Slice& internal_key) = 0;
  };

  virtual ~MemTableRep() = default;

  /// Inserts an entry allocated from the memtable's arena. The entry must
  /// compare unequal to every entry already present.
  virtual void Insert(const char* entry) = 0;

  /// Returns the first entry with internal key >= `internal_key`, or nullptr.
  /// The result may belong to a different user key; callers check.
  /// Reps optimized for point access (hashed) only guarantee correct results
  /// when the target user key hashes to the probed bucket, which is the case
  /// for lookups of a single user key.
  virtual const char* PointSeek(const Slice& internal_key) = 0;

  /// Number of entries inserted so far.
  virtual size_t Count() const = 0;

  /// True if iteration is safe while a (serialized) writer keeps inserting.
  virtual bool SupportsConcurrentIteration() const { return false; }

  virtual std::unique_ptr<Iterator> NewIterator() = 0;
};

/// Factories; each takes the entry comparator and the arena that owns the
/// entries. `bucket_count` applies to hashed reps only.
std::unique_ptr<MemTableRep> NewSkipListRep(const MemTableKeyComparator& cmp,
                                            Arena* arena);
std::unique_ptr<MemTableRep> NewVectorRep(const MemTableKeyComparator& cmp);
std::unique_ptr<MemTableRep> NewHashSkipListRep(
    const MemTableKeyComparator& cmp, Arena* arena, size_t bucket_count);
std::unique_ptr<MemTableRep> NewHashLinkListRep(
    const MemTableKeyComparator& cmp, Arena* arena, size_t bucket_count);

/// Dispatches on the Options knob.
std::unique_ptr<MemTableRep> NewMemTableRep(MemTableRepType type,
                                            const MemTableKeyComparator& cmp,
                                            Arena* arena,
                                            size_t bucket_count);

}  // namespace lsmlab

#endif  // LSMLAB_MEMTABLE_MEMTABLE_REP_H_
