#include "memtable/memtable_rep.h"
#include "memtable/skiplist.h"
#include "util/coding.h"

namespace lsmlab {

namespace {

/// The default rep: balanced write/read performance and safe concurrent
/// iteration, matching RocksDB's default memtable.
class SkipListRep final : public MemTableRep {
 public:
  SkipListRep(const MemTableKeyComparator& cmp, Arena* arena)
      : cmp_(cmp), list_(EntryComparator(cmp), arena) {}

  void Insert(const char* entry) override {
    list_.Insert(entry);
    ++count_;
  }

  const char* PointSeek(const Slice& internal_key) override {
    return SeekInternal(internal_key);
  }

  size_t Count() const override { return count_; }

  bool SupportsConcurrentIteration() const override { return true; }

  std::unique_ptr<Iterator> NewIterator() override {
    return std::make_unique<IteratorImpl>(this);
  }

 private:
  struct EntryComparator {
    explicit EntryComparator(const MemTableKeyComparator& c) : cmp(c) {}
    int operator()(const char* a, const char* b) const { return cmp(a, b); }
    MemTableKeyComparator cmp;
  };
  using ListType = SkipList<const char*, EntryComparator>;

  // Finds first entry >= internal_key by descending the skip list with an
  // entry-to-key comparator.
  const char* SeekInternal(const Slice& internal_key) const;

  class IteratorImpl final : public Iterator {
   public:
    explicit IteratorImpl(SkipListRep* rep)
        : rep_(rep), iter_(&rep->list_) {}

    bool Valid() const override { return iter_.Valid(); }
    const char* entry() const override { return iter_.key(); }
    void Next() override { iter_.Next(); }
    void SeekToFirst() override { iter_.SeekToFirst(); }
    void Seek(const Slice& internal_key) override {
      // Linear-free seek: use the rep's key-aware descent, then position the
      // skip list iterator at the found node via Seek on the entry.
      const char* entry = rep_->SeekInternal(internal_key);
      if (entry == nullptr) {
        // Position past the end.
        iter_.SeekToLast();
        if (iter_.Valid()) {
          iter_.Next();
        }
      } else {
        iter_.Seek(entry);
      }
    }

   private:
    SkipListRep* const rep_;
    ListType::Iterator iter_;
  };

  MemTableKeyComparator cmp_;
  ListType list_;
  size_t count_ = 0;
};

const char* SkipListRep::SeekInternal(const Slice& internal_key) const {
  // The skip list orders whole entries; walk from the front using the
  // entry-to-key comparator. A full key-aware descent would avoid the scan;
  // we reuse the list's own Seek by crafting a probe entry instead.
  //
  // Probe entry format: varint32(len) + internal_key.
  std::string probe;
  PutVarint32(&probe, static_cast<uint32_t>(internal_key.size()));
  probe.append(internal_key.data(), internal_key.size());
  ListType::Iterator iter(&list_);
  iter.Seek(probe.data());
  return iter.Valid() ? iter.key() : nullptr;
}

}  // namespace

std::unique_ptr<MemTableRep> NewSkipListRep(const MemTableKeyComparator& cmp,
                                            Arena* arena) {
  return std::make_unique<SkipListRep>(cmp, arena);
}

}  // namespace lsmlab
