#include <algorithm>
#include <vector>

#include "memtable/memtable_rep.h"

namespace lsmlab {

namespace {

/// Append-only vector rep: the fastest buffer for write-only workloads
/// (tutorial §2.2.1) because an insert is a single push_back. Any read
/// (point seek or iteration) must first sort the accumulated tail, so
/// performance collapses under interleaved reads — exactly the tradeoff the
/// tutorial calls out.
class VectorRep final : public MemTableRep {
 public:
  explicit VectorRep(const MemTableKeyComparator& cmp) : cmp_(cmp) {}

  void Insert(const char* entry) override {
    entries_.push_back(entry);
    sorted_ = false;
  }

  const char* PointSeek(const Slice& internal_key) override {
    EnsureSorted();
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), internal_key,
        [this](const char* entry, const Slice& key) {
          return cmp_.CompareEntryToKey(entry, key) < 0;
        });
    return it == entries_.end() ? nullptr : *it;
  }

  size_t Count() const override { return entries_.size(); }

  std::unique_ptr<Iterator> NewIterator() override {
    EnsureSorted();
    // Iterators copy the pointer array so later inserts (and re-sorts)
    // cannot invalidate them.
    return std::make_unique<IteratorImpl>(entries_, cmp_);
  }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(entries_.begin(), entries_.end(),
                [this](const char* a, const char* b) { return cmp_(a, b) < 0; });
      sorted_ = true;
    }
  }

  class IteratorImpl final : public Iterator {
   public:
    IteratorImpl(std::vector<const char*> entries,
                 const MemTableKeyComparator& cmp)
        : entries_(std::move(entries)), cmp_(cmp), index_(0) {}

    bool Valid() const override { return index_ < entries_.size(); }
    const char* entry() const override { return entries_[index_]; }
    void Next() override { ++index_; }
    void SeekToFirst() override { index_ = 0; }
    void Seek(const Slice& internal_key) override {
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), internal_key,
          [this](const char* entry, const Slice& key) {
            return cmp_.CompareEntryToKey(entry, key) < 0;
          });
      index_ = static_cast<size_t>(it - entries_.begin());
    }

   private:
    const std::vector<const char*> entries_;
    MemTableKeyComparator cmp_;
    size_t index_;
  };

  MemTableKeyComparator cmp_;
  std::vector<const char*> entries_;
  bool sorted_ = true;
};

}  // namespace

std::unique_ptr<MemTableRep> NewVectorRep(const MemTableKeyComparator& cmp) {
  return std::make_unique<VectorRep>(cmp);
}

}  // namespace lsmlab
