#include "table/block.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/coding.h"

namespace lsmlab {

Block::Block(std::string contents) : data_(std::move(contents)) {
  if (data_.size() < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  uint32_t num_restarts = NumRestarts();
  uint64_t restart_bytes =
      (static_cast<uint64_t>(num_restarts) + 1) * sizeof(uint32_t);
  if (restart_bytes > data_.size()) {
    malformed_ = true;
    return;
  }
  restart_offset_ =
      static_cast<uint32_t>(data_.size() - restart_bytes);
}

uint32_t Block::NumRestarts() const {
  return DecodeFixed32(data_.data() + data_.size() - sizeof(uint32_t));
}

namespace {

/// Decodes the three varint32 lengths of an entry header. Returns nullptr on
/// corruption.
const char* DecodeEntry(const char* p, const char* limit, uint32_t* shared,
                        uint32_t* non_shared, uint32_t* value_length) {
  if (limit - p < 3) {
    return nullptr;
  }
  *shared = static_cast<uint8_t>(p[0]);
  *non_shared = static_cast<uint8_t>(p[1]);
  *value_length = static_cast<uint8_t>(p[2]);
  if ((*shared | *non_shared | *value_length) < 128) {
    // Fast path: all three lengths are single-byte varints.
    p += 3;
  } else {
    if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) return nullptr;
  }
  // Widen before adding: non_shared + value_length can wrap uint32 on
  // corrupt input (e.g. 0xffffffff + 1 == 0), which would pass a 32-bit
  // bounds check and over-read the block by ~4 GiB.
  if (static_cast<uint64_t>(limit - p) <
      static_cast<uint64_t>(*non_shared) + *value_length) {
    return nullptr;
  }
  return p;
}

}  // namespace

class Block::Iter final : public Iterator {
 public:
  Iter(const Comparator* comparator, const char* data, uint32_t restart_offset,
       uint32_t num_restarts)
      : comparator_(comparator),
        data_(data),
        restarts_(restart_offset),
        num_restarts_(num_restarts),
        current_(restart_offset),
        restart_index_(num_restarts) {}

  bool Valid() const override { return current_ < restarts_; }
  Status status() const override { return status_; }
  Slice key() const override {
    assert(Valid());
    return Slice(key_);
  }
  Slice value() const override {
    assert(Valid());
    return value_;
  }

  void Next() override {
    assert(Valid());
    ParseNextEntry();
  }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextEntry();
  }

  void Seek(const Slice& target) override {
    // Binary-search the restart array for the last restart with key < target
    // (the fence-pointer search within a block), then scan linearly.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = GetRestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr =
          DecodeEntry(data_ + region_offset, data_ + restarts_, &shared,
                      &non_shared, &value_length);
      if (key_ptr == nullptr || (shared != 0)) {
        CorruptionError();
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (comparator_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }

    SeekToRestartPoint(left);
    while (true) {
      if (!ParseNextEntry()) {
        return;  // Ran off the end: leave invalid (no entry >= target).
      }
      if (comparator_->Compare(Slice(key_), target) >= 0) {
        return;
      }
    }
  }

 private:
  uint32_t GetRestartPoint(uint32_t index) const {
    assert(index < num_restarts_);
    return DecodeFixed32(data_ + restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    // ParseNextEntry starts at value_ end; emulate by pointing value_ at the
    // restart offset with zero length.
    uint32_t offset = GetRestartPoint(index);
    value_ = Slice(data_ + offset, 0);
  }

  uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  void CorruptionError() {
    current_ = restarts_;
    restart_index_ = num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_.clear();
  }

  bool ParseNextEntry() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;
    if (p >= limit) {
      // No more entries; mark invalid.
      current_ = restarts_;
      restart_index_ = num_restarts_;
      return false;
    }

    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      ++restart_index_;
    }
    return true;
  }

  const Comparator* const comparator_;
  const char* const data_;
  const uint32_t restarts_;
  const uint32_t num_restarts_;

  uint32_t current_;  // Offset of the current entry; >= restarts_ if invalid.
  uint32_t restart_index_;
  std::string key_;
  Slice value_;
  Status status_;
};

std::unique_ptr<Iterator> Block::NewIterator(
    const Comparator* comparator) const {
  if (malformed_) {
    return NewEmptyIterator(Status::Corruption("malformed block"));
  }
  uint32_t num_restarts = NumRestarts();
  if (num_restarts == 0) {
    return NewEmptyIterator();
  }
  return std::make_unique<Iter>(comparator, data_.data(), restart_offset_,
                                num_restarts);
}

}  // namespace lsmlab
