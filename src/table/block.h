#ifndef LSMLAB_TABLE_BLOCK_H_
#define LSMLAB_TABLE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "table/iterator.h"
#include "util/comparator.h"
#include "util/slice.h"

namespace lsmlab {

/// An immutable, parsed block (data, index, or metaindex). Owns its bytes;
/// shared between the block cache and live iterators.
class Block {
 public:
  /// Takes ownership of `contents`.
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  /// Iterator over the block's entries; keeps the Block alive via the
  /// owner pointer held by the caller.
  std::unique_ptr<Iterator> NewIterator(const Comparator* comparator) const;

 private:
  class Iter;

  uint32_t NumRestarts() const;

  std::string data_;
  uint32_t restart_offset_ = 0;  // Offset of the restart array.
  bool malformed_ = false;
};

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_BLOCK_H_
