#ifndef LSMLAB_TABLE_BLOCK_BUILDER_H_
#define LSMLAB_TABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/comparator.h"
#include "util/slice.h"

namespace lsmlab {

/// Builds a sorted block with restart-point prefix compression: keys share
/// the prefix of their predecessor except at restart points, where full keys
/// anchor binary search.
///
/// Block layout:
///   entry*  = shared(varint32) | non_shared(varint32) | value_len(varint32)
///             | key_delta | value
///   trailer = restart offsets (fixed32 each) | num_restarts (fixed32)
class BlockBuilder {
 public:
  BlockBuilder(const Comparator* comparator, int restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  /// Appends an entry. Keys must arrive in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Finishes the block and returns its full contents; valid until Reset().
  Slice Finish();

  /// Bytes the block would occupy if finished now.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const Comparator* const comparator_;
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;  // Entries since the last restart point.
  bool finished_;
  std::string last_key_;
};

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_BLOCK_BUILDER_H_
