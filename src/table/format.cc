#include "table/format.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // Pad.
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an lsmlab table (bad magic number)");
  }

  Status result = metaindex_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  if (result.ok()) {
    // Skip any remaining padding.
    *input = Slice(magic_ptr + 8, 0);
  }
  return result;
}

Status VerifyBlockTrailer(const char* data, size_t n, bool verify_checksum) {
  if (verify_checksum) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      return Status::Corruption("block checksum mismatch");
    }
  }
  if (data[n] != 0) {
    return Status::Corruption("unknown block compression type");
  }
  return Status::OK();
}

Status ReadBlock(const RandomAccessFile* file, const BlockHandle& handle,
                 bool verify_checksum, BlockContents* result,
                 std::string* scratch) {
  result->data.clear();

  size_t n = static_cast<size_t>(handle.size());
  std::string local_buf;
  std::string* buf = scratch != nullptr ? scratch : &local_buf;
  if (buf->size() < n + kBlockTrailerSize) {
    buf->resize(n + kBlockTrailerSize);
  }
  Slice contents;
  Status s =
      file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf->data());
  if (!s.ok()) {
    return s;
  }
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }

  const char* data = contents.data();
  s = VerifyBlockTrailer(data, n, verify_checksum);
  if (!s.ok()) {
    return s;
  }

  result->data.assign(data, n);
  return Status::OK();
}

}  // namespace lsmlab
