#ifndef LSMLAB_TABLE_FORMAT_H_
#define LSMLAB_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "io/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// BlockHandle is a pointer to a span of an SSTable file.
class BlockHandle {
 public:
  static constexpr uint64_t kMaxEncodedLength = 10 + 10;

  BlockHandle() : offset_(~uint64_t{0}), size_(~uint64_t{0}) {}

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

/// Footer: the fixed-size tail of every SSTable, pointing at the metaindex
/// and index blocks and ending in a magic number.
class Footer {
 public:
  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 8;

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

constexpr uint64_t kTableMagicNumber = 0x4c534d4c41422e31ull;  // "LSMLAB.1"

/// Every block is followed by a 5-byte trailer: 1 type byte (0 = raw;
/// compression codes reserved) and a 4-byte masked CRC of data + type.
constexpr size_t kBlockTrailerSize = 5;

struct BlockContents {
  std::string data;
};

/// Checks the kBlockTrailerSize-byte trailer following `n` bytes of block
/// data at `data` (so data[0 .. n + kBlockTrailerSize) must be valid):
/// rejects unknown compression types always, and CRC mismatches when
/// `verify_checksum` is set. Shared by ReadBlock and the batched read path,
/// which verifies buffers it fetched through Env::MultiRead.
Status VerifyBlockTrailer(const char* data, size_t n, bool verify_checksum);

/// Reads the block identified by `handle`, verifying the CRC trailer when
/// `verify_checksum` is set. `scratch` (nullable) is a caller-owned reusable
/// read buffer: supplying one across calls (e.g. per iterator) removes the
/// per-call heap allocation a cold read otherwise pays.
Status ReadBlock(const RandomAccessFile* file, const BlockHandle& handle,
                 bool verify_checksum, BlockContents* result,
                 std::string* scratch = nullptr);

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_FORMAT_H_
