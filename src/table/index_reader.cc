#include "table/index_reader.h"

#include <algorithm>
#include <cassert>

#include "table/iterator.h"

namespace lsmlab {

// ---------------------------------------------------- binary-search fence --

BinarySearchIndexReader::BinarySearchIndexReader(
    std::unique_ptr<Block> fence_block,
    const InternalKeyComparator* comparator)
    : fence_block_(std::move(fence_block)), comparator_(comparator) {
  assert(fence_block_ != nullptr);
  assert(comparator_ != nullptr);
}

bool BinarySearchIndexReader::Locate(const Slice& internal_key,
                                     BlockHandle* handle, Status* s) {
  *s = Status::OK();
  auto iter = fence_block_->NewIterator(comparator_);
  iter->Seek(internal_key);
  if (!iter->Valid()) {
    *s = iter->status();
    return false;
  }
  Slice input = iter->value();
  *s = handle->DecodeFrom(&input);
  return s->ok();
}

/// Adapts the fence block's entry iterator: each position's value is a
/// handle encoding, decoded eagerly so handle() is a plain accessor.
class BinarySearchIndexReader::Iter final : public IndexIterator {
 public:
  Iter(const Block* fence_block, const InternalKeyComparator* comparator)
      : iter_(fence_block->NewIterator(comparator)) {}

  bool Valid() const override { return valid_; }
  void SeekToFirst() override {
    iter_->SeekToFirst();
    Update();
  }
  void Seek(const Slice& internal_key) override {
    iter_->Seek(internal_key);
    Update();
  }
  void Next() override {
    assert(valid_);
    iter_->Next();
    Update();
  }
  const BlockHandle& handle() const override {
    assert(valid_);
    return handle_;
  }
  Status status() const override {
    return decode_status_.ok() ? iter_->status() : decode_status_;
  }

 private:
  void Update() {
    valid_ = false;
    if (!iter_->Valid()) {
      return;
    }
    Slice input = iter_->value();
    decode_status_ = handle_.DecodeFrom(&input);
    valid_ = decode_status_.ok();
  }

  std::unique_ptr<Iterator> iter_;
  BlockHandle handle_;
  Status decode_status_;
  bool valid_ = false;
};

std::unique_ptr<IndexIterator> BinarySearchIndexReader::NewIterator() {
  return std::make_unique<Iter>(fence_block_.get(), comparator_);
}

// ------------------------------------------------------------ learned PLR --

LearnedIndexReader::LearnedIndexReader(LearnedIndexModel model,
                                       const InternalKeyComparator* comparator,
                                       Statistics* statistics,
                                       FenceBlockProvider* provider)
    : model_(std::move(model)),
      comparator_(comparator),
      statistics_(statistics),
      provider_(provider) {
  assert(model_.num_blocks > 0);
  assert(comparator_ != nullptr);
  assert(provider_ != nullptr);
}

void LearnedIndexReader::HandleForBlock(uint64_t position,
                                        BlockHandle* handle) const {
  assert(position < model_.num_blocks);
  size_t i = static_cast<size_t>(position);
  handle->set_offset(model_.offsets[i]);
  // The decoder enforced delta > kBlockTrailerSize, so this cannot wrap.
  handle->set_size(model_.offsets[i + 1] - model_.offsets[i] -
                   kBlockTrailerSize);
}

uint64_t LearnedIndexReader::LowerBoundDigest(uint64_t x) const {
  const uint64_t n = model_.num_blocks;
  const uint64_t* base = model_.digests.data();
  // The epsilon bound holds for fitted digests; the +1 absorbs the
  // float-to-int truncation in PredictBlock.
  const uint64_t margin = static_cast<uint64_t>(model_.epsilon) + 1;
  uint64_t pred = model_.PredictBlock(x);
  uint64_t lo = pred > margin ? pred - margin : 0;
  uint64_t hi = std::min(n, pred + margin + 1);
  uint64_t j = static_cast<uint64_t>(
      std::lower_bound(base + lo, base + hi, x) - base);
  // A result pinned to a window boundary may really lie outside the window
  // (a mispredicting or unfitted digest); redo over the full array. Still
  // exact — the model only ever narrows the search.
  if ((j == lo && lo > 0) || (j == hi && hi < n)) {
    j = static_cast<uint64_t>(std::lower_bound(base, base + n, x) - base);
  }
  return j;
}

bool LearnedIndexReader::LocatePosition(const Slice& internal_key,
                                        uint64_t* position, Status* s) {
  *s = Status::OK();
  const uint64_t n = model_.num_blocks;
  uint64_t x = model_.QueryDigest(ExtractUserKey(internal_key));
  uint64_t j = LowerBoundDigest(x);
  if (j >= n || model_.digests[j] != x) {
    // Certified: digests[j'] < x for all j' < j implies those fences sort
    // strictly before the key; digests[j] > x implies fence j sorts strictly
    // after it. So block j is exactly the fence-search answer (j == n: the
    // key is past the last block).
    if (statistics_ != nullptr) {
      statistics_->learned_index_hits.fetch_add(1, std::memory_order_relaxed);
    }
    *position = j;
    return true;
  }
  // Digest tie: the digest order cannot certify the full-key comparison
  // against fence j. Resolve through the real fence pointers.
  if (statistics_ != nullptr) {
    statistics_->learned_index_fallbacks.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  const Block* fence = nullptr;
  *s = provider_->GetFenceIndexBlock(&fence);
  if (!s->ok()) {
    return false;
  }
  auto iter = fence->NewIterator(comparator_);
  iter->Seek(internal_key);
  if (!iter->Valid()) {
    *s = iter->status();
    if (!s->ok()) {
      return false;
    }
    *position = n;  // Past the last block.
    return true;
  }
  Slice input = iter->value();
  BlockHandle h;
  *s = h.DecodeFrom(&input);
  if (!s->ok()) {
    return false;
  }
  // Map the fence handle back to a block position via the offset table.
  auto begin = model_.offsets.begin();
  auto end = model_.offsets.end() - 1;  // Last entry is the data-region end.
  auto it = std::lower_bound(begin, end, h.offset());
  if (it == end || *it != h.offset()) {
    *s = Status::Corruption(
        "learned index: fence handle outside the offset table");
    return false;
  }
  *position = static_cast<uint64_t>(it - begin);
  return true;
}

bool LearnedIndexReader::Locate(const Slice& internal_key, BlockHandle* handle,
                                Status* s) {
  uint64_t position = 0;
  if (!LocatePosition(internal_key, &position, s)) {
    return false;
  }
  if (position >= model_.num_blocks) {
    return false;  // Past the last block; *s stays OK.
  }
  HandleForBlock(position, handle);
  return true;
}

/// Position-based iteration over the packed offset table: scans never touch
/// fence keys (or, absent Seek ties, the fence block at all).
class LearnedIndexReader::Iter final : public IndexIterator {
 public:
  explicit Iter(LearnedIndexReader* reader) : reader_(reader) {}

  bool Valid() const override { return valid_; }
  void SeekToFirst() override {
    status_ = Status::OK();
    SetPosition(0);
  }
  void Seek(const Slice& internal_key) override {
    uint64_t position = 0;
    if (!reader_->LocatePosition(internal_key, &position, &status_)) {
      valid_ = false;
      return;
    }
    SetPosition(position);
  }
  void Next() override {
    assert(valid_);
    SetPosition(position_ + 1);
  }
  const BlockHandle& handle() const override {
    assert(valid_);
    return handle_;
  }
  Status status() const override { return status_; }

 private:
  void SetPosition(uint64_t position) {
    position_ = position;
    valid_ = status_.ok() && position < reader_->model_.num_blocks;
    if (valid_) {
      reader_->HandleForBlock(position, &handle_);
    }
  }

  LearnedIndexReader* const reader_;
  uint64_t position_ = 0;
  BlockHandle handle_;
  Status status_;
  bool valid_ = false;
};

std::unique_ptr<IndexIterator> LearnedIndexReader::NewIterator() {
  return std::make_unique<Iter>(this);
}

}  // namespace lsmlab
