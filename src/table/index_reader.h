#ifndef LSMLAB_TABLE_INDEX_READER_H_
#define LSMLAB_TABLE_INDEX_READER_H_

#include <memory>

#include "db/dbformat.h"
#include "db/statistics.h"
#include "table/block.h"
#include "table/format.h"
#include "table/learned_index.h"
#include "util/options.h"
#include "util/status.h"

namespace lsmlab {

/// Iterator over a table's data-block handles, in block order. Unlike a raw
/// index-block iterator it exposes the decoded BlockHandle directly and no
/// key: TwoLevelIterator only ever consumes handles, which is what lets a
/// learned index iterate without materializing fence keys at all.
class IndexIterator {
 public:
  virtual ~IndexIterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions on the block that may contain `internal_key` (the block
  /// holding the table's first entry >= internal_key); invalid when the key
  /// is past the last block.
  virtual void Seek(const Slice& internal_key) = 0;
  virtual void Next() = 0;
  /// Handle of the current data block. Requires Valid().
  virtual const BlockHandle& handle() const = 0;
  virtual Status status() const = 0;
};

/// Lazy source of the classic fence-pointer block. Implemented by
/// TableReader: learned tables keep only the model pinned and load the fence
/// block on first demand (digest-tie fallback), which is where the learned
/// index's memory win comes from.
class FenceBlockProvider {
 public:
  virtual ~FenceBlockProvider() = default;

  /// Returns the pinned fence block, loading it on first call. The returned
  /// pointer stays valid for the provider's lifetime. Thread-safe.
  virtual Status GetFenceIndexBlock(const Block** block) = 0;
};

/// Pluggable per-SSTable index over the data blocks (ROADMAP item 4).
/// Implementations must honour LocateDataBlock's single-candidate contract:
/// Locate resolves exactly the block containing the table's globally-first
/// entry >= internal_key — the batched MultiGet path walks blocks from that
/// answer and relies on it.
class IndexReader {
 public:
  virtual ~IndexReader() = default;

  virtual IndexType kind() const = 0;

  /// Resolves the data block that may contain `internal_key`. Returns false
  /// when the key is past the last block (no candidate; *s stays OK) or on
  /// error (*s set).
  virtual bool Locate(const Slice& internal_key, BlockHandle* handle,
                      Status* s) = 0;

  virtual std::unique_ptr<IndexIterator> NewIterator() = 0;

  /// Bytes this reader keeps pinned in memory.
  virtual size_t MemoryUsage() const = 0;
};

/// Classic binary-searched fence pointers: owns the pinned index block.
class BinarySearchIndexReader final : public IndexReader {
 public:
  BinarySearchIndexReader(std::unique_ptr<Block> fence_block,
                          const InternalKeyComparator* comparator);

  IndexType kind() const override { return IndexType::kBinarySearchFence; }
  bool Locate(const Slice& internal_key, BlockHandle* handle,
              Status* s) override;
  std::unique_ptr<IndexIterator> NewIterator() override;
  size_t MemoryUsage() const override { return fence_block_->size(); }

 private:
  class Iter;

  std::unique_ptr<Block> fence_block_;
  const InternalKeyComparator* const comparator_;
};

/// Learned piecewise-linear index. The model predicts a block, the digest
/// array certifies it (strict digest inequalities imply the corresponding
/// full-key inequalities); lookups landing on a digest tie cannot be
/// certified and fall back to the fence block fetched through `provider`.
class LearnedIndexReader final : public IndexReader {
 public:
  LearnedIndexReader(LearnedIndexModel model,
                     const InternalKeyComparator* comparator,
                     Statistics* statistics, FenceBlockProvider* provider);

  IndexType kind() const override { return IndexType::kLearnedPLR; }
  bool Locate(const Slice& internal_key, BlockHandle* handle,
              Status* s) override;
  std::unique_ptr<IndexIterator> NewIterator() override;
  size_t MemoryUsage() const override { return model_.MemoryUsage(); }

  const LearnedIndexModel& model() const { return model_; }

 private:
  class Iter;

  /// Core lookup: block position for `internal_key`, or num_blocks when the
  /// key is past the last block. Returns false on fallback-path error.
  bool LocatePosition(const Slice& internal_key, uint64_t* position,
                      Status* s);
  /// First digest index >= x, resolved through the model: a windowed
  /// lower_bound around the prediction, widened to a full binary search only
  /// when the window boundary leaves the answer uncertain.
  uint64_t LowerBoundDigest(uint64_t x) const;
  /// Synthesizes block `position`'s handle from the packed offsets.
  void HandleForBlock(uint64_t position, BlockHandle* handle) const;

  const LearnedIndexModel model_;
  const InternalKeyComparator* const comparator_;
  Statistics* const statistics_;
  FenceBlockProvider* const provider_;
};

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_INDEX_READER_H_
