#ifndef LSMLAB_TABLE_ITERATOR_H_
#define LSMLAB_TABLE_ITERATOR_H_

#include <memory>

#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// Forward iterator over (internal key, value) pairs. lsmlab supports
/// forward scans only; reverse iteration is out of scope (noted in README).
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  /// Requires Valid(). The returned slices stay valid until the next
  /// mutation of the iterator.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  /// Non-OK if the iterator encountered corruption or I/O errors.
  virtual Status status() const = 0;
};

/// An iterator over nothing, optionally carrying an error.
std::unique_ptr<Iterator> NewEmptyIterator(Status status = Status::OK());

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_ITERATOR_H_
