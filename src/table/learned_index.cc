#include "table/learned_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "table/format.h"
#include "util/coding.h"

namespace lsmlab {

namespace {

/// On-disk layout (all fields mandatory, exact-length — trailing bytes are
/// Corruption, mirroring the VersionEdit trailing-garbage rule):
///   varint32  format version (== 1)
///   varint32  epsilon
///   length-prefixed prefix bytes (<= kMaxPrefixSkip)
///   varint64  num_blocks n  (>= 1)
///   n x varint64  block-size deltas: delta_i = offsets[i+1] - offsets[i],
///                 each > kBlockTrailerSize (a data block is never empty)
///   n x fixed64   fence digests, sorted non-decreasing
///   varint32  num_segments m (1 <= m <= n)
///   m x (fixed64 start_x, fixed64 slope bits, fixed64 intercept bits)
///                 start_x strictly increasing, slope/intercept finite
constexpr uint32_t kFormatVersion = 1;

/// Caps keep a hostile length field from driving huge allocations before
/// the per-element validation runs.
constexpr size_t kMaxPrefixSkip = 64;
constexpr uint64_t kMaxBlocks = uint64_t{1} << 32;

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t LearnedKeyDigest(const Slice& user_key, size_t prefix_skip) {
  uint64_t x = 0;
  for (size_t i = 0; i < 8; ++i) {
    size_t pos = prefix_skip + i;
    uint8_t b = pos < user_key.size()
                    ? static_cast<uint8_t>(user_key.data()[pos])
                    : 0;
    x = (x << 8) | b;
  }
  return x;
}

// ------------------------------------------------------------------ model --

void LearnedIndexModel::EncodeTo(std::string* dst) const {
  assert(offsets.size() == num_blocks + 1);
  assert(digests.size() == num_blocks);
  PutVarint32(dst, kFormatVersion);
  PutVarint32(dst, epsilon);
  PutLengthPrefixedSlice(dst, prefix);
  PutVarint64(dst, num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    PutVarint64(dst, offsets[i + 1] - offsets[i]);
  }
  for (uint64_t d : digests) {
    PutFixed64(dst, d);
  }
  PutVarint32(dst, static_cast<uint32_t>(segments.size()));
  for (const PlrSegment& s : segments) {
    PutFixed64(dst, s.start_x);
    PutFixed64(dst, DoubleToBits(s.slope));
    PutFixed64(dst, DoubleToBits(s.intercept));
  }
}

Status LearnedIndexModel::DecodeFrom(const Slice& input,
                                     LearnedIndexModel* model) {
  *model = LearnedIndexModel();
  Slice in = input;
  uint32_t version = 0;
  if (!GetVarint32(&in, &version) || version != kFormatVersion) {
    return Status::Corruption("learned index: bad format version");
  }
  if (!GetVarint32(&in, &model->epsilon)) {
    return Status::Corruption("learned index: bad epsilon");
  }
  Slice prefix;
  if (!GetLengthPrefixedSlice(&in, &prefix) ||
      prefix.size() > kMaxPrefixSkip) {
    return Status::Corruption("learned index: bad prefix");
  }
  model->prefix.assign(prefix.data(), prefix.size());
  if (!GetVarint64(&in, &model->num_blocks) || model->num_blocks == 0 ||
      model->num_blocks > kMaxBlocks) {
    return Status::Corruption("learned index: bad block count");
  }
  const uint64_t n = model->num_blocks;
  // Each delta is at least one varint byte; reject impossible counts before
  // reserving anything.
  if (n > in.size()) {
    return Status::Corruption("learned index: truncated deltas");
  }
  model->offsets.reserve(static_cast<size_t>(n) + 1);
  model->offsets.push_back(0);  // Data blocks start at file offset 0.
  uint64_t offset = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta = 0;
    if (!GetVarint64(&in, &delta)) {
      return Status::Corruption("learned index: truncated deltas");
    }
    // A data block carries at least one payload byte plus its trailer, and
    // offsets must not wrap uint64.
    if (delta <= kBlockTrailerSize ||
        delta > std::numeric_limits<uint64_t>::max() - offset) {
      return Status::Corruption("learned index: bad block delta");
    }
    offset += delta;
    model->offsets.push_back(offset);
  }
  if (in.size() < n * 8) {  // n <= 2^32, so n * 8 cannot wrap.
    return Status::Corruption("learned index: truncated digests");
  }
  model->digests.reserve(static_cast<size_t>(n));
  uint64_t prev_digest = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t d = 0;
    (void)GetFixed64(&in, &d);  // Length pre-checked above.
    if (i > 0 && d < prev_digest) {
      return Status::Corruption("learned index: digests not sorted");
    }
    prev_digest = d;
    model->digests.push_back(d);
  }
  uint32_t num_segments = 0;
  if (!GetVarint32(&in, &num_segments) || num_segments == 0 ||
      num_segments > n) {
    return Status::Corruption("learned index: bad segment count");
  }
  if (in.size() != static_cast<uint64_t>(num_segments) * 24) {
    return Status::Corruption("learned index: bad segment region");
  }
  model->segments.reserve(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    PlrSegment seg;
    uint64_t slope_bits = 0, intercept_bits = 0;
    // Exact segment-region length pre-checked above; cannot fail.
    (void)GetFixed64(&in, &seg.start_x);
    (void)GetFixed64(&in, &slope_bits);      // Pre-checked above.
    (void)GetFixed64(&in, &intercept_bits);  // Pre-checked above.
    seg.slope = BitsToDouble(slope_bits);
    seg.intercept = BitsToDouble(intercept_bits);
    // Non-finite parameters would make PredictBlock's float-to-int cast UB.
    if (!std::isfinite(seg.slope) || !std::isfinite(seg.intercept)) {
      return Status::Corruption("learned index: non-finite segment");
    }
    if (i > 0 && seg.start_x <= model->segments.back().start_x) {
      return Status::Corruption("learned index: segments not sorted");
    }
    model->segments.push_back(seg);
  }
  assert(in.empty());  // Exact-length segment region consumed everything.
  return Status::OK();
}

uint64_t LearnedIndexModel::QueryDigest(const Slice& user_key) const {
  size_t skip = prefix.size();
  if (skip > 0) {
    size_t cmp_len = std::min(user_key.size(), skip);
    int c = std::memcmp(user_key.data(), prefix.data(), cmp_len);
    if (c < 0 || (c == 0 && user_key.size() < skip)) {
      return 0;  // Sorts before every key sharing the table prefix.
    }
    if (c > 0) {
      return std::numeric_limits<uint64_t>::max();  // Sorts after all.
    }
  }
  return LearnedKeyDigest(user_key, skip);
}

uint64_t LearnedIndexModel::PredictBlock(uint64_t x) const {
  assert(num_blocks > 0);
  if (segments.empty()) {
    return 0;
  }
  // Last segment with start_x <= x (queries below the first segment use it
  // anyway; the clamp below bounds the result).
  size_t lo = 0, hi = segments.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi + 1) / 2;
    if (segments[mid].start_x <= x) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const PlrSegment& seg = segments[lo];
  double dx = x >= seg.start_x ? static_cast<double>(x - seg.start_x)
                               : -static_cast<double>(seg.start_x - x);
  double pred = seg.intercept + seg.slope * dx;
  double max_block = static_cast<double>(num_blocks - 1);
  if (!(pred > 0.0)) {  // Also catches NaN from extreme (finite) params.
    return 0;
  }
  if (pred >= max_block) {
    return num_blocks - 1;
  }
  return static_cast<uint64_t>(pred);
}

size_t LearnedIndexModel::MemoryUsage() const {
  return sizeof(*this) + prefix.size() + offsets.size() * sizeof(uint64_t) +
         digests.size() * sizeof(uint64_t) +
         segments.size() * sizeof(PlrSegment);
}

// ---------------------------------------------------------------- builder --

LearnedIndexBuilder::LearnedIndexBuilder(uint32_t epsilon)
    : epsilon_(epsilon) {}

void LearnedIndexBuilder::AddBlock(const Slice& fence_user_key,
                                   uint64_t block_offset) {
  fence_key_offsets_.push_back(fence_keys_flat_.size());
  fence_keys_flat_.append(fence_user_key.data(), fence_user_key.size());
  block_offsets_.push_back(block_offset);
}

bool LearnedIndexBuilder::Finish(uint64_t data_end_offset, std::string* dst,
                                 uint64_t* segment_count) {
  *segment_count = 0;
  const size_t n = block_offsets_.size();
  if (n == 0) {
    return false;
  }
  auto fence_key = [&](size_t i) {
    size_t start = fence_key_offsets_[i];
    size_t end = i + 1 < n ? fence_key_offsets_[i + 1]
                           : fence_keys_flat_.size();
    return Slice(fence_keys_flat_.data() + start, end - start);
  };

  // Fixed-prefix extraction: skip the bytes the fences share. The final
  // fence is a FindShortSuccessor of the table's last key and often drops
  // the keyspace prefix entirely (e.g. "l" for a table of "key..."), so the
  // LCP is anchored on the second-to-last fence instead; for sorted bytewise
  // keys that LCP is shared by every fence but possibly the last, and
  // QueryDigest clamps an out-of-prefix final fence to UINT64_MAX, which
  // keeps the transform monotone.
  Slice first = fence_key(0);
  Slice anchor = fence_key(n >= 2 ? n - 2 : 0);
  size_t skip = 0;
  if (n >= 2) {
    size_t max_lcp = std::min({first.size(), anchor.size(), kMaxPrefixSkip});
    while (skip < max_lcp && first.data()[skip] == anchor.data()[skip]) {
      ++skip;
    }
  }

  LearnedIndexModel model;
  model.prefix.assign(first.data(), skip);
  model.epsilon = epsilon_;
  model.num_blocks = n;
  model.offsets = block_offsets_;
  model.offsets.push_back(data_end_offset);
  model.digests.reserve(n);
  size_t ties = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t d = model.QueryDigest(fence_key(i));
    if (i > 0) {
      assert(d >= model.digests.back());  // Monotone transform.
      ties += d == model.digests.back() ? 1 : 0;
    }
    model.digests.push_back(d);
  }
  // The keyspace defeats the transform when adjacent fences routinely share
  // their first prefix_skip+8 bytes: most lookups would tie and fall back,
  // so the model would be pure overhead. The table's properties record this
  // per-table fallback.
  if (n > 1 && ties * 2 >= n) {
    return false;
  }

  // Greedy one-pass epsilon-bounded segment fitting over (digest, block):
  // maintain the cone of slopes that keep every point of the open segment
  // within +-epsilon; a point that empties the cone closes the segment.
  const double eps = static_cast<double>(epsilon_);
  struct OpenSegment {
    uint64_t start_x;
    double start_y;
    double slope_lo;
    double slope_hi;
    bool bounded;
  };
  auto close = [&](const OpenSegment& open) {
    PlrSegment seg;
    seg.start_x = open.start_x;
    seg.intercept = open.start_y;
    if (!open.bounded) {
      seg.slope = 0.0;
    } else {
      // Midpoint of the cone, clamped non-negative: a negative slope stays
      // inside the cone only if slope_hi < 0, which cannot happen for
      // strictly increasing y (see below), so the clamp preserves the
      // epsilon bound while keeping the model monotone.
      double mid = (open.slope_lo + open.slope_hi) / 2.0;
      seg.slope = std::max(0.0, std::min(mid, open.slope_hi));
      seg.slope = std::max(seg.slope, open.slope_lo);
    }
    model.segments.push_back(seg);
  };
  OpenSegment open{model.digests[0], 0.0, 0.0, 0.0, false};
  for (size_t i = 1; i < n; ++i) {
    uint64_t x = model.digests[i];
    double y = static_cast<double>(i);
    if (x == open.start_x) {
      // A digest tie adds no slope constraint (dx == 0). A tie run longer
      // than epsilon cannot be represented within the bound at all — and
      // need not be: lookups landing on a tie are resolved by the fence
      // fallback, never by the model, so the point is simply skipped.
      continue;
    }
    double dx = static_cast<double>(x - open.start_x);
    double lo = (y - open.start_y - eps) / dx;
    double hi = (y - open.start_y + eps) / dx;  // > 0: y grows, eps >= 0.
    if (!open.bounded) {
      open.slope_lo = lo;
      open.slope_hi = hi;
      open.bounded = true;
    } else {
      open.slope_lo = std::max(open.slope_lo, lo);
      open.slope_hi = std::min(open.slope_hi, hi);
      if (open.slope_lo > open.slope_hi) {
        close(open);
        open = OpenSegment{x, y, 0.0, 0.0, false};
      }
    }
  }
  close(open);

  *segment_count = model.segments.size();
  model.EncodeTo(dst);
  return true;
}

}  // namespace lsmlab
