#ifndef LSMLAB_TABLE_LEARNED_INDEX_H_
#define LSMLAB_TABLE_LEARNED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// Piecewise-linear learned index over an SSTable's fence pointers
/// (DESIGN.md, "Pluggable per-table indexes"; ROADMAP item 4). SSTables are
/// immutable, so the model is fitted once at table-build time — a single
/// greedy pass over (key-digest, block-number) pairs with a hard epsilon
/// error bound — and never retrained.
///
/// Keys enter the model through a monotone key-to-number transform: the
/// table's fence user keys share a common prefix (the LCP of the first and
/// last fence), which is skipped, and the next 8 bytes are read big-endian.
/// The transform is monotone for bytewise-ordered keys, so the per-block
/// digest array is sorted and a digest comparison that is *strict* certifies
/// the corresponding full-key comparison. Lookups that hit a digest tie
/// cannot be certified from digests alone and fall back to the classic
/// binary-searched fence block — correctness never depends on the model.

/// One fitted segment: for x >= start_x (until the next segment's start),
/// predicted block = intercept + slope * (x - start_x), within +-epsilon of
/// the true block for every fitted fence digest.
struct PlrSegment {
  uint64_t start_x = 0;
  double slope = 0.0;
  double intercept = 0.0;
};

/// The decoded learned-index meta block: the model plus the compact
/// per-block tables (digests + data-block offsets) lookups run against.
struct LearnedIndexModel {
  /// Bytes every fence user key shares and the transform skips. Kept
  /// verbatim so out-of-range query keys can be ordered against the table.
  std::string prefix;
  uint32_t epsilon = 0;
  uint64_t num_blocks = 0;
  /// num_blocks + 1 file offsets: offsets[i] is data block i's start,
  /// offsets[num_blocks] is the end of the data region. Block i's on-disk
  /// size is offsets[i+1] - offsets[i] - kBlockTrailerSize.
  std::vector<uint64_t> offsets;
  /// num_blocks fence digests, sorted non-decreasing.
  std::vector<uint64_t> digests;
  std::vector<PlrSegment> segments;

  void EncodeTo(std::string* dst) const;
  /// Strict decoder for the untrusted on-disk block: every malformed,
  /// truncated, over-counted, non-finite or trailing-garbage input returns
  /// Corruption without over-reading `input` (fuzzed by
  /// fuzz_learned_index).
  static Status DecodeFrom(const Slice& input, LearnedIndexModel* model);

  /// The monotone transform applied to a query user key. Keys outside the
  /// table's common prefix clamp to 0 / UINT64_MAX so the digest order still
  /// brackets them correctly.
  uint64_t QueryDigest(const Slice& user_key) const;

  /// Model evaluation: predicted block number for digest `x`, clamped to
  /// [0, num_blocks - 1]. Requires num_blocks > 0.
  uint64_t PredictBlock(uint64_t x) const;

  /// In-memory footprint of the decoded tables (the bytes a reader pins).
  size_t MemoryUsage() const;
};

/// Build-side fitter. Feed one fence per data block in file order; Finish
/// fits the model and serializes the meta block. Returns false — and writes
/// nothing — when the keyspace defeats the digest transform (too many
/// digest ties for the model to discriminate), in which case the table
/// records the fallback in its properties and readers use the fence block.
class LearnedIndexBuilder {
 public:
  explicit LearnedIndexBuilder(uint32_t epsilon);

  /// Records data block `block_offset`'s fence pointer. `fence_user_key` is
  /// the user-key part of the index entry emitted for the block; keys must
  /// arrive in non-decreasing order.
  void AddBlock(const Slice& fence_user_key, uint64_t block_offset);

  /// Fits and serializes. `data_end_offset` is the file offset one past the
  /// last data block's trailer. On success appends the encoded block to
  /// `dst` and fills `*segment_count`.
  bool Finish(uint64_t data_end_offset, std::string* dst,
              uint64_t* segment_count);

  uint64_t num_blocks() const { return block_offsets_.size(); }

 private:
  const uint32_t epsilon_;
  // Fence user keys, flattened (cheaper than a vector<string> of thousands
  // of keys — same trick as the filter-key buffer in TableBuilder).
  std::string fence_keys_flat_;
  std::vector<size_t> fence_key_offsets_;
  std::vector<uint64_t> block_offsets_;
};

/// Shared transform: big-endian read of up to 8 bytes of `user_key`
/// starting at byte `prefix_skip`, zero-padded past the end. Monotone over
/// bytewise-ordered keys that share the first `prefix_skip` bytes.
uint64_t LearnedKeyDigest(const Slice& user_key, size_t prefix_skip);

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_LEARNED_INDEX_H_
