#include "table/merging_iterator.h"

#include <cassert>

namespace lsmlab {

namespace {

/// Straightforward tournament over N children. N is small (runs in a tree),
/// so a linear scan for the minimum beats heap bookkeeping in practice and
/// is simpler to verify. Ties are broken by child index, so children must be
/// ordered newest-first.
class MergingIterator final : public Iterator {
 public:
  MergingIterator(const Comparator* comparator,
                  std::vector<std::unique_ptr<Iterator>> children)
      : comparator_(comparator),
        children_(std::move(children)),
        current_(nullptr) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    assert(Valid());
    current_->Next();
    FindSmallest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  const Comparator* const comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) {
    return NewEmptyIterator();
  }
  if (children.size() == 1) {
    return std::move(children[0]);
  }
  return std::make_unique<MergingIterator>(comparator, std::move(children));
}

}  // namespace lsmlab
