#ifndef LSMLAB_TABLE_MERGING_ITERATOR_H_
#define LSMLAB_TABLE_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "table/iterator.h"
#include "util/comparator.h"

namespace lsmlab {

/// K-way merge over child iterators, the machinery behind both range scans
/// (tutorial §2.1.2: one iterator per sorted run, merged) and compactions.
/// Children yielding equal keys are surfaced in input order, so callers must
/// order children newest-run-first for LSM shadowing to work.
std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_MERGING_ITERATOR_H_
