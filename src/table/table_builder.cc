#include "table/table_builder.h"

#include <cassert>

#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab {

TableBuilder::TableBuilder(const TableBuilderOptions& options,
                           WritableFile* file)
    : options_(options),
      file_(file),
      data_block_(options.comparator, options.block_restart_interval),
      // Index blocks restart every entry: they are binary-searched, and
      // their keys rarely share prefixes after separator shortening.
      index_block_(options.comparator, 1) {
  assert(options_.comparator != nullptr);
  properties_.creation_time_micros = options.creation_time_micros;
  properties_.oldest_tombstone_time_micros =
      options.oldest_tombstone_time_micros;
  if (options_.index_type == IndexType::kLearnedPLR) {
    // The digest transform is monotone only over bytewise key order; any
    // other comparator defeats it for the whole table.
    if (options_.comparator->user_comparator() == BytewiseComparator()) {
      learned_builder_ =
          std::make_unique<LearnedIndexBuilder>(options_.learned_index_epsilon);
    } else {
      properties_.learned_index_fallback = 1;
    }
  }
}

TableBuilder::~TableBuilder() = default;

void TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!closed_);
  if (!status_.ok()) {
    return;
  }
  if (properties_.num_entries > 0) {
    assert(options_.comparator->Compare(internal_key, Slice(last_key_)) > 0);
  }

  if (pending_index_entry_) {
    assert(data_block_.empty());
    // Pick a short key in (last_key_of_prev_block, current_key] as the
    // block's fence pointer (tutorial §2.1.3: fence pointers bound every
    // block's key range).
    options_.comparator->FindShortestSeparator(&last_key_, internal_key);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    if (learned_builder_ != nullptr) {
      // The model is fitted over the same fence keys the index block
      // stores: the digest-certification argument compares query keys
      // against exactly these separators.
      learned_builder_->AddBlock(ExtractUserKey(Slice(last_key_)),
                                 pending_handle_.offset());
    }
    pending_index_entry_ = false;
  }

  if (options_.filter_policy != nullptr) {
    Slice user_key = ExtractUserKey(internal_key);
    filter_key_offsets_.push_back(filter_keys_flat_.size());
    filter_keys_flat_.append(user_key.data(), user_key.size());
  }

  ValueType type = ExtractValueType(internal_key);
  if (type == kTypeDeletion || type == kTypeSingleDeletion) {
    ++properties_.num_tombstones;
  }

  last_key_.assign(internal_key.data(), internal_key.size());
  ++properties_.num_entries;
  properties_.raw_key_bytes += internal_key.size();
  properties_.raw_value_bytes += value.size();
  data_block_.Add(internal_key, value);

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  assert(!closed_);
  if (!status_.ok() || data_block_.empty()) {
    return;
  }
  assert(!pending_index_entry_);
  Slice contents = data_block_.Finish();
  WriteRawBlock(contents, &pending_handle_);
  data_block_.Reset();
  ++properties_.num_data_blocks;
  pending_index_entry_ = true;
  if (status_.ok()) {
    status_ = file_->Flush();
  }
}

void TableBuilder::WriteRawBlock(const Slice& contents, BlockHandle* handle) {
  handle->set_offset(offset_);
  handle->set_size(contents.size());
  status_ = file_->Append(contents);
  if (status_.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = 0;  // Raw (no compression).
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    status_ = file_->Append(Slice(trailer, kBlockTrailerSize));
    if (status_.ok()) {
      offset_ += contents.size() + kBlockTrailerSize;
    }
  }
}

Status TableBuilder::Finish() {
  assert(!closed_);
  FlushDataBlock();
  closed_ = true;

  // Data region: blocks 0..n-1 are contiguous from file offset 0 and end
  // here; the learned index reconstructs their handles from this span.
  const uint64_t data_end_offset = offset_;

  // Finalize the last block's fence entry before any index is serialized.
  if (status_.ok() && pending_index_entry_) {
    options_.comparator->FindShortSuccessor(&last_key_);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    if (learned_builder_ != nullptr) {
      learned_builder_->AddBlock(ExtractUserKey(Slice(last_key_)),
                                 pending_handle_.offset());
    }
    pending_index_entry_ = false;
  }

  // Serialize the fence index now — it is written last, after the meta
  // blocks — so its size lands in the properties, and fit the learned model
  // over the collected fences. A declined fit (defeated digest transform)
  // is recorded per table; the reader then uses the fences alone.
  Slice index_contents;
  std::string learned_block;
  bool has_learned = false;
  if (status_.ok()) {
    index_contents = index_block_.Finish();
    properties_.fence_index_bytes = index_contents.size();
    if (learned_builder_ != nullptr) {
      uint64_t segment_count = 0;
      has_learned = learned_builder_->Finish(data_end_offset, &learned_block,
                                             &segment_count);
      if (has_learned) {
        properties_.index_type = static_cast<uint64_t>(IndexType::kLearnedPLR);
        properties_.learned_index_epsilon = options_.learned_index_epsilon;
        properties_.learned_index_segments = segment_count;
        properties_.learned_index_bytes = learned_block.size();
      } else {
        properties_.learned_index_fallback = 1;
      }
    }
  }

  BlockHandle filter_handle, learned_handle, properties_handle,
      metaindex_handle, index_handle;
  bool has_filter = false;

  // Filter block: one filter over the whole run's user keys.
  if (status_.ok() && options_.filter_policy != nullptr &&
      !filter_key_offsets_.empty()) {
    std::vector<Slice> keys;
    keys.reserve(filter_key_offsets_.size());
    for (size_t i = 0; i < filter_key_offsets_.size(); ++i) {
      size_t start = filter_key_offsets_[i];
      size_t end = (i + 1 < filter_key_offsets_.size())
                       ? filter_key_offsets_[i + 1]
                       : filter_keys_flat_.size();
      keys.emplace_back(filter_keys_flat_.data() + start, end - start);
    }
    std::string filter_data;
    options_.filter_policy->CreateFilter(keys.data(),
                                         static_cast<int>(keys.size()),
                                         &filter_data);
    WriteRawBlock(filter_data, &filter_handle);
    has_filter = true;
  }

  // Learned-index meta block.
  if (status_.ok() && has_learned) {
    WriteRawBlock(learned_block, &learned_handle);
  }

  // Properties block.
  if (status_.ok()) {
    std::string props;
    properties_.EncodeTo(&props);
    WriteRawBlock(props, &properties_handle);
  }

  // Metaindex block: names -> handles, added in bytewise order
  // ("filter.*" < "lsmlab.learned_index" < "lsmlab.properties").
  if (status_.ok()) {
    BlockBuilder metaindex_block(BytewiseComparator(), 1);
    if (has_filter) {
      std::string handle_encoding;
      filter_handle.EncodeTo(&handle_encoding);
      metaindex_block.Add(
          std::string("filter.") + options_.filter_policy->Name(),
          handle_encoding);
    }
    if (has_learned) {
      std::string handle_encoding;
      learned_handle.EncodeTo(&handle_encoding);
      metaindex_block.Add("lsmlab.learned_index", handle_encoding);
    }
    {
      std::string handle_encoding;
      properties_handle.EncodeTo(&handle_encoding);
      metaindex_block.Add("lsmlab.properties", handle_encoding);
    }
    WriteRawBlock(metaindex_block.Finish(), &metaindex_handle);
  }

  // Index block (the classic fence pointers, serialized above).
  if (status_.ok()) {
    WriteRawBlock(index_contents, &index_handle);
  }

  // Footer.
  if (status_.ok()) {
    Footer footer;
    footer.set_metaindex_handle(metaindex_handle);
    footer.set_index_handle(index_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    status_ = file_->Append(footer_encoding);
    if (status_.ok()) {
      offset_ += footer_encoding.size();
    }
  }
  return status_;
}

void TableBuilder::Abandon() {
  assert(!closed_);
  closed_ = true;
}

}  // namespace lsmlab
