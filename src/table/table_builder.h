#ifndef LSMLAB_TABLE_TABLE_BUILDER_H_
#define LSMLAB_TABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "filter/filter_policy.h"
#include "io/env.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "table/learned_index.h"
#include "table/table_properties.h"
#include "util/options.h"
#include "util/status.h"

namespace lsmlab {

/// Knobs the builder needs; a projection of Options so the table layer does
/// not depend on the whole knob board.
struct TableBuilderOptions {
  const InternalKeyComparator* comparator = nullptr;
  std::shared_ptr<const FilterPolicy> filter_policy;  // Null disables filters.
  /// Effective bits per key for this table's filter; Monkey varies this by
  /// level. Ignored by policies with intrinsic sizing (cuckoo).
  double filter_bits_per_key = 10.0;
  size_t block_size = 4096;
  int block_restart_interval = 16;
  uint64_t creation_time_micros = 0;
  uint64_t oldest_tombstone_time_micros = 0;
  /// Index structure to build (resolved per level by the engine). The
  /// classic fence-pointer block is always written — kLearnedPLR adds the
  /// model meta block on top and readers fall back to the fences on digest
  /// ties, so correctness never depends on the model.
  IndexType index_type = IndexType::kBinarySearchFence;
  /// Error bound for the kLearnedPLR fit.
  uint32_t learned_index_epsilon = 8;
};

/// Writes a sorted run of internal keys into the lsmlab SSTable format:
///   [data block]* [filter block] [properties block] [metaindex] [index]
///   [footer]
/// The filter is built at sorted-run granularity (tutorial §2.1.3) over user
/// keys. Keys must be added in strictly increasing internal-key order.
class TableBuilder {
 public:
  /// Does not take ownership of `file`.
  TableBuilder(const TableBuilderOptions& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  void Add(const Slice& internal_key, const Slice& value);

  /// Writes all trailing metadata. No Add() calls may follow.
  Status Finish();

  /// Abandons the table (the caller deletes the file).
  void Abandon();

  Status status() const { return status_; }
  uint64_t NumEntries() const { return properties_.num_entries; }
  /// File size so far (final only after Finish()).
  uint64_t FileSize() const { return offset_; }
  const TableProperties& properties() const { return properties_; }

 private:
  void FlushDataBlock();
  /// Writes `contents` as a block with trailer; fills `handle`.
  void WriteRawBlock(const Slice& contents, BlockHandle* handle);

  TableBuilderOptions options_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  TableProperties properties_;
  bool closed_ = false;

  // Filter inputs: flattened user keys + offsets (cheaper than a
  // vector<string> of millions of keys).
  std::string filter_keys_flat_;
  std::vector<size_t> filter_key_offsets_;

  // Set when a data block was just flushed: the next Add emits the pending
  // index entry with a shortened separator.
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;

  // Learned-index fitter; non-null only when kLearnedPLR was requested and
  // the comparator admits the monotone digest transform (bytewise order).
  std::unique_ptr<LearnedIndexBuilder> learned_builder_;
};

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_TABLE_BUILDER_H_
