#include "table/table_properties.h"

#include "util/coding.h"

namespace lsmlab {

void TableProperties::EncodeTo(std::string* dst) const {
  PutVarint64(dst, num_entries);
  PutVarint64(dst, num_tombstones);
  PutVarint64(dst, num_data_blocks);
  PutVarint64(dst, raw_key_bytes);
  PutVarint64(dst, raw_value_bytes);
  PutVarint64(dst, creation_time_micros);
  PutVarint64(dst, oldest_tombstone_time_micros);
}

Status TableProperties::DecodeFrom(const Slice& src) {
  Slice input = src;
  if (GetVarint64(&input, &num_entries) &&
      GetVarint64(&input, &num_tombstones) &&
      GetVarint64(&input, &num_data_blocks) &&
      GetVarint64(&input, &raw_key_bytes) &&
      GetVarint64(&input, &raw_value_bytes) &&
      GetVarint64(&input, &creation_time_micros) &&
      GetVarint64(&input, &oldest_tombstone_time_micros)) {
    return Status::OK();
  }
  return Status::Corruption("bad table properties");
}

}  // namespace lsmlab
