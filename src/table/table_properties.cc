#include "table/table_properties.h"

#include "util/coding.h"

namespace lsmlab {

void TableProperties::EncodeTo(std::string* dst) const {
  PutVarint64(dst, num_entries);
  PutVarint64(dst, num_tombstones);
  PutVarint64(dst, num_data_blocks);
  PutVarint64(dst, raw_key_bytes);
  PutVarint64(dst, raw_value_bytes);
  PutVarint64(dst, creation_time_micros);
  PutVarint64(dst, oldest_tombstone_time_micros);
  PutVarint64(dst, index_type);
  PutVarint64(dst, learned_index_epsilon);
  PutVarint64(dst, learned_index_segments);
  PutVarint64(dst, learned_index_bytes);
  PutVarint64(dst, fence_index_bytes);
  PutVarint64(dst, learned_index_fallback);
}

Status TableProperties::DecodeFrom(const Slice& src) {
  Slice input = src;
  if (!(GetVarint64(&input, &num_entries) &&
        GetVarint64(&input, &num_tombstones) &&
        GetVarint64(&input, &num_data_blocks) &&
        GetVarint64(&input, &raw_key_bytes) &&
        GetVarint64(&input, &raw_value_bytes) &&
        GetVarint64(&input, &creation_time_micros) &&
        GetVarint64(&input, &oldest_tombstone_time_micros))) {
    return Status::Corruption("bad table properties");
  }
  // Index fields arrived with the pluggable-index work; tables written
  // before it simply stop here and keep the zero defaults.
  if (input.empty()) {
    return Status::OK();
  }
  if (!(GetVarint64(&input, &index_type) &&
        GetVarint64(&input, &learned_index_epsilon) &&
        GetVarint64(&input, &learned_index_segments) &&
        GetVarint64(&input, &learned_index_bytes) &&
        GetVarint64(&input, &fence_index_bytes) &&
        GetVarint64(&input, &learned_index_fallback)) ||
      !input.empty()) {
    return Status::Corruption("bad table properties");
  }
  return Status::OK();
}

}  // namespace lsmlab
