#ifndef LSMLAB_TABLE_TABLE_PROPERTIES_H_
#define LSMLAB_TABLE_TABLE_PROPERTIES_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// Per-SSTable statistics persisted in the properties meta block. Compaction
/// picking policies (most-tombstones, FADE) read these without opening the
/// data blocks.
struct TableProperties {
  uint64_t num_entries = 0;
  /// Point + single-delete tombstones in this run.
  uint64_t num_tombstones = 0;
  uint64_t num_data_blocks = 0;
  uint64_t raw_key_bytes = 0;
  uint64_t raw_value_bytes = 0;
  /// Microsecond timestamp when the run was created (flush or compaction).
  uint64_t creation_time_micros = 0;
  /// Creation time of the oldest run whose tombstones flowed into this one;
  /// drives the FADE tombstone-TTL trigger. Zero if the run has no
  /// tombstones.
  uint64_t oldest_tombstone_time_micros = 0;

  // --- Per-table index (DESIGN.md, "Pluggable per-table indexes") ----------
  /// The index this table actually carries: 0 = binary-searched fence
  /// pointers, 1 = learned PLR (matches IndexType's enumerator order). A
  /// table built under kLearnedPLR still records 0 here when the build fell
  /// back (see learned_index_fallback).
  uint64_t index_type = 0;
  /// Error bound the model was fitted with (0 for fence-only tables).
  uint64_t learned_index_epsilon = 0;
  /// Fitted PLR segments (0 for fence-only tables).
  uint64_t learned_index_segments = 0;
  /// Serialized size of the learned-index meta block, in bytes.
  uint64_t learned_index_bytes = 0;
  /// Serialized size of the classic fence-pointer index block, in bytes
  /// (always written — it is the learned path's fallback).
  uint64_t fence_index_bytes = 0;
  /// 1 when kLearnedPLR was requested but the build declined (non-bytewise
  /// comparator, or the keyspace defeats the digest transform).
  uint64_t learned_index_fallback = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  double TombstoneDensity() const {
    return num_entries == 0 ? 0.0
                            : static_cast<double>(num_tombstones) /
                                  static_cast<double>(num_entries);
  }
};

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_TABLE_PROPERTIES_H_
