#include "table/table_reader.h"

#include <cassert>

#include "util/coding.h"

namespace lsmlab {

TableReader::TableReader(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_number)
    : options_(options), file_(std::move(file)), file_number_(file_number) {}

Status TableReader::Open(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_size, uint64_t file_number,
                         std::unique_ptr<TableReader>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s =
      file->Read(file_size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) {
    return s;
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  auto reader = std::unique_ptr<TableReader>(
      new TableReader(options, std::move(file), file_number));

  // Index block: pinned fence pointers.
  BlockContents index_contents;
  s = ReadBlock(reader->file_.get(), footer.index_handle(),
                options.verify_checksums, &index_contents);
  if (!s.ok()) {
    return s;
  }
  reader->index_block_ = std::make_unique<Block>(std::move(index_contents.data));

  // Metaindex: locate filter and properties.
  BlockContents metaindex_contents;
  s = ReadBlock(reader->file_.get(), footer.metaindex_handle(),
                options.verify_checksums, &metaindex_contents);
  if (!s.ok()) {
    return s;
  }
  Block metaindex_block(std::move(metaindex_contents.data));
  auto meta_iter = metaindex_block.NewIterator(BytewiseComparator());

  if (options.filter_policy != nullptr) {
    std::string filter_key =
        std::string("filter.") + options.filter_policy->Name();
    meta_iter->Seek(filter_key);
    if (meta_iter->Valid() && meta_iter->key() == Slice(filter_key)) {
      Slice handle_value = meta_iter->value();
      BlockHandle filter_handle;
      if (filter_handle.DecodeFrom(&handle_value).ok()) {
        BlockContents filter_contents;
        s = ReadBlock(reader->file_.get(), filter_handle,
                      options.verify_checksums, &filter_contents);
        if (!s.ok()) {
          return s;
        }
        reader->filter_data_ = std::move(filter_contents.data);
        reader->has_filter_ = true;
      }
    }
  }

  meta_iter->Seek("lsmlab.properties");
  if (meta_iter->Valid() && meta_iter->key() == Slice("lsmlab.properties")) {
    Slice handle_value = meta_iter->value();
    BlockHandle props_handle;
    if (props_handle.DecodeFrom(&handle_value).ok()) {
      BlockContents props_contents;
      s = ReadBlock(reader->file_.get(), props_handle,
                    options.verify_checksums, &props_contents);
      if (!s.ok()) {
        return s;
      }
      s = reader->properties_.DecodeFrom(props_contents.data);
      if (!s.ok()) {
        return s;
      }
    }
  }

  *table = std::move(reader);
  return Status::OK();
}

bool TableReader::KeyDefinitelyAbsent(const Slice& user_key) {
  if (!has_filter_ || options_.filter_policy == nullptr) {
    return false;
  }
  if (options_.statistics != nullptr) {
    options_.statistics->filter_checks.fetch_add(1, std::memory_order_relaxed);
  }
  return !options_.filter_policy->KeyMayMatch(user_key, filter_data_);
}

std::shared_ptr<const Block> TableReader::GetDataBlock(
    const Slice& handle_encoding, const ReadOptions& read_options, Status* s) {
  Slice input = handle_encoding;
  BlockHandle handle;
  *s = handle.DecodeFrom(&input);
  if (!s->ok()) {
    return nullptr;
  }

  // Cache key: file number + block offset.
  char cache_key[16];
  EncodeFixed64(cache_key, file_number_);
  EncodeFixed64(cache_key + 8, handle.offset());
  Slice key(cache_key, sizeof(cache_key));

  if (options_.block_cache != nullptr) {
    auto cached = options_.block_cache->Lookup(key);
    if (cached != nullptr) {
      return std::static_pointer_cast<const Block>(cached);
    }
  }

  BlockContents contents;
  // Table-level paranoia (Options::verify_checksums, plumbed through
  // TableReaderOptions) or per-read opt-in both force verification.
  *s = ReadBlock(
      file_.get(), handle,
      options_.verify_checksums || read_options.verify_checksums, &contents);
  if (!s->ok()) {
    return nullptr;
  }
  auto block = std::make_shared<const Block>(std::move(contents.data));
  if (options_.block_cache != nullptr && read_options.fill_cache) {
    options_.block_cache->Insert(key, block, block->size());
  }
  return block;
}

Status TableReader::InternalGet(const ReadOptions& read_options,
                                const Slice& internal_key, bool* found_entry,
                                std::string* entry_key,
                                std::string* entry_value) {
  *found_entry = false;

  auto index_iter = index_block_->NewIterator(options_.comparator);
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) {
    return index_iter->status();
  }

  Status s;
  auto block = GetDataBlock(index_iter->value(), read_options, &s);
  if (!s.ok()) {
    return s;
  }
  auto block_iter = block->NewIterator(options_.comparator);
  block_iter->Seek(internal_key);
  if (block_iter->Valid()) {
    Slice found_key = block_iter->key();
    if (options_.comparator->user_comparator()->Compare(
            ExtractUserKey(found_key), ExtractUserKey(internal_key)) == 0) {
      *found_entry = true;
      entry_key->assign(found_key.data(), found_key.size());
      Slice v = block_iter->value();
      entry_value->assign(v.data(), v.size());
    }
  }
  return block_iter->status();
}

/// Classic two-level iteration: an index iterator yields block handles; a
/// data iterator walks the current block.
class TableReader::TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(TableReader* table, ReadOptions read_options)
      : table_(table),
        read_options_(read_options),
        index_iter_(
            table->index_block_->NewIterator(table->options_.comparator)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToFirst();
    }
    SkipEmptyDataBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->Seek(target);
    }
    SkipEmptyDataBlocksForward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) {
      return index_iter_->status();
    }
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      data_block_.reset();
      return;
    }
    Status s;
    data_block_ = table_->GetDataBlock(index_iter_->value(), read_options_, &s);
    if (!s.ok()) {
      status_ = s;
      data_iter_.reset();
      data_block_.reset();
      return;
    }
    data_iter_ = data_block_->NewIterator(table_->options_.comparator);
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToFirst();
      }
    }
  }

  TableReader* const table_;
  const ReadOptions read_options_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<const Block> data_block_;  // Keeps the block alive.
  std::unique_ptr<Iterator> data_iter_;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator(
    const ReadOptions& read_options) {
  return std::make_unique<TwoLevelIterator>(this, read_options);
}

void TableReader::WarmCache() {
  if (options_.block_cache == nullptr) {
    return;
  }
  auto index_iter = index_block_->NewIterator(options_.comparator);
  ReadOptions warm_options;  // fill_cache defaults on.
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Status s;
    GetDataBlock(index_iter->value(), warm_options, &s);
    if (!s.ok()) {
      return;
    }
  }
}

}  // namespace lsmlab
