#include "table/table_reader.h"

#include <algorithm>
#include <cassert>

#include "io/readahead_file.h"
#include "util/coding.h"

namespace lsmlab {

TableReader::TableReader(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_number)
    : options_(options), file_(std::move(file)), file_number_(file_number) {}

TableReader::~TableReader() {
  delete fence_index_block_.load(std::memory_order_acquire);
}

Status TableReader::Open(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_size, uint64_t file_number,
                         std::unique_ptr<TableReader>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s =
      file->Read(file_size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) {
    return s;
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  auto reader = std::unique_ptr<TableReader>(
      new TableReader(options, std::move(file), file_number));
  reader->fence_index_handle_ = footer.index_handle();

  // Metaindex: locate filter, properties, and the optional learned index.
  BlockContents metaindex_contents;
  s = ReadBlock(reader->file_.get(), footer.metaindex_handle(),
                options.verify_checksums, &metaindex_contents);
  if (!s.ok()) {
    return s;
  }
  Block metaindex_block(std::move(metaindex_contents.data));
  auto meta_iter = metaindex_block.NewIterator(BytewiseComparator());

  if (options.filter_policy != nullptr) {
    std::string filter_key =
        std::string("filter.") + options.filter_policy->Name();
    meta_iter->Seek(filter_key);
    if (meta_iter->Valid() && meta_iter->key() == Slice(filter_key)) {
      Slice handle_value = meta_iter->value();
      BlockHandle filter_handle;
      if (filter_handle.DecodeFrom(&handle_value).ok()) {
        BlockContents filter_contents;
        s = ReadBlock(reader->file_.get(), filter_handle,
                      options.verify_checksums, &filter_contents);
        if (!s.ok()) {
          return s;
        }
        reader->filter_data_ = std::move(filter_contents.data);
        reader->has_filter_ = true;
      }
    }
  }

  meta_iter->Seek("lsmlab.properties");
  if (meta_iter->Valid() && meta_iter->key() == Slice("lsmlab.properties")) {
    Slice handle_value = meta_iter->value();
    BlockHandle props_handle;
    if (props_handle.DecodeFrom(&handle_value).ok()) {
      BlockContents props_contents;
      s = ReadBlock(reader->file_.get(), props_handle,
                    options.verify_checksums, &props_contents);
      if (!s.ok()) {
        return s;
      }
      s = reader->properties_.DecodeFrom(props_contents.data);
      if (!s.ok()) {
        return s;
      }
    }
  }

  // Index: a table carrying a learned-index meta block pins only the model;
  // tables without one pin the classic fence block. A malformed learned
  // block fails the open — a reader must never silently downgrade a table
  // that claims a learned index (that would mask corruption).
  bool learned = false;
  meta_iter->Seek("lsmlab.learned_index");
  if (meta_iter->Valid() && meta_iter->key() == Slice("lsmlab.learned_index")) {
    Slice handle_value = meta_iter->value();
    BlockHandle learned_handle;
    s = learned_handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      return s;
    }
    BlockContents learned_contents;
    s = ReadBlock(reader->file_.get(), learned_handle,
                  options.verify_checksums, &learned_contents);
    if (!s.ok()) {
      return s;
    }
    LearnedIndexModel model;
    s = LearnedIndexModel::DecodeFrom(learned_contents.data, &model);
    if (!s.ok()) {
      return s;
    }
    if (options.statistics != nullptr) {
      options.statistics->index_bytes_loaded.fetch_add(
          learned_contents.data.size(), std::memory_order_relaxed);
    }
    // The private-base upcast is only accessible in TableReader's scope, so
    // it cannot happen inside make_unique.
    FenceBlockProvider* provider = reader.get();
    reader->index_reader_ = std::make_unique<LearnedIndexReader>(
        std::move(model), options.comparator, options.statistics, provider);
    learned = true;
  }
  if (!learned) {
    BlockContents index_contents;
    s = ReadBlock(reader->file_.get(), footer.index_handle(),
                  options.verify_checksums, &index_contents);
    if (!s.ok()) {
      return s;
    }
    if (options.statistics != nullptr) {
      options.statistics->index_bytes_loaded.fetch_add(
          index_contents.data.size(), std::memory_order_relaxed);
    }
    reader->index_reader_ = std::make_unique<BinarySearchIndexReader>(
        std::make_unique<Block>(std::move(index_contents.data)),
        options.comparator);
  }

  *table = std::move(reader);
  return Status::OK();
}

Status TableReader::GetFenceIndexBlock(const Block** block) {
  const Block* loaded = fence_index_block_.load(std::memory_order_acquire);
  if (loaded != nullptr) {
    *block = loaded;
    return Status::OK();
  }
  BlockContents contents;
  Status s = ReadBlock(file_.get(), fence_index_handle_,
                       options_.verify_checksums, &contents);
  if (!s.ok()) {
    return s;
  }
  const Block* fresh = new Block(std::move(contents.data));
  const Block* expected = nullptr;
  if (fence_index_block_.compare_exchange_strong(expected, fresh,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
    if (options_.statistics != nullptr) {
      options_.statistics->index_bytes_loaded.fetch_add(
          fresh->size(), std::memory_order_relaxed);
    }
    *block = fresh;
  } else {
    delete fresh;  // A concurrent fallback won the publish race.
    *block = expected;
  }
  return Status::OK();
}

size_t TableReader::IndexMemoryUsage() const {
  size_t total = index_reader_->MemoryUsage();
  const Block* fence = fence_index_block_.load(std::memory_order_acquire);
  if (fence != nullptr) {
    total += fence->size();
  }
  return total;
}

bool TableReader::KeyDefinitelyAbsent(const Slice& user_key) {
  if (!has_filter_ || options_.filter_policy == nullptr) {
    return false;
  }
  if (options_.statistics != nullptr) {
    options_.statistics->filter_checks.fetch_add(1, std::memory_order_relaxed);
  }
  return !options_.filter_policy->KeyMayMatch(user_key, filter_data_);
}

namespace {

void MakeBlockCacheKey(uint64_t file_number, uint64_t offset, char* buf) {
  EncodeFixed64(buf, file_number);
  EncodeFixed64(buf + 8, offset);
}

}  // namespace

std::shared_ptr<const Block> TableReader::GetDataBlock(
    const BlockHandle& handle, const ReadOptions& read_options, Status* s) {
  return FetchDataBlock(handle, MakeFetchContext(read_options), file_.get(),
                        nullptr, s);
}

std::shared_ptr<const Block> TableReader::FetchDataBlock(
    const BlockHandle& handle, const BlockFetchContext& ctx,
    const RandomAccessFile* file, std::string* scratch, Status* s) {
  *s = Status::OK();

  // Cache key: file number + block offset.
  char cache_key[16];
  MakeBlockCacheKey(file_number_, handle.offset(), cache_key);
  Slice key(cache_key, sizeof(cache_key));

  if (options_.block_cache != nullptr) {
    auto cached = options_.block_cache->Lookup(key);
    if (cached != nullptr) {
      return std::static_pointer_cast<const Block>(cached);
    }
  }

  BlockContents contents;
  *s = ReadBlock(file, handle, ctx.verify_checksums, &contents, scratch);
  if (!s->ok()) {
    return nullptr;
  }
  auto block = std::make_shared<const Block>(std::move(contents.data));
  if (ctx.fill_cache) {
    options_.block_cache->Insert(key, block, block->size());
  }
  return block;
}

bool TableReader::LocateDataBlock(const Slice& internal_key,
                                  BlockHandle* handle, Status* s) {
  return index_reader_->Locate(internal_key, handle, s);
}

std::shared_ptr<const Block> TableReader::LookupCachedBlock(uint64_t offset) {
  if (options_.block_cache == nullptr) {
    return nullptr;
  }
  char cache_key[16];
  MakeBlockCacheKey(file_number_, offset, cache_key);
  auto cached = options_.block_cache->Lookup(Slice(cache_key, 16));
  return std::static_pointer_cast<const Block>(cached);
}

Status TableReader::FinishBatchedBlockRead(
    const BlockFetchContext& ctx, const BlockHandle& handle,
    const Slice& contents, std::shared_ptr<const Block>* block) {
  block->reset();
  size_t n = static_cast<size_t>(handle.size());
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  Status s = VerifyBlockTrailer(contents.data(), n, ctx.verify_checksums);
  if (!s.ok()) {
    return s;
  }
  auto built =
      std::make_shared<const Block>(std::string(contents.data(), n));
  if (ctx.fill_cache) {
    char cache_key[16];
    MakeBlockCacheKey(file_number_, handle.offset(), cache_key);
    options_.block_cache->Insert(Slice(cache_key, 16), built, built->size());
  }
  *block = std::move(built);
  return Status::OK();
}

Status TableReader::SearchBlock(const Block& block, const Slice& internal_key,
                                bool* found_entry, std::string* entry_key,
                                std::string* entry_value) {
  *found_entry = false;
  auto block_iter = block.NewIterator(options_.comparator);
  block_iter->Seek(internal_key);
  if (block_iter->Valid()) {
    Slice found_key = block_iter->key();
    if (options_.comparator->user_comparator()->Compare(
            ExtractUserKey(found_key), ExtractUserKey(internal_key)) == 0) {
      *found_entry = true;
      entry_key->assign(found_key.data(), found_key.size());
      Slice v = block_iter->value();
      entry_value->assign(v.data(), v.size());
    }
  }
  return block_iter->status();
}

Status TableReader::InternalGet(const ReadOptions& read_options,
                                const Slice& internal_key, bool* found_entry,
                                std::string* entry_key,
                                std::string* entry_value) {
  *found_entry = false;

  BlockHandle handle;
  Status s;
  if (!index_reader_->Locate(internal_key, &handle, &s)) {
    return s;
  }

  auto block = GetDataBlock(handle, read_options, &s);
  if (!s.ok()) {
    return s;
  }
  return SearchBlock(*block, internal_key, found_entry, entry_key,
                     entry_value);
}

/// Classic two-level iteration: an index iterator yields block handles; a
/// data iterator walks the current block. The index iterator is whatever
/// the table's IndexReader provides — handles only, never index keys.
class TableReader::TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(TableReader* table, ReadOptions read_options)
      : table_(table),
        read_options_(read_options),
        ctx_(table->MakeFetchContext(read_options)),
        index_iter_(table->index_reader_->NewIterator()) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToFirst();
    }
    SkipEmptyDataBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->Seek(target);
    }
    SkipEmptyDataBlocksForward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) {
      return index_iter_->status();
    }
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      data_block_.reset();
      return;
    }
    Status s;
    data_block_ = table_->FetchDataBlock(index_iter_->handle(), ctx_,
                                         ReadFile(), &block_scratch_, &s);
    if (!s.ok()) {
      status_ = s;
      data_iter_.reset();
      data_block_.reset();
      return;
    }
    data_iter_ = data_block_->NewIterator(table_->options_.comparator);
  }

  /// The file block misses read from: the raw table file, or (when the read
  /// asks for readahead) a per-iterator prefetch wrapper. Fully cached
  /// iterations never reach this file, so readahead costs them nothing
  /// beyond this small idle object.
  const RandomAccessFile* ReadFile() {
    if (read_options_.readahead_bytes == 0) {
      return table_->file_.get();
    }
    if (readahead_ == nullptr) {
      size_t max = read_options_.readahead_bytes;
      size_t initial = std::min<size_t>(16 << 10, max);
      Statistics* stats = table_->options_.statistics;
      readahead_ = std::make_unique<ReadaheadRandomAccessFile>(
          table_->file_.get(), initial, max,
          stats != nullptr ? &stats->readahead_hits : nullptr,
          stats != nullptr ? &stats->readahead_misses : nullptr);
    }
    return readahead_.get();
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToFirst();
      }
    }
  }

  TableReader* const table_;
  const ReadOptions read_options_;
  const BlockFetchContext ctx_;  // Fetch decision taken once per iterator.
  std::unique_ptr<IndexIterator> index_iter_;
  std::unique_ptr<ReadaheadRandomAccessFile> readahead_;  // Lazy.
  std::string block_scratch_;  // Reused across block reads (no per-block alloc).
  std::shared_ptr<const Block> data_block_;  // Keeps the block alive.
  std::unique_ptr<Iterator> data_iter_;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator(
    const ReadOptions& read_options) {
  return std::make_unique<TwoLevelIterator>(this, read_options);
}

void TableReader::WarmCache() {
  if (options_.block_cache == nullptr) {
    return;
  }
  auto index_iter = index_reader_->NewIterator();
  ReadOptions warm_options;  // fill_cache defaults on.
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Status s;
    GetDataBlock(index_iter->handle(), warm_options, &s);
    if (!s.ok()) {
      return;
    }
  }
}

}  // namespace lsmlab
