#ifndef LSMLAB_TABLE_TABLE_READER_H_
#define LSMLAB_TABLE_TABLE_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/lru_cache.h"
#include "db/dbformat.h"
#include "db/statistics.h"
#include "filter/filter_policy.h"
#include "io/env.h"
#include "table/block.h"
#include "table/format.h"
#include "table/index_reader.h"
#include "table/iterator.h"
#include "table/table_properties.h"
#include "util/options.h"
#include "util/status.h"

namespace lsmlab {

/// Dependencies a reader needs; shared across all tables of a DB.
struct TableReaderOptions {
  const InternalKeyComparator* comparator = nullptr;
  std::shared_ptr<const FilterPolicy> filter_policy;
  /// Shared block cache; nullptr disables caching.
  LruCache* block_cache = nullptr;
  /// Shared statistics sink; nullptr disables counting.
  Statistics* statistics = nullptr;
  bool verify_checksums = false;
};

/// Read side of an SSTable. The per-table index and the per-run filter stay
/// pinned in memory, matching tutorial §2.1.3; data blocks are fetched on
/// demand through the block cache. The index is pluggable (ROADMAP item 4):
/// classic binary-searched fence pointers, or — when the table carries a
/// learned-index meta block — a PLR model that pins an order-of-magnitude
/// fewer bytes and loads the fence block lazily, only on digest-tie
/// fallbacks.
class TableReader : private FenceBlockProvider {
 public:
  /// Opens the table in `file` of `file_size` bytes. `file_number` both
  /// names cache entries and identifies the table in stats.
  static Status Open(const TableReaderOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, uint64_t file_number,
                     std::unique_ptr<TableReader>* table);

  ~TableReader() override;

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  /// Point lookup. If the run may contain `internal_key`'s user key, seeks
  /// to the first entry >= internal_key; `*found_entry` is set when such an
  /// entry exists with a matching user key. The entry's internal key and
  /// value are returned through the out parameters.
  Status InternalGet(const ReadOptions& read_options,
                     const Slice& internal_key, bool* found_entry,
                     std::string* entry_key, std::string* entry_value);

  /// True if the per-run filter rules out `user_key` (saving all I/O for
  /// this run). Always false (i.e. "may match") when no filter is present.
  bool KeyDefinitelyAbsent(const Slice& user_key);

  /// Iterator over the full run.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& read_options);

  const TableProperties& properties() const { return properties_; }
  uint64_t file_number() const { return file_number_; }
  bool has_filter() const { return has_filter_; }
  /// The index structure this table was opened with (learned when the file
  /// carries a learned-index meta block, fence pointers otherwise).
  IndexType index_type() const { return index_reader_->kind(); }
  /// Index bytes currently pinned by this reader (model or fence block,
  /// plus a lazily-loaded fence block after a learned fallback).
  size_t IndexMemoryUsage() const;

  /// Loads every data block into the block cache (Leaper-style re-warm).
  void WarmCache();

  // --- Batched-read building blocks (DESIGN.md, "Batched I/O") -------------
  // DB::MultiGet uses these to collect each key's candidate data-block read,
  // issue all of them as one Env::MultiRead submission, and finish the
  // lookups against the completed buffers.

  /// The per-batch fetch decision, taken once instead of re-derived from
  /// ReadOptions on every block (satellite of ISSUE 6): whether to verify
  /// trailers and whether completed blocks enter the cache.
  struct BlockFetchContext {
    bool verify_checksums = false;
    bool fill_cache = false;
  };
  BlockFetchContext MakeFetchContext(const ReadOptions& read_options) const {
    return BlockFetchContext{
        options_.verify_checksums || read_options.verify_checksums,
        read_options.fill_cache && options_.block_cache != nullptr};
  }

  /// Resolves, via the pinned index (fence or learned — the batched
  /// MultiGet path dispatches through the same IndexReader), the data block
  /// that may contain `internal_key`. Returns false when the index places
  /// the key past the last block (no candidate; *s stays OK unless the
  /// index itself erred).
  bool LocateDataBlock(const Slice& internal_key, BlockHandle* handle,
                       Status* s);

  /// Cache-only lookup for the data block at `offset`; nullptr on miss.
  std::shared_ptr<const Block> LookupCachedBlock(uint64_t offset);

  /// Completes one batched block read: `contents` is the raw
  /// handle.size() + kBlockTrailerSize bytes returned by MultiRead for
  /// `handle`. Verifies the trailer per `ctx`, materializes the Block, and
  /// inserts it into the cache when ctx.fill_cache.
  Status FinishBatchedBlockRead(const BlockFetchContext& ctx,
                                const BlockHandle& handle,
                                const Slice& contents,
                                std::shared_ptr<const Block>* block);

  /// Seeks `block` for `internal_key` with InternalGet's exact match
  /// semantics (first entry >= internal_key whose user key matches).
  Status SearchBlock(const Block& block, const Slice& internal_key,
                     bool* found_entry, std::string* entry_key,
                     std::string* entry_value);

  /// The underlying table file; ReadRequests against this reader's blocks
  /// target it.
  RandomAccessFile* file() const { return file_.get(); }

 private:
  TableReader(const TableReaderOptions& options,
              std::unique_ptr<RandomAccessFile> file, uint64_t file_number);

  /// Fetches (via cache if configured) the data block at `handle`,
  /// honouring the read's fill_cache and verify_checksums settings.
  std::shared_ptr<const Block> GetDataBlock(const BlockHandle& handle,
                                            const ReadOptions& read_options,
                                            Status* s);

  /// Core fetch: cache lookup, then — on miss — a read through `file`
  /// (the table file, or an iterator's readahead wrapper) using the
  /// caller's reusable `scratch` buffer (nullable).
  std::shared_ptr<const Block> FetchDataBlock(const BlockHandle& handle,
                                              const BlockFetchContext& ctx,
                                              const RandomAccessFile* file,
                                              std::string* scratch, Status* s);

  /// FenceBlockProvider: lazily loads and pins the classic fence block for
  /// a learned table's fallback path. Lock-free (CAS publish), so no lock
  /// is ever held across the I/O.
  Status GetFenceIndexBlock(const Block** block) override;

  class TwoLevelIterator;

  TableReaderOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_;
  std::unique_ptr<IndexReader> index_reader_;
  /// Fence-block handle from the footer; for learned tables the block
  /// itself is loaded on first fallback and published here.
  BlockHandle fence_index_handle_;
  std::atomic<const Block*> fence_index_block_{nullptr};
  std::string filter_data_;
  bool has_filter_ = false;
  TableProperties properties_;

  // Cached ReadOptions defaults used by WarmCache.
  friend class TableCache;
};

}  // namespace lsmlab

#endif  // LSMLAB_TABLE_TABLE_READER_H_
