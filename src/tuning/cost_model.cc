#include "tuning/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tuning/monkey.h"

namespace lsmlab {

std::string LsmDesign::Label() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/T=%d/buf=%lluKB/bpk=%.1f%s",
                DataLayoutName(layout), size_ratio,
                static_cast<unsigned long long>(buffer_bytes >> 10),
                filter_bits_per_key, monkey_allocation ? "/monkey" : "");
  return std::string(buf);
}

CostModel::CostModel(const LsmDesign& design, const DataSpec& data)
    : design_(design), data_(data) {
  double total_bytes = static_cast<double>(data.num_entries) *
                       static_cast<double>(data.entry_bytes);
  double ratio = total_bytes / static_cast<double>(design.buffer_bytes);
  double t = static_cast<double>(std::max(2, design.size_ratio));
  // Smallest L with buffer * T^L >= data.
  num_levels_ = std::max(1, static_cast<int>(std::ceil(
                                std::log(std::max(ratio, 1.0)) /
                                std::log(t))));
}

double CostModel::RunsPerLevel(int level) const {
  double t = static_cast<double>(design_.size_ratio);
  bool last = (level == num_levels_ - 1);
  switch (design_.layout) {
    case DataLayout::kLeveling:
      return 1.0;
    case DataLayout::kTiering:
      // On average a tiered level is half full of runs.
      return t / 2.0;
    case DataLayout::kLazyLeveling:
      return last ? 1.0 : t / 2.0;
    case DataLayout::kOneLeveling:
      return level == 0 ? t / 2.0 : 1.0;
  }
  return 1.0;
}

double CostModel::LevelFpr(int level) const {
  if (design_.filter_bits_per_key <= 0) {
    return 1.0;
  }
  if (!design_.monkey_allocation) {
    return BloomFpr(design_.filter_bits_per_key);
  }
  auto bits = MonkeyBitsPerLevel(design_.filter_bits_per_key, num_levels_,
                                 design_.size_ratio);
  return BloomFpr(bits[static_cast<size_t>(
      std::min(level, num_levels_ - 1))]);
}

double CostModel::WriteCost() const {
  // Each entry is re-written once per level it passes through; under
  // leveling it is additionally re-merged ~T/2 times within each level.
  // Divide by entries-per-page: compaction I/O is sequential page I/O.
  double t = static_cast<double>(design_.size_ratio);
  double b = data_.EntriesPerPage();
  double cost = 0;
  for (int level = 0; level < num_levels_; ++level) {
    bool leveled_level = RunsPerLevel(level) == 1.0;
    cost += (leveled_level ? (t + 1.0) / 2.0 : 1.0) / b;
  }
  // Read + write during merges: a merged page is read once and written once.
  return 2.0 * cost;
}

double CostModel::PointLookupCost() const {
  // The target key resides in the largest level with high probability; all
  // shallower runs cost a false-positive probe, the final one a real I/O.
  double cost = 1.0;  // The hit itself.
  for (int level = 0; level < num_levels_ - 1; ++level) {
    cost += RunsPerLevel(level) * LevelFpr(level);
  }
  // Non-last runs of the last level (tiering) also pay FPR probes.
  cost += std::max(0.0, RunsPerLevel(num_levels_ - 1) - 1.0) *
          LevelFpr(num_levels_ - 1);
  return cost;
}

double CostModel::ZeroResultLookupCost() const {
  double cost = 0.0;
  for (int level = 0; level < num_levels_; ++level) {
    cost += RunsPerLevel(level) * LevelFpr(level);
  }
  return cost;
}

double CostModel::ShortScanCost() const {
  // A short scan touches one page of every sorted run: range filters are
  // out of the base model (see E6 for their effect).
  double cost = 0.0;
  for (int level = 0; level < num_levels_; ++level) {
    cost += RunsPerLevel(level);
  }
  return cost;
}

double CostModel::SpaceAmplification() const {
  double t = static_cast<double>(design_.size_ratio);
  switch (design_.layout) {
    case DataLayout::kLeveling:
    case DataLayout::kOneLeveling:
      // Shallower levels hold up to 1/(T-1) of the last level in stale
      // versions.
      return 1.0 / (t - 1.0);
    case DataLayout::kTiering:
      // Every level can hold T versions of the same data.
      return t - 1.0;
    case DataLayout::kLazyLeveling:
      // Tiered intermediates are small; the leveled last level dominates.
      return (t - 1.0) / t + 1.0 / (t - 1.0);
  }
  return 1.0;
}

double CostModel::WorkloadCost(const WorkloadMix& mix) const {
  return mix.writes * WriteCost() + mix.point_reads * PointLookupCost() +
         mix.empty_point_reads * ZeroResultLookupCost() +
         mix.short_scans * ShortScanCost();
}

}  // namespace lsmlab
