#ifndef LSMLAB_TUNING_COST_MODEL_H_
#define LSMLAB_TUNING_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "util/options.h"

namespace lsmlab {

/// A point in the LSM design space, in the analytical model's terms
/// (tutorial §2.3.1: Monkey/Dostoevsky-style closed forms).
struct LsmDesign {
  DataLayout layout = DataLayout::kLeveling;
  int size_ratio = 10;                 // T.
  uint64_t buffer_bytes = 4 << 20;     // Memtable budget.
  double filter_bits_per_key = 10.0;   // 0 disables filters.
  bool monkey_allocation = false;

  std::string Label() const;
};

/// Workload composition for the model: fractions must sum to 1.
struct WorkloadMix {
  double writes = 0.25;
  double point_reads = 0.25;       // Lookups of existing keys.
  double empty_point_reads = 0.25; // Zero-result lookups.
  double short_scans = 0.25;

  WorkloadMix() = default;
  WorkloadMix(double w, double r, double e, double s)
      : writes(w), point_reads(r), empty_point_reads(e), short_scans(s) {}
};

/// Data characteristics the model needs.
struct DataSpec {
  uint64_t num_entries = 10'000'000;
  uint64_t entry_bytes = 128;
  uint64_t page_bytes = 4096;

  double EntriesPerPage() const {
    return static_cast<double>(page_bytes) /
           static_cast<double>(entry_bytes);
  }
};

/// Closed-form I/O cost model of an LSM-tree (tutorial §2.3.1). Costs are
/// expected disk I/Os (pages) per operation; smaller is better. The model
/// intentionally mirrors the Monkey/Dostoevsky analyses:
///   - leveling: write O(T·L/B), zero-result read O(L·fpr), read O(1 + ...)
///   - tiering:  write O(L/B),   zero-result read O(T·L·fpr), ...
class CostModel {
 public:
  CostModel(const LsmDesign& design, const DataSpec& data);

  /// Number of disk levels implied by buffer, T, and data volume.
  int NumLevels() const { return num_levels_; }

  /// Amortized page I/Os per inserted entry (write amplification / B).
  double WriteCost() const;
  /// Expected I/Os for a lookup of an existing key (found at a random run).
  double PointLookupCost() const;
  /// Expected I/Os for a lookup of an absent key (pure filter misses).
  double ZeroResultLookupCost() const;
  /// Expected I/Os for a short scan touching one page per relevant run.
  double ShortScanCost() const;
  /// Space amplification: dead bytes / live bytes (worst-case model).
  double SpaceAmplification() const;

  /// Weighted cost of one average operation under `mix`.
  double WorkloadCost(const WorkloadMix& mix) const;

 private:
  double RunsPerLevel(int level) const;
  /// False-positive rate of the filter at `level` under the allocation.
  double LevelFpr(int level) const;

  LsmDesign design_;
  DataSpec data_;
  int num_levels_;
};

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_COST_MODEL_H_
