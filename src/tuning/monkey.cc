#include "tuning/monkey.h"

#include <cmath>

namespace lsmlab {

namespace {
constexpr double kLn2 = 0.6931471805599453;
// bits/key -> FPR: exp(-bits * ln(2)^2); FPR -> bits: -ln(FPR)/ln(2)^2.
constexpr double kLn2Sq = kLn2 * kLn2;
}  // namespace

double BloomFpr(double bits_per_key) {
  if (bits_per_key <= 0) {
    return 1.0;
  }
  return std::exp(-bits_per_key * kLn2Sq);
}

std::vector<double> MonkeyBitsPerLevel(double avg_bits_per_key,
                                       int num_levels, int size_ratio) {
  std::vector<double> bits(static_cast<size_t>(num_levels), 0.0);
  if (num_levels <= 0) {
    return bits;
  }
  if (avg_bits_per_key <= 0.0) {
    return bits;
  }
  if (size_ratio < 2) {
    size_ratio = 2;
  }

  // Level i holds n_i entries with n_i = n_{i-1} * T; normalize weights so
  // sum(w_i) = 1 with w_i proportional to T^i.
  std::vector<double> weight(static_cast<size_t>(num_levels));
  double total_w = 0;
  double w = 1.0;
  for (int i = 0; i < num_levels; ++i) {
    weight[static_cast<size_t>(i)] = w;
    total_w += w;
    w *= static_cast<double>(size_ratio);
  }
  for (auto& x : weight) {
    x /= total_w;
  }

  // Monkey's optimum: FPR_i = min(1, c * T^i). Binary-search the scale c so
  // that the weighted bits match the budget. Total bits decrease
  // monotonically in c.
  auto bits_for = [&](double c) {
    double total = 0;
    double mult = 1.0;
    for (int i = 0; i < num_levels; ++i) {
      double fpr = c * mult;
      if (fpr < 1.0) {
        total += weight[static_cast<size_t>(i)] * (-std::log(fpr) / kLn2Sq);
      }
      mult *= static_cast<double>(size_ratio);
    }
    return total;
  };

  double lo = 1e-30, hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = std::sqrt(lo * hi);  // Geometric mid: c spans many decades.
    if (bits_for(mid) > avg_bits_per_key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double c = std::sqrt(lo * hi);

  double mult = 1.0;
  for (int i = 0; i < num_levels; ++i) {
    double fpr = c * mult;
    bits[static_cast<size_t>(i)] =
        fpr >= 1.0 ? 0.0 : -std::log(fpr) / kLn2Sq;
    mult *= static_cast<double>(size_ratio);
  }
  return bits;
}

double ExpectedFalsePositiveIos(const std::vector<double>& bits_per_level) {
  double total = 0;
  for (double bits : bits_per_level) {
    total += BloomFpr(bits);
  }
  return total;
}

}  // namespace lsmlab
