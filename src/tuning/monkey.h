#ifndef LSMLAB_TUNING_MONKEY_H_
#define LSMLAB_TUNING_MONKEY_H_

#include <vector>

namespace lsmlab {

/// Monkey filter-memory allocation (Dayan et al., tutorial §2.1.3).
///
/// With a fixed filter-memory budget, uniform bits-per-key is suboptimal:
/// deeper levels hold exponentially more entries, so their filters consume
/// almost all memory while every level contributes equally (one run ~ one
/// wasted I/O) to the expected lookup cost. Monkey instead equalizes
/// *marginal* benefit, which yields false-positive rates increasing
/// geometrically with depth — shallow levels get more bits per key, the
/// deepest get fewer.
///
/// Returns bits-per-key for levels 0..num_levels-1 such that the *weighted
/// average* (by level entry count, which grows by `size_ratio` per level)
/// equals `avg_bits_per_key`. All outputs are >= 0; a level whose optimal
/// FPR reaches 1.0 gets 0 bits (filter disabled there).
std::vector<double> MonkeyBitsPerLevel(double avg_bits_per_key,
                                       int num_levels, int size_ratio);

/// Expected false-positive rate of a Bloom filter with `bits_per_key`.
double BloomFpr(double bits_per_key);

/// Expected sum of per-run false-positive rates for a tree with the given
/// per-level bits — the expected number of superfluous I/Os for a lookup of
/// an absent key (the tutorial's zero-result lookup cost).
double ExpectedFalsePositiveIos(const std::vector<double>& bits_per_level);

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_MONKEY_H_
