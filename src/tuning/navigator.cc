#include "tuning/navigator.h"

#include <algorithm>
#include <cmath>

namespace lsmlab {

namespace {

/// Filter bits per key implied by giving `filter_bytes` to the filters.
double BitsPerKey(uint64_t filter_bytes, uint64_t num_entries) {
  if (num_entries == 0) {
    return 0;
  }
  return static_cast<double>(filter_bytes) * 8.0 /
         static_cast<double>(num_entries);
}

}  // namespace

std::vector<ScoredDesign> EnumerateDesigns(const DesignSpaceSpec& space,
                                           const DataSpec& data,
                                           const WorkloadMix& mix) {
  std::vector<ScoredDesign> results;
  for (DataLayout layout : space.layouts) {
    for (int t = space.min_size_ratio; t <= space.max_size_ratio; ++t) {
      for (double buffer_fraction : space.buffer_fractions) {
        uint64_t buffer = static_cast<uint64_t>(
            static_cast<double>(space.memory_budget_bytes) *
            buffer_fraction);
        buffer = std::max<uint64_t>(buffer, 64 << 10);
        uint64_t filter_bytes =
            space.memory_budget_bytes > buffer
                ? space.memory_budget_bytes - buffer
                : 0;
        for (bool monkey : space.consider_monkey
                               ? std::vector<bool>{false, true}
                               : std::vector<bool>{false}) {
          LsmDesign design;
          design.layout = layout;
          design.size_ratio = t;
          design.buffer_bytes = buffer;
          design.filter_bits_per_key =
              BitsPerKey(filter_bytes, data.num_entries);
          design.monkey_allocation = monkey;
          CostModel model(design, data);
          results.push_back({design, model.WorkloadCost(mix)});
        }
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const ScoredDesign& a, const ScoredDesign& b) {
              return a.cost < b.cost;
            });
  return results;
}

LsmDesign NominalTuning(const DesignSpaceSpec& space, const DataSpec& data,
                        const WorkloadMix& mix) {
  auto designs = EnumerateDesigns(space, data, mix);
  return designs.front().design;
}

double WorstCaseCost(const LsmDesign& design, const DataSpec& data,
                     const WorkloadMix& expected, double rho) {
  // The cost is linear in the mix, so the worst case over the L1 ball is at
  // a vertex: shift up to rho of mass onto the single most expensive
  // operation type (from the cheapest types first).
  CostModel model(design, data);
  double costs[4] = {model.WriteCost(), model.PointLookupCost(),
                     model.ZeroResultLookupCost(), model.ShortScanCost()};
  double mass[4] = {expected.writes, expected.point_reads,
                    expected.empty_point_reads, expected.short_scans};

  // Move `rho/2` of probability mass from the cheapest ops to the most
  // expensive one (total variation distance rho/2 == L1 distance rho).
  int worst = 0;
  for (int i = 1; i < 4; ++i) {
    if (costs[i] > costs[worst]) {
      worst = i;
    }
  }
  double to_move = rho / 2.0;
  // Take from cheapest first.
  int order[4] = {0, 1, 2, 3};
  std::sort(order, order + 4,
            [&](int a, int b) { return costs[a] < costs[b]; });
  for (int idx = 0; idx < 4 && to_move > 0; ++idx) {
    int i = order[idx];
    if (i == worst) {
      continue;
    }
    double take = std::min(mass[i], to_move);
    mass[i] -= take;
    mass[worst] += take;
    to_move -= take;
  }

  double cost = 0;
  for (int i = 0; i < 4; ++i) {
    cost += mass[i] * costs[i];
  }
  return cost;
}

LsmDesign RobustTuning(const DesignSpaceSpec& space, const DataSpec& data,
                       const WorkloadMix& expected, double rho) {
  LsmDesign best;
  double best_cost = -1;
  for (DataLayout layout : space.layouts) {
    for (int t = space.min_size_ratio; t <= space.max_size_ratio; ++t) {
      for (double buffer_fraction : space.buffer_fractions) {
        uint64_t buffer = std::max<uint64_t>(
            static_cast<uint64_t>(
                static_cast<double>(space.memory_budget_bytes) *
                buffer_fraction),
            64 << 10);
        uint64_t filter_bytes =
            space.memory_budget_bytes > buffer
                ? space.memory_budget_bytes - buffer
                : 0;
        for (bool monkey : space.consider_monkey
                               ? std::vector<bool>{false, true}
                               : std::vector<bool>{false}) {
          LsmDesign design;
          design.layout = layout;
          design.size_ratio = t;
          design.buffer_bytes = buffer;
          design.filter_bits_per_key =
              static_cast<double>(filter_bytes) * 8.0 /
              static_cast<double>(data.num_entries);
          design.monkey_allocation = monkey;
          double cost = WorstCaseCost(design, data, expected, rho);
          if (best_cost < 0 || cost < best_cost) {
            best_cost = cost;
            best = design;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace lsmlab
