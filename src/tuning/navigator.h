#ifndef LSMLAB_TUNING_NAVIGATOR_H_
#define LSMLAB_TUNING_NAVIGATOR_H_

#include <cstdint>
#include <vector>

#include "tuning/cost_model.h"

namespace lsmlab {

/// Bounds of the design space the navigator enumerates.
struct DesignSpaceSpec {
  std::vector<DataLayout> layouts = {
      DataLayout::kLeveling, DataLayout::kTiering, DataLayout::kLazyLeveling};
  int min_size_ratio = 2;
  int max_size_ratio = 16;
  /// Total memory to split between buffer and filters (bytes).
  uint64_t memory_budget_bytes = 64 << 20;
  /// Buffer fractions of the budget to consider.
  std::vector<double> buffer_fractions = {0.05, 0.1, 0.2, 0.35, 0.5,
                                          0.7,  0.9, 0.99};
  bool consider_monkey = true;
};

/// A scored design point.
struct ScoredDesign {
  LsmDesign design;
  double cost = 0;
};

/// Navigator: exhaustive enumeration of the (layout × T × memory-split ×
/// allocation) space under the cost model, the mechanical core of
/// "navigating the LSM design space" (tutorial §2.3.1). Returns designs
/// sorted by ascending cost.
std::vector<ScoredDesign> EnumerateDesigns(const DesignSpaceSpec& space,
                                           const DataSpec& data,
                                           const WorkloadMix& mix);

/// The minimum-cost design for `mix` ("nominal tuning").
LsmDesign NominalTuning(const DesignSpaceSpec& space, const DataSpec& data,
                        const WorkloadMix& mix);

/// Endure-style robust tuning (tutorial §2.3.2): minimizes the *worst-case*
/// cost over all workload mixes within L1 distance `rho` of the expected
/// mix, rather than the cost at the expected mix itself.
LsmDesign RobustTuning(const DesignSpaceSpec& space, const DataSpec& data,
                       const WorkloadMix& expected, double rho);

/// Worst-case cost of `design` over the rho-neighbourhood of `expected`.
double WorstCaseCost(const LsmDesign& design, const DataSpec& data,
                     const WorkloadMix& expected, double rho);

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_NAVIGATOR_H_
