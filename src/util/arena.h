#ifndef LSMLAB_UTIL_ARENA_H_
#define LSMLAB_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lsmlab {

/// Arena is a bump allocator used by memtables: allocation is a pointer bump,
/// and all memory is released at once when the memtable is dropped after a
/// flush. Not thread-safe for allocation; MemoryUsage() may be read
/// concurrently.
class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to `bytes` bytes of uninitialized memory.
  char* Allocate(size_t bytes);

  /// Like Allocate but the result is aligned for any scalar type.
  char* AllocateAligned(size_t bytes);

  /// Total bytes reserved by the arena (approximate, includes slack).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_ARENA_H_
