#ifndef LSMLAB_UTIL_BACKOFF_H_
#define LSMLAB_UTIL_BACKOFF_H_

#include <cstdint>

namespace lsmlab {

/// Capped exponential backoff schedule for background-error retries:
/// attempt 0 waits `initial_micros`, each further attempt doubles, clamped
/// at `cap_micros`. Pure arithmetic — the caller owns attempt counting and
/// sleeping, so the schedule is trivially testable.
class ExponentialBackoff {
 public:
  ExponentialBackoff(uint64_t initial_micros, uint64_t cap_micros)
      : initial_micros_(initial_micros), cap_micros_(cap_micros) {}

  /// Delay before retry number `attempt` (0-based). Overflow-safe: once the
  /// doubling would exceed the cap (or wrap), the cap is returned.
  uint64_t DelayMicros(int attempt) const {
    if (initial_micros_ == 0) {
      return 0;
    }
    uint64_t delay = initial_micros_;
    for (int i = 0; i < attempt; ++i) {
      if (delay >= cap_micros_ || delay > (UINT64_MAX >> 1)) {
        return cap_micros_;
      }
      delay <<= 1;
    }
    return delay < cap_micros_ ? delay : cap_micros_;
  }

 private:
  const uint64_t initial_micros_;
  const uint64_t cap_micros_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_BACKOFF_H_
