#include "util/clock.h"

#include <chrono>
#include <thread>

namespace lsmlab {

namespace {

class SystemClockImpl : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepForMicros(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Clock* SystemClock() {
  static SystemClockImpl* singleton = new SystemClockImpl;
  return singleton;
}

}  // namespace lsmlab
