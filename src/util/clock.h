#ifndef LSMLAB_UTIL_CLOCK_H_
#define LSMLAB_UTIL_CLOCK_H_

#include <cstdint>
#include <memory>

namespace lsmlab {

/// Clock abstracts time so that TTL-driven behaviour (FADE tombstone ageing,
/// rate limiting) is testable without sleeping.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic time in microseconds.
  virtual uint64_t NowMicros() const = 0;

  /// Blocks the calling thread for `micros` microseconds.
  virtual void SleepForMicros(uint64_t micros) = 0;
};

/// The real wall clock. Singleton; do not delete.
Clock* SystemClock();

/// A manually advanced clock for deterministic tests.
class MockClock : public Clock {
 public:
  explicit MockClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override { return now_; }
  void SleepForMicros(uint64_t micros) override { now_ += micros; }

  void Advance(uint64_t micros) { now_ += micros; }
  void SetMicros(uint64_t micros) { now_ = micros; }

 private:
  uint64_t now_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_CLOCK_H_
