#ifndef LSMLAB_UTIL_CODING_H_
#define LSMLAB_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace lsmlab {

// Little-endian fixed-width encodings plus LEB128-style varints, the
// byte-level vocabulary of every on-disk structure in lsmlab.

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  std::memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  std::memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a varint32 to `dst` (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);
/// Appends a varint64 to `dst` (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint32(len) followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint32 from the front of `input`, advancing it. Returns false
/// on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Parses a fixed32/64 from the front of `input`, advancing it.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Low-level varint32 decoder over [p, limit); returns pointer past the
/// encoded value or nullptr on error.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v);

/// Number of bytes PutVarint32/64 would append.
int VarintLength(uint64_t v);

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_CODING_H_
