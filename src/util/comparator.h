#ifndef LSMLAB_UTIL_COMPARATOR_H_
#define LSMLAB_UTIL_COMPARATOR_H_

#include <string>

#include "util/slice.h"

namespace lsmlab {

/// Comparator defines a total order over user keys. lsmlab ships a
/// bytewise comparator; applications may supply their own (e.g. for
/// integer-encoded keys).
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Three-way comparison: <0 iff a < b, 0 iff a == b, >0 iff a > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// Name used to check on-disk compatibility at DB open.
  virtual const char* Name() const = 0;

  /// If *start < limit, changes *start to a short string in [start,limit).
  /// Used by the table builder to shrink index keys.
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  /// Changes *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// Built-in lexicographic (memcmp) ordering. Singleton; do not delete.
const Comparator* BytewiseComparator();

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_COMPARATOR_H_
