#include "util/crc32c.h"

#include <array>

namespace lsmlab::crc32c {

namespace {

// Table-driven CRC-32C (Castagnoli polynomial 0x82f63b78, reflected).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init, const char* data, size_t n) {
  uint32_t crc = init ^ 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace lsmlab::crc32c
