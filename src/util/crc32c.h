#ifndef LSMLAB_UTIL_CRC32C_H_
#define LSMLAB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lsmlab::crc32c {

/// Returns crc32c(concat(A, data[0,n-1])) where init is crc32c(A). Pass 0 as
/// init to compute the CRC of `data` alone.
uint32_t Extend(uint32_t init, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

constexpr uint32_t kMaskDelta = 0xa282ead8ul;

/// Returns a masked representation of `crc`. Storing raw CRCs of data that
/// itself contains CRCs is error prone; on-disk structures store the mask.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace lsmlab::crc32c

#endif  // LSMLAB_UTIL_CRC32C_H_
