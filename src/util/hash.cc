#include "util/hash.h"

#include <cstring>

namespace lsmlab {

uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  // MurmurHash-inspired mixing, as in LevelDB's Hash().
  const uint32_t m = 0xc6a4a793u;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w;
    std::memcpy(&w, data, sizeof(w));
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  // MurmurHash64A.
  const uint64_t m = 0xc6a4a7935bd1e995ull;
  const int r = 47;
  uint64_t h = seed ^ (n * m);

  const char* p = data;
  const char* end = data + (n / 8) * 8;
  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, sizeof(k));
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }

  switch (n & 7) {
    case 7:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[6])) << 48;
      [[fallthrough]];
    case 6:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[5])) << 40;
      [[fallthrough]];
    case 5:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[4])) << 32;
      [[fallthrough]];
    case 4:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[3])) << 24;
      [[fallthrough]];
    case 3:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[2])) << 16;
      [[fallthrough]];
    case 2:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[1])) << 8;
      [[fallthrough]];
    case 1:
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(p[0]));
      h *= m;
      break;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

}  // namespace lsmlab
