#ifndef LSMLAB_UTIL_HASH_H_
#define LSMLAB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace lsmlab {

/// 32-bit hash of `data`, seeded. Used for Bloom filter probes and cache
/// sharding.
uint32_t Hash32(const char* data, size_t n, uint32_t seed);

/// 64-bit hash (MurmurHash64A). Used for cuckoo fingerprints and hashed
/// memtable bucketing.
uint64_t Hash64(const char* data, size_t n, uint64_t seed);

inline uint32_t HashSlice32(const Slice& s, uint32_t seed = 0xbc9f1d34u) {
  return Hash32(s.data(), s.size(), seed);
}

inline uint64_t HashSlice64(const Slice& s, uint64_t seed = 0x9e3779b97f4a7c15ull) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_HASH_H_
