#include "util/histogram.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace lsmlab {

const std::vector<double>& Histogram::BucketLimits() {
  // Exponential bucket limits: 1, 2, 3, 4, 5, 6, 8, 10, ..., growing ~25%
  // per bucket up to ~1e12.
  static const std::vector<double>* limits = [] {
    auto* v = new std::vector<double>();
    double limit = 1.0;
    while (limit < 1e12) {
      v->push_back(limit);
      double next = limit * 1.25;
      if (next - limit < 1.0) next = limit + 1.0;
      limit = next;
    }
    v->push_back(std::numeric_limits<double>::infinity());
    return v;
  }();
  return *limits;
}

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  min_ = std::numeric_limits<double>::infinity();
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(BucketLimits().size(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = BucketLimits();
  // Binary search for the first bucket limit > value.
  size_t lo = 0, hi = limits.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (limits[mid] > value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo] += 1;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++num_;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::Average() const {
  if (num_ == 0) return 0.0;
  return sum_ / static_cast<double>(num_);
}

double Histogram::StandardDeviation() const {
  if (num_ == 0) return 0.0;
  double n = static_cast<double>(num_);
  double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance > 0 ? std::sqrt(variance) : 0.0;
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0.0;
  const auto& limits = BucketLimits();
  double threshold = static_cast<double>(num_) * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += static_cast<double>(buckets_[b]);
    if (cumulative >= threshold) {
      double left = (b == 0) ? 0.0 : limits[b - 1];
      double right = limits[b];
      if (!std::isfinite(right)) right = max_;
      double left_count = cumulative - static_cast<double>(buckets_[b]);
      double pos = (buckets_[b] == 0)
                       ? 0.0
                       : (threshold - left_count) /
                             static_cast<double>(buckets_[b]);
      double r = left + (right - left) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.2f sd=%.2f min=%.2f p50=%.2f p99=%.2f "
                "p99.9=%.2f max=%.2f",
                static_cast<unsigned long long>(num_), Average(),
                StandardDeviation(), num_ ? min_ : 0.0, Percentile(50),
                Percentile(99), Percentile(99.9), max_);
  return std::string(buf);
}

}  // namespace lsmlab
