#ifndef LSMLAB_UTIL_HISTOGRAM_H_
#define LSMLAB_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsmlab {

/// Histogram accumulates latency-style samples into exponentially sized
/// buckets and answers percentile queries. Used by benches for p50/p99/p999
/// write-stall and lookup latency reporting.
class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  uint64_t num() const { return num_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double Average() const;
  double StandardDeviation() const;
  /// Linear interpolation within the containing bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  std::string ToString() const;

 private:
  static const std::vector<double>& BucketLimits();

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_HISTOGRAM_H_
