#ifndef LSMLAB_UTIL_LOCK_ORDER_H_
#define LSMLAB_UTIL_LOCK_ORDER_H_

#include <cstdint>

namespace lsmlab {

/// The declared lock-order DAG of the whole engine, as one total-orderable
/// rank space. A thread may acquire a mutex only while every mutex it
/// already holds has a *strictly smaller* rank — so the declared hierarchy
/// is acyclic by construction and the runtime validator (util/lock_rank.h)
/// can check every acquisition in O(held locks).
///
/// This is the machine-checked companion of DESIGN.md "Locking discipline"
/// and the single place the full hierarchy is written down. PR 3's Clang
/// `ACQUIRED_BEFORE` annotations still hold for the static pairs they can
/// express (writer_queue_mu_ before mu_); the ranks cover what they cannot:
/// a dynamic array of N ShardEngine lock sets under one facade commit lock,
/// and the shared leaf resources (block cache, table cache, rate limiter,
/// thread pool, statistics) reachable from every shard.
///
///   ShardedDB::commit_mu_                               (kCommitMu)
///     └─ ShardEngine::writer_queue_mu_  [× N shards]    (kWriterQueue)
///          └─ ShardEngine::mu_          [× N shards]    (kEngineMu)
///               ├─ VersionSet::mu_                      (kVersionSet)
///               ├─ VlogManager::mu_                     (kVlog)
///               ├─ CompactionPicker::mu_                (kCompactionPicker)
///               ├─ CompactionJob::shard_mu_             (kCompactionJob)
///               ├─ ShardEngine::read_view_mu_           (kReadView)
///               ├─ TableCache::dirs_mu_                 (kTableCacheDirs)
///               ├─ TableCache::Shard::mu                (kTableCacheShard)
///               ├─ TableHandle::mu                      (kTableHandle)
///               ├─ LruCache::Shard::mu                  (kBlockCacheShard)
///               ├─ RateLimiter::mu_                     (kRateLimiter)
///               ├─ ThreadPool::mu_                      (kThreadPool)
///               └─ Statistics histogram locks           (kStatistics)
///                    └─ Env-wrapper locks               (kIoWrapperEnv)
///                         └─ Env-internal locks         (kIoEnv, kIoLatch)
///                         └─ Logger locks               (kLogger)
///
/// Cross-shard note: the 2PC commit path holds commit_mu_ while visiting
/// the N shards *sequentially* (PrepareWrite / CommitPrepared each acquire
/// and release one shard's writer_queue_mu_/mu_ before the next shard is
/// touched). No thread ever holds two same-rank mutexes at once; the
/// validator treats an equal-rank nested acquisition as a violation, which
/// is exactly the invariant that makes the N-shard topology deadlock-free
/// with unordered shard visits.
enum class LockRank : uint16_t {
  /// Opted out of rank checking (generic/test code, short-lived local
  /// latches). Still participates in the learned acquired-after graph, so
  /// a cycle among unranked mutexes is caught dynamically.
  kUnranked = 0,

  // --- Facade ---------------------------------------------------------
  /// ShardedDB::commit_mu_: serializes cross-shard 2PC commits, snapshot
  /// cuts, and COMMITLOG writes. Outermost lock of the system; explicitly
  /// an I/O-covering lock (the COMMITLOG fsync under it IS the 2PC commit
  /// point, and shard WAL prepare fsyncs happen inside its scope).
  kCommitMu = 100,

  // --- Per-shard engine core ------------------------------------------
  /// ShardEngine::writer_queue_mu_: group-commit queue. Held only for
  /// queue manipulation; never across WAL I/O (the leader protocol is the
  /// WAL's lock).
  kWriterQueue = 200,
  /// ShardEngine::mu_: the per-shard DB mutex. I/O under it is forbidden
  /// except inside the explicitly annotated IoAllowedSection sites (WAL
  /// rotation sync, manifest install — see lock_rank.h).
  kEngineMu = 300,

  // --- Engine-internal leaf locks (acquired under mu_, one at a time) --
  /// VersionSet::mu_: version list + manifest state. Manifest writes
  /// happen under it by documented design (IoAllowedSection inside
  /// VersionSet's manifest I/O methods).
  kVersionSet = 400,
  /// VlogManager::mu_: active value-log file. Value-log appends happen
  /// under it by design (the lock serializes the active file).
  kVlog = 410,
  /// CompactionPicker::mu_: round-robin cursors only.
  kCompactionPicker = 420,
  /// CompactionJob::shard_mu_: subcompaction completion latch.
  kCompactionJob = 430,

  // --- Read-path leaf locks -------------------------------------------
  /// ShardEngine::read_view_mu_: published ReadView pointer swap.
  kReadView = 500,
  /// TableCache::dirs_mu_: directory registration table.
  kTableCacheDirs = 510,
  /// TableCache::Shard::mu: open-reader stripe. Cold-file resolution
  /// deliberately drops this lock around the file open + footer read.
  kTableCacheShard = 520,
  /// TableHandle::mu: per-file reader pin (pointer copy only).
  kTableHandle = 530,
  /// LruCache::Shard::mu: block-cache stripe.
  kBlockCacheShard = 540,

  // --- Shared process-wide resources ----------------------------------
  /// RateLimiter::mu_: token bucket (sleeps under it, no I/O).
  kRateLimiter = 600,
  /// ThreadPool::mu_: work queues.
  kThreadPool = 610,
  /// Statistics histogram locks.
  kStatistics = 620,

  // --- I/O substrate (innermost; held *during* I/O by definition) ------
  /// Env-*wrapper* state locks (FaultInjectionEnv's rule/file tables):
  /// held while calling into the wrapped env, so ordered before kIoEnv.
  kIoWrapperEnv = 690,
  /// Env-internal state locks: MemEnv file table, POSIX env internals.
  kIoEnv = 700,
  /// Completion latches inside batched-I/O backends (posix_env.cc).
  kIoLatch = 710,
  /// Logger serialization (fprintf interleaving).
  kLogger = 720,

  /// Test-only mutexes that want ordering checks without joining the
  /// production hierarchy. Ranked after everything so holding one can
  /// never constrain engine locks.
  kTest = 900,
};

/// True for ranks that must never be held across Env I/O
/// (Append/Sync/Read/MultiRead) — the latency/deadlock class the
/// I/O-under-lock detector aborts on. Ranks held across I/O *by documented
/// design* (commit_mu_, vlog, the I/O substrate itself) return false.
constexpr bool RankForbidsIo(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
    case LockRank::kCommitMu:  // COMMITLOG fsync is the 2PC commit point.
    case LockRank::kVlog:      // Value-log appends serialize on this lock.
    case LockRank::kIoWrapperEnv:
    case LockRank::kIoEnv:
    case LockRank::kIoLatch:
    case LockRank::kLogger:
    case LockRank::kTest:
      return false;
    default:
      return true;
  }
}

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_LOCK_ORDER_H_
