#include "util/lock_rank.h"

#if defined(LSMLAB_LOCK_RANK_CHECKS)

#include <execinfo.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>  // Validator internals; the engine itself uses util/mutex.h.

namespace lsmlab::lock_rank {
namespace {

// ---------------------------------------------------------------------------
// Name registry: one node per distinct mutex *name* (not instance), so all
// N "shard.mu" locks — or all 16 block-cache stripes — are one node in the
// learned graph. Capacity is generous; overflow degrades to unchecked
// rather than aborting a production-shaped run.
// ---------------------------------------------------------------------------

constexpr int kMaxNames = 128;
constexpr int kMaxStackDepth = 24;
constexpr int kMaxHeldLocks = 32;

struct NameEntry {
  std::atomic<const char*> name{nullptr};
  LockRank rank = LockRank::kUnranked;
};

NameEntry g_names[kMaxNames];
std::atomic<int> g_name_count{0};
// Guards registration and the learned-graph inserts (cold paths only).
std::mutex g_registry_mu;

int IdForName(const char* name, LockRank rank) {
  const int count = g_name_count.load(std::memory_order_acquire);
  // Fast path: literal pointer identity.
  for (int i = 0; i < count; ++i) {
    if (g_names[i].name.load(std::memory_order_relaxed) == name) {
      return i;
    }
  }
  std::lock_guard<std::mutex> guard(g_registry_mu);
  const int locked_count = g_name_count.load(std::memory_order_relaxed);
  // Merge duplicate literals from different translation units by content.
  for (int i = 0; i < locked_count; ++i) {
    const char* existing = g_names[i].name.load(std::memory_order_relaxed);
    if (existing == name || std::strcmp(existing, name) == 0) {
      return i;
    }
  }
  if (locked_count >= kMaxNames) {
    return -1;  // Registry full: this mutex goes unchecked.
  }
  g_names[locked_count].rank = rank;
  g_names[locked_count].name.store(name, std::memory_order_relaxed);
  g_name_count.store(locked_count + 1, std::memory_order_release);
  return locked_count;
}

// ---------------------------------------------------------------------------
// Learned acquired-after graph. Edge (from → to) = "a thread held `from`
// while acquiring `to`". Known-edge probing is lock-free (the hot path);
// inserting a new edge — rare, bounded by kMaxNames² — takes g_registry_mu,
// captures the acquisition backtrace, and runs cycle detection.
// ---------------------------------------------------------------------------

constexpr uint32_t kEdgeEmpty = 0xffffffffu;
constexpr int kEdgeTableSize = 8192;  // Power of two, far above edge count.

struct EdgeInfo {
  void* stack[kMaxStackDepth];
  int depth = 0;
};

std::atomic<uint32_t> g_edge_keys[kEdgeTableSize];
EdgeInfo g_edge_info[kEdgeTableSize];
// Adjacency bitsets for cycle detection (row = from, bit = to).
uint64_t g_adjacency[kMaxNames][kMaxNames / 64];

struct EdgeTableInit {
  EdgeTableInit() {
    for (auto& key : g_edge_keys) {
      key.store(kEdgeEmpty, std::memory_order_relaxed);
    }
  }
} g_edge_table_init;

uint32_t EdgeKey(int from, int to) {
  return static_cast<uint32_t>(from) * kMaxNames + static_cast<uint32_t>(to);
}

int EdgeSlot(uint32_t key) {
  // Linear probe; the table never fills (kMaxNames² / 4 max live edges in
  // practice is a few hundred).
  int slot = static_cast<int>((key * 2654435761u) & (kEdgeTableSize - 1));
  while (true) {
    uint32_t cur = g_edge_keys[slot].load(std::memory_order_acquire);
    if (cur == key || cur == kEdgeEmpty) {
      return slot;
    }
    slot = (slot + 1) & (kEdgeTableSize - 1);
  }
}

bool EdgeKnown(uint32_t key) {
  return g_edge_keys[EdgeSlot(key)].load(std::memory_order_acquire) == key;
}

/// The recorded backtrace of edge (from → to), or null.
const EdgeInfo* EdgeStack(int from, int to) {
  uint32_t key = EdgeKey(from, to);
  int slot = EdgeSlot(key);
  if (g_edge_keys[slot].load(std::memory_order_acquire) == key) {
    return &g_edge_info[slot];
  }
  return nullptr;
}

bool AdjacencyHas(int from, int to) {
  return (g_adjacency[from][to / 64] >> (to % 64)) & 1;
}

/// DFS: is `target` reachable from `start` in the learned graph? Called
/// under g_registry_mu only.
bool Reachable(int start, int target) {
  uint64_t visited[kMaxNames / 64] = {};
  int stack[kMaxNames];
  int depth = 0;
  stack[depth++] = start;
  while (depth > 0) {
    int node = stack[--depth];
    if (node == target) {
      return true;
    }
    if ((visited[node / 64] >> (node % 64)) & 1) {
      continue;
    }
    visited[node / 64] |= 1ull << (node % 64);
    const int count = g_name_count.load(std::memory_order_relaxed);
    for (int next = 0; next < count; ++next) {
      if (AdjacencyHas(node, next) &&
          !((visited[next / 64] >> (next % 64)) & 1)) {
        stack[depth++] = next;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-thread state.
// ---------------------------------------------------------------------------

struct HeldLock {
  const Mutex* mu = nullptr;
  int id = -1;
  LockRank rank = LockRank::kUnranked;
  const char* name = nullptr;
};

struct ThreadState {
  HeldLock held[kMaxHeldLocks];
  int depth = 0;
  int io_allowed_depth = 0;
  bool in_validator = false;  // Re-entrancy guard (abort paths allocate).
};

thread_local ThreadState t_state;

bool RuntimeEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("LSMLAB_LOCK_RANK");
    return v == nullptr ||
           (std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0);
  }();
  return enabled;
}

void PrintStack(void* const* pcs, int depth) {
  if (depth <= 0) {
    std::fprintf(stderr, "    <no stack recorded>\n");
    return;
  }
  backtrace_symbols_fd(const_cast<void* const*>(pcs), depth, 2);
}

void PrintCurrentStack() {
  void* pcs[kMaxStackDepth];
  int depth = backtrace(pcs, kMaxStackDepth);
  PrintStack(pcs, depth);
}

void PrintHeldLocks(const ThreadState& ts) {
  std::fprintf(stderr, "  held locks (outermost first):\n");
  for (int i = 0; i < ts.depth; ++i) {
    std::fprintf(stderr, "    [%d] %s (rank %u)\n", i, ts.held[i].name,
                 static_cast<unsigned>(ts.held[i].rank));
  }
}

[[noreturn]] void Violation(const ThreadState& ts, const char* kind,
                            const char* acquiring_name, LockRank acquiring_rank,
                            const HeldLock* conflicting,
                            const EdgeInfo* reverse_edge_stack) {
  std::fprintf(stderr,
               "\n=== lock-rank violation: %s ===\n"
               "  acquiring: %s (rank %u)\n",
               kind, acquiring_name, static_cast<unsigned>(acquiring_rank));
  if (conflicting != nullptr) {
    std::fprintf(stderr, "  while holding: %s (rank %u)\n", conflicting->name,
                 static_cast<unsigned>(conflicting->rank));
  }
  PrintHeldLocks(ts);
  std::fprintf(stderr, "  acquisition stack (this thread, now):\n");
  PrintCurrentStack();
  if (reverse_edge_stack != nullptr && conflicting != nullptr) {
    std::fprintf(stderr,
                 "  opposite-order acquisition stack (%s was first taken "
                 "while holding %s here):\n",
                 conflicting->name, acquiring_name);
    PrintStack(reverse_edge_stack->stack, reverse_edge_stack->depth);
  }
  std::fprintf(stderr,
               "  (see src/util/lock_order.h for the declared hierarchy)\n");
  std::fflush(stderr);
  std::abort();
}

/// Records edge (from → to) if new; returns true when the edge was new and
/// closed a cycle (to →* from already existed).
bool RecordEdgeAndCheckCycle(int from, int to) {
  uint32_t key = EdgeKey(from, to);
  if (EdgeKnown(key)) {
    return false;
  }
  std::lock_guard<std::mutex> guard(g_registry_mu);
  int slot = EdgeSlot(key);
  if (g_edge_keys[slot].load(std::memory_order_relaxed) == key) {
    return false;  // Raced with another thread inserting the same edge.
  }
  EdgeInfo& info = g_edge_info[slot];
  info.depth = backtrace(info.stack, kMaxStackDepth);
  const bool cycle = Reachable(to, from);
  g_adjacency[from][to / 64] |= 1ull << (to % 64);
  // Publish the key last so readers only see fully recorded edges.
  g_edge_keys[slot].store(key, std::memory_order_release);
  return cycle;
}

void PushHeld(ThreadState& ts, const Mutex* mu, int id, LockRank rank,
              const char* name) {
  if (ts.depth < kMaxHeldLocks) {
    ts.held[ts.depth] = HeldLock{mu, id, rank, name};
  }
  ++ts.depth;  // Saturating records beyond the array are still counted.
}

void CheckAcquisition(ThreadState& ts, const Mutex* mu, int id, LockRank rank,
                      const char* name, bool enforce_order) {
  const int scan = ts.depth < kMaxHeldLocks ? ts.depth : kMaxHeldLocks;
  for (int i = 0; i < scan; ++i) {
    const HeldLock& h = ts.held[i];
    if (h.mu == mu) {
      Violation(ts, "self-deadlock (recursive acquisition)", name, rank, &h,
                nullptr);
    }
    if (h.id < 0 || id < 0) {
      continue;
    }
    const bool cycle = RecordEdgeAndCheckCycle(h.id, id);
    if (!enforce_order) {
      continue;  // TryLock: record for diagnostics, never abort.
    }
    if (h.rank != LockRank::kUnranked && rank != LockRank::kUnranked &&
        static_cast<uint16_t>(rank) <= static_cast<uint16_t>(h.rank)) {
      Violation(ts,
                rank == h.rank ? "equal-rank nested acquisition"
                               : "rank inversion against the declared DAG",
                name, rank, &h, EdgeStack(id, h.id));
    }
    if (cycle) {
      Violation(ts, "cycle in the learned acquired-after graph", name, rank,
                &h, EdgeStack(id, h.id));
    }
  }
}

}  // namespace

bool Enabled() { return RuntimeEnabled(); }

void OnLock(const Mutex* mu, LockRank rank, const char* name) {
  if (!RuntimeEnabled()) {
    return;
  }
  ThreadState& ts = t_state;
  if (ts.in_validator) {
    return;
  }
  ts.in_validator = true;
  const int id = IdForName(name, rank);
  CheckAcquisition(ts, mu, id, rank, name, /*enforce_order=*/true);
  PushHeld(ts, mu, id, rank, name);
  ts.in_validator = false;
}

void OnTryLockAcquired(const Mutex* mu, LockRank rank, const char* name) {
  if (!RuntimeEnabled()) {
    return;
  }
  ThreadState& ts = t_state;
  if (ts.in_validator) {
    return;
  }
  ts.in_validator = true;
  const int id = IdForName(name, rank);
  CheckAcquisition(ts, mu, id, rank, name, /*enforce_order=*/false);
  PushHeld(ts, mu, id, rank, name);
  ts.in_validator = false;
}

void OnUnlock(const Mutex* mu) {
  if (!RuntimeEnabled()) {
    return;
  }
  ThreadState& ts = t_state;
  const int scan = ts.depth < kMaxHeldLocks ? ts.depth : kMaxHeldLocks;
  // Search from the top: releases are overwhelmingly LIFO.
  for (int i = scan - 1; i >= 0; --i) {
    if (ts.held[i].mu == mu) {
      for (int j = i; j + 1 < scan; ++j) {
        ts.held[j] = ts.held[j + 1];
      }
      --ts.depth;
      return;
    }
  }
  // Unlock of a lock we never saw (acquired beyond kMaxHeldLocks, or before
  // the validator was enabled): just decrement the saturated count.
  if (ts.depth > kMaxHeldLocks) {
    --ts.depth;
  }
}

void OnCondVarWait(const Mutex* mu) {
  if (!RuntimeEnabled()) {
    return;
  }
  ThreadState& ts = t_state;
  if (ts.in_validator || ts.depth == 0 || ts.depth > kMaxHeldLocks) {
    return;
  }
  const HeldLock& top = ts.held[ts.depth - 1];
  if (top.mu != mu) {
    ts.in_validator = true;
    // Find the waited lock for the report; it must be held (REQUIRES).
    const HeldLock* waited = nullptr;
    for (int i = 0; i < ts.depth; ++i) {
      if (ts.held[i].mu == mu) {
        waited = &ts.held[i];
      }
    }
    Violation(ts, "condition wait while holding a lock ordered after it",
              waited != nullptr ? waited->name : "<unheld mutex>",
              waited != nullptr ? waited->rank : LockRank::kUnranked, &top,
              nullptr);
  }
}

void CheckIoAllowed(const char* op, const char* detail) {
  if (!RuntimeEnabled()) {
    return;
  }
  ThreadState& ts = t_state;
  if (ts.in_validator || ts.io_allowed_depth > 0) {
    return;
  }
  const int scan = ts.depth < kMaxHeldLocks ? ts.depth : kMaxHeldLocks;
  for (int i = 0; i < scan; ++i) {
    const HeldLock& h = ts.held[i];
    if (RankForbidsIo(h.rank)) {
      ts.in_validator = true;
      std::fprintf(stderr,
                   "\n=== I/O under lock: %s(%s) while holding %s (rank %u) "
                   "===\n",
                   op, detail != nullptr ? detail : "", h.name,
                   static_cast<unsigned>(h.rank));
      PrintHeldLocks(ts);
      std::fprintf(stderr, "  I/O call stack:\n");
      PrintCurrentStack();
      std::fprintf(
          stderr,
          "  (deliberate sites must open a lock_rank::IoAllowedSection "
          "with a rationale; see src/util/lock_rank.h)\n");
      std::fflush(stderr);
      std::abort();
    }
  }
}

int HeldLockCount() { return t_state.depth; }

void PushIoAllowed() { ++t_state.io_allowed_depth; }

void PopIoAllowed() { --t_state.io_allowed_depth; }

}  // namespace lsmlab::lock_rank

#endif  // LSMLAB_LOCK_RANK_CHECKS
