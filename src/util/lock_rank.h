#ifndef LSMLAB_UTIL_LOCK_RANK_H_
#define LSMLAB_UTIL_LOCK_RANK_H_

/// Runtime lock-rank validator and I/O-under-lock detector.
///
/// Every engine Mutex (util/mutex.h) carries a name and a LockRank from the
/// declared lock-order DAG in util/lock_order.h. When the validator is
/// compiled in (LSMLAB_LOCK_RANK_CHECKS — every debug/sanitizer build, see
/// the LSMLAB_LOCK_RANK CMake option), each thread keeps a stack of the
/// locks it holds and every acquisition is checked, *before* blocking,
/// against:
///
///   1. The declared DAG: the new lock's rank must be strictly greater
///      than the rank of every ranked lock already held. Equal-rank
///      nesting (two block-cache stripes, two shards' mu_) is a violation
///      — no engine path needs it, and forbidding it is what keeps the
///      N-shard topology deadlock-free without ordering shard visits.
///   2. A dynamically learned acquired-after graph: every observed
///      (held → acquired) pair is recorded with its acquisition backtrace.
///      A new edge that closes a cycle — which can only involve unranked
///      mutexes, since ranked ones are acyclic by rule 1 — aborts.
///   3. Self-deadlock: re-acquiring a mutex this thread already holds.
///
/// Violations print both acquisition stacks (the current one and the
/// recorded stack of the conflicting edge) and abort, so TSan-invisible
/// deadlock *potential* (an inversion that never races in the test run)
/// still fails the suite deterministically.
///
/// The I/O-under-lock detector rides on the same held-lock stack: Env
/// Append/Sync/Read/MultiRead paths call LSMLAB_CHECK_IO_UNDER_LOCK and
/// abort when any held lock's rank forbids I/O (RankForbidsIo). The few
/// deliberate I/O-under-lock sites (manifest writes under VersionSet::mu_,
/// WAL rotation sync under mu_) open an IoAllowedSection with a written
/// rationale; the lint pass (scripts/lint_invariants.py) enforces that the
/// rationale is a non-empty string literal.
///
/// Environment kill switch: LSMLAB_LOCK_RANK=off disables all checking at
/// startup even when compiled in (for bisecting validator overhead).

#include <cstdint>

#include "util/lock_order.h"

namespace lsmlab {

class Mutex;

namespace lock_rank {

#if defined(LSMLAB_LOCK_RANK_CHECKS)

/// True when checking is compiled in and not disabled via the
/// LSMLAB_LOCK_RANK=off environment variable. Cached after first call.
bool Enabled();

/// Pre-acquisition check + held-stack push. Called by Mutex::Lock with the
/// mutex's identity before the underlying lock() blocks. Aborts on a rank
/// inversion, a learned-graph cycle, or self-deadlock.
void OnLock(const Mutex* mu, LockRank rank, const char* name);

/// Held-stack push without ordering enforcement (TryLock success: a
/// non-blocking acquisition cannot deadlock, but the held lock must still
/// gate I/O and order later blocking acquisitions).
void OnTryLockAcquired(const Mutex* mu, LockRank rank, const char* name);

/// Held-stack pop. Tolerates non-LIFO release order.
void OnUnlock(const Mutex* mu);

/// Condition-variable wait discipline: the waited mutex must be the
/// innermost lock this thread holds. Waiting while holding a lock ordered
/// after the waited one means sleeping with a leaf lock pinned — a stall
/// (and deadlock, if the waker needs the leaf) TSan cannot see.
void OnCondVarWait(const Mutex* mu);

/// Aborts if any held lock's rank forbids I/O (RankForbidsIo) and no
/// IoAllowedSection is active on this thread. `op` and `detail` label the
/// report (e.g. "Sync", filename).
void CheckIoAllowed(const char* op, const char* detail);

/// Number of locks the calling thread currently holds (tests).
int HeldLockCount();

/// Enters/leaves the thread-local I/O-allowed scope. Use the RAII wrapper.
void PushIoAllowed();
void PopIoAllowed();

/// RAII escape hatch for the deliberate I/O-under-lock sites. The rationale
/// must be a string literal explaining why holding the lock across I/O is
/// the design rather than a bug; it is kept in the binary so a violation
/// report inside the scope can never be confused with an annotated site.
class IoAllowedSection {
 public:
  explicit IoAllowedSection(const char* rationale) : rationale_(rationale) {
    PushIoAllowed();
  }
  ~IoAllowedSection() { PopIoAllowed(); }

  IoAllowedSection(const IoAllowedSection&) = delete;
  IoAllowedSection& operator=(const IoAllowedSection&) = delete;

  const char* rationale() const { return rationale_; }

 private:
  const char* const rationale_;
};

#define LSMLAB_CHECK_IO_UNDER_LOCK(op, detail) \
  ::lsmlab::lock_rank::CheckIoAllowed((op), (detail))

#else  // !LSMLAB_LOCK_RANK_CHECKS

inline bool Enabled() { return false; }
inline int HeldLockCount() { return 0; }

/// No-op twin so annotated sites compile identically in release builds.
class IoAllowedSection {
 public:
  explicit IoAllowedSection(const char*) {}
};

#define LSMLAB_CHECK_IO_UNDER_LOCK(op, detail) \
  do {                                         \
  } while (0)

#endif  // LSMLAB_LOCK_RANK_CHECKS

}  // namespace lock_rank
}  // namespace lsmlab

#endif  // LSMLAB_UTIL_LOCK_RANK_H_
