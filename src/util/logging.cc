#include "util/logging.h"

#include <vector>

namespace lsmlab {

void Logger::Log(Level level, const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  Logv(level, format, ap);
  va_end(ap);
}

namespace {
const char* LevelName(Logger::Level level) {
  switch (level) {
    case Logger::Level::kDebug:
      return "DEBUG";
    case Logger::Level::kInfo:
      return "INFO";
    case Logger::Level::kWarn:
      return "WARN";
    case Logger::Level::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void StderrLogger::Logv(Level level, const char* format, va_list ap) {
  if (level < min_level_ || format == nullptr) {
    return;
  }
  char buf[1024];
  vsnprintf(buf, sizeof(buf), format, ap);
  MutexLock lock(&mu_);
  fprintf(out_, "[lsmlab %s] %s\n", LevelName(level), buf);
}

void CapturingLogger::Logv(Level level, const char* format, va_list ap) {
  if (format == nullptr) {
    return;
  }
  char buf[1024];
  vsnprintf(buf, sizeof(buf), format, ap);
  MutexLock lock(&mu_);
  messages_.push_back(std::string(LevelName(level)) + ": " + buf);
}

std::vector<std::string> CapturingLogger::TakeMessages() {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.swap(messages_);
  return out;
}

}  // namespace lsmlab
