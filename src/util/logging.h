#ifndef LSMLAB_UTIL_LOGGING_H_
#define LSMLAB_UTIL_LOGGING_H_

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Logger sinks diagnostic messages from the engine (flush/compaction events,
/// stall transitions). Implementations must be thread-safe.
class Logger {
 public:
  enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

  virtual ~Logger() = default;

  virtual void Logv(Level level, const char* format, va_list ap) = 0;

  void Log(Level level, const char* format, ...)
#if defined(__GNUC__)
      __attribute__((__format__(__printf__, 3, 4)))
#endif
      ;
};

/// Logger writing to a FILE* (stderr by default). Does not own the stream.
class StderrLogger : public Logger {
 public:
  explicit StderrLogger(Level min_level = Level::kInfo, FILE* out = stderr)
      : min_level_(min_level), out_(out) {}

  void Logv(Level level, const char* format, va_list ap) override;

 private:
  const Level min_level_;
  FILE* const out_;  // Serialized by mu_ (fprintf interleaving, not data).
  Mutex mu_{LockRank::kLogger, "logger.stderr.mu"};
};

/// Logger that retains messages in memory; used by tests to assert on events.
class CapturingLogger : public Logger {
 public:
  void Logv(Level level, const char* format, va_list ap) override;

  std::vector<std::string> TakeMessages();

 private:
  Mutex mu_{LockRank::kLogger, "logger.capturing.mu"};
  std::vector<std::string> messages_ GUARDED_BY(mu_);
};

#define LSMLAB_LOG(logger, level, ...)                           \
  do {                                                           \
    if ((logger) != nullptr) {                                   \
      (logger)->Log((level), __VA_ARGS__);                       \
    }                                                            \
  } while (0)

#define LSMLAB_LOG_INFO(logger, ...) \
  LSMLAB_LOG(logger, ::lsmlab::Logger::Level::kInfo, __VA_ARGS__)
#define LSMLAB_LOG_WARN(logger, ...) \
  LSMLAB_LOG(logger, ::lsmlab::Logger::Level::kWarn, __VA_ARGS__)

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_LOGGING_H_
