#ifndef LSMLAB_UTIL_MUTEX_H_
#define LSMLAB_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Annotatable mutex: a std::mutex declared as a Clang thread-safety
/// CAPABILITY so fields can be GUARDED_BY it and functions can REQUIRES it.
/// Exposes both Lock()/Unlock() (the annotated spelling used throughout the
/// engine) and lock()/unlock() (BasicLockable, so std::unique_lock and
/// std::scoped_lock still work in generic code).
///
/// Every engine mutex should be constructed with a LockRank from the
/// declared lock-order DAG (util/lock_order.h) and a stable name. In
/// debug/sanitizer builds (LSMLAB_LOCK_RANK_CHECKS) each acquisition is
/// checked by the runtime lock-rank validator (util/lock_rank.h): strict
/// rank ascent against all held locks, cycle detection over the learned
/// acquired-after graph, and I/O-under-lock detection. The default
/// constructor yields an unranked mutex (generic/test code) that still
/// participates in learned-graph cycle detection.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(LSMLAB_LOCK_RANK_CHECKS)
    lock_rank::OnLock(this, rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if defined(LSMLAB_LOCK_RANK_CHECKS)
    lock_rank::OnUnlock(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
#if defined(LSMLAB_LOCK_RANK_CHECKS)
    if (acquired) {
      lock_rank::OnTryLockAcquired(this, rank_, name_);
    }
#endif
    return acquired;
  }

  /// Teaches the analysis (and asserts nothing at runtime) that the calling
  /// thread holds this mutex. Used by functions reached only from locked
  /// contexts that the analysis cannot follow (e.g. std::function callbacks).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

  // BasicLockable, for std::unique_lock<Mutex> in generic/test code only.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = "<unranked>";
};

/// RAII critical section over a Mutex, visible to the analysis as a
/// SCOPED_CAPABILITY (the annotated replacement for std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable usable with Mutex. Unlike std::condition_variable the
/// waits name the mutex explicitly, so the analysis can check that callers
/// actually hold it (REQUIRES on the argument).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before returning.
  /// The validator checks that `mu` is the innermost lock this thread holds
  /// — sleeping while a lock ordered after `mu` stays pinned is a stall bug.
  void Wait(Mutex& mu) REQUIRES(mu) {
#if defined(LSMLAB_LOCK_RANK_CHECKS)
    lock_rank::OnCondVarWait(&mu);
#endif
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // Still locked; ownership returns to the caller.
  }

  // Note: there is deliberately no predicate overload. A predicate lambda
  // is a separate function to the thread-safety analysis, and its accesses
  // to guarded state cannot be proven against the caller's lock without an
  // aliasing assumption the analysis refuses to make. Write the explicit
  //   while (!cond) cv.Wait(mu);
  // loop instead — the analysis checks `cond`'s accesses in place.

  /// Timed wait; returns false on timeout.
  bool WaitForMicros(Mutex& mu, uint64_t micros) REQUIRES(mu) {
#if defined(LSMLAB_LOCK_RANK_CHECKS)
    lock_rank::OnCondVarWait(&mu);
#endif
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    std::cv_status result =
        cv_.wait_for(inner, std::chrono::microseconds(micros));
    inner.release();
    return result == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_MUTEX_H_
