#include "util/options.h"

#include <cstdio>

#include "util/comparator.h"

namespace lsmlab {

Status Options::Validate() const {
  if (size_ratio < 2) {
    return Status::InvalidArgument("size_ratio must be >= 2");
  }
  if (num_levels < 2) {
    return Status::InvalidArgument("num_levels must be >= 2");
  }
  if (max_write_buffer_number < 1) {
    return Status::InvalidArgument("max_write_buffer_number must be >= 1");
  }
  if (level0_file_num_compaction_trigger < 1) {
    return Status::InvalidArgument(
        "level0_file_num_compaction_trigger must be >= 1");
  }
  if (level0_slowdown_writes_trigger < level0_file_num_compaction_trigger) {
    return Status::InvalidArgument(
        "level0_slowdown_writes_trigger must be >= compaction trigger");
  }
  if (level0_stop_writes_trigger < level0_slowdown_writes_trigger) {
    return Status::InvalidArgument(
        "level0_stop_writes_trigger must be >= slowdown trigger");
  }
  if (write_buffer_size < 1024) {
    return Status::InvalidArgument("write_buffer_size must be >= 1KiB");
  }
  if (target_file_size < 1024) {
    return Status::InvalidArgument("target_file_size must be >= 1KiB");
  }
  if (filter_bits_per_key < 0.0) {
    return Status::InvalidArgument("filter_bits_per_key must be >= 0");
  }
  if (block_restart_interval < 1) {
    return Status::InvalidArgument("block_restart_interval must be >= 1");
  }
  if (max_background_compactions < 0) {
    return Status::InvalidArgument("max_background_compactions must be >= 0");
  }
  if (max_subcompactions < 1) {
    return Status::InvalidArgument("max_subcompactions must be >= 1");
  }
  if (block_cache_shards < 0 ||
      (block_cache_shards & (block_cache_shards - 1)) != 0) {
    // Power-of-two so the cache can mask instead of mod; 0 means "auto".
    return Status::InvalidArgument(
        "block_cache_shards must be 0 (auto) or a power of two");
  }
  if (kv_separation &&
      (vlog_gc_trigger_ratio <= 0.0 || vlog_gc_trigger_ratio > 1.0)) {
    return Status::InvalidArgument(
        "vlog_gc_trigger_ratio must be in (0, 1]");
  }
  if (max_background_error_retries < 0) {
    return Status::InvalidArgument(
        "max_background_error_retries must be >= 0");
  }
  if (max_background_error_retries > 0 &&
      background_error_retry_max_micros < background_error_retry_initial_micros) {
    return Status::InvalidArgument(
        "background_error_retry_max_micros must be >= the initial backoff");
  }
  if (learned_index_epsilon < 1 || learned_index_epsilon > 4096) {
    return Status::InvalidArgument(
        "learned_index_epsilon must be in [1, 4096]");
  }
  if (static_cast<int>(index_type_per_level.size()) > num_levels) {
    return Status::InvalidArgument(
        "index_type_per_level has more entries than num_levels");
  }
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (!shard_split_keys.empty()) {
    if (static_cast<int>(shard_split_keys.size()) != num_shards - 1) {
      return Status::InvalidArgument(
          "shard_split_keys must hold num_shards - 1 boundaries (or none)");
    }
    const Comparator* cmp =
        comparator != nullptr ? comparator : BytewiseComparator();
    for (size_t i = 1; i < shard_split_keys.size(); ++i) {
      if (cmp->Compare(shard_split_keys[i - 1], shard_split_keys[i]) >= 0) {
        return Status::InvalidArgument(
            "shard_split_keys must be strictly increasing");
      }
    }
  }
  return Status::OK();
}

std::string Options::DesignPointLabel() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s/T=%d/%s/%s/bpk=%.1f",
                DataLayoutName(data_layout), size_ratio,
                compaction_granularity == CompactionGranularity::kWholeLevel
                    ? "whole"
                    : FilePickPolicyName(file_pick_policy),
                filter_allocation == FilterAllocation::kMonkey ? "monkey"
                                                               : "uniform",
                filter_bits_per_key);
  std::string label(buf);
  if (index_type == IndexType::kLearnedPLR || !index_type_per_level.empty()) {
    std::snprintf(buf, sizeof(buf), "/idx=%s-e%u",
                  !index_type_per_level.empty() ? "mixed"
                                                : IndexTypeName(index_type),
                  learned_index_epsilon);
    label += buf;
  }
  return label;
}

const char* DataLayoutName(DataLayout layout) {
  switch (layout) {
    case DataLayout::kLeveling:
      return "leveling";
    case DataLayout::kTiering:
      return "tiering";
    case DataLayout::kLazyLeveling:
      return "lazy-leveling";
    case DataLayout::kOneLeveling:
      return "1-leveling";
  }
  return "unknown";
}

const char* FilePickPolicyName(FilePickPolicy policy) {
  switch (policy) {
    case FilePickPolicy::kRoundRobin:
      return "round-robin";
    case FilePickPolicy::kLeastOverlap:
      return "least-overlap";
    case FilePickPolicy::kMostTombstones:
      return "most-tombstones";
    case FilePickPolicy::kOldestFirst:
      return "oldest-first";
    case FilePickPolicy::kWidestRange:
      return "widest-range";
  }
  return "unknown";
}

const char* MemTableRepTypeName(MemTableRepType type) {
  switch (type) {
    case MemTableRepType::kSkipList:
      return "skiplist";
    case MemTableRepType::kVector:
      return "vector";
    case MemTableRepType::kHashSkipList:
      return "hash-skiplist";
    case MemTableRepType::kHashLinkList:
      return "hash-linklist";
  }
  return "unknown";
}

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kBinarySearchFence:
      return "fence";
    case IndexType::kLearnedPLR:
      return "learned-plr";
  }
  return "unknown";
}

IndexType ResolveIndexTypeForLevel(const Options& options, int level) {
  if (level >= 0 &&
      static_cast<size_t>(level) < options.index_type_per_level.size()) {
    return options.index_type_per_level[static_cast<size_t>(level)];
  }
  return options.index_type;
}

}  // namespace lsmlab
