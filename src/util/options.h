#ifndef LSMLAB_UTIL_OPTIONS_H_
#define LSMLAB_UTIL_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace lsmlab {

class Clock;
class Comparator;
class Env;
class FilterPolicy;
class Logger;
class MergeOperator;

/// Disk data layout of the LSM-tree (tutorial §2.1.2, §2.2.2). Determines
/// how many sorted runs a level may hold before a merge is forced.
enum class DataLayout {
  /// At most one run per level; every incoming run is greedily merged.
  kLeveling,
  /// Each level accumulates up to `size_ratio` runs before merging down.
  kTiering,
  /// Dostoevsky: tiering on all intermediate levels, leveling on the last.
  kLazyLeveling,
  /// RocksDB default: tiering in level 0 only, leveling in levels >= 1.
  kOneLeveling,
};

/// Granularity of a compaction job (tutorial §2.2.3).
enum class CompactionGranularity {
  /// Merge all data of the level with the next level at once.
  kWholeLevel,
  /// Pick one file at a time, amortizing the compaction I/O.
  kPartial,
};

/// Which file a partial compaction picks (tutorial §2.2.3).
enum class FilePickPolicy {
  /// Cycle through the key space (LevelDB-style).
  kRoundRobin,
  /// File with the least key-range overlap with the next level.
  kLeastOverlap,
  /// File with the highest tombstone density (delete-aware, Lethe-style).
  kMostTombstones,
  /// File least recently appended to the level ("cold" data first).
  kOldestFirst,
  /// File covering the largest key range (drains wide files early).
  kWidestRange,
};

/// How a memtable organizes entries in memory (tutorial §2.2.1; the four
/// RocksDB MemTableRep choices).
enum class MemTableRepType {
  kSkipList,
  kVector,
  kHashSkipList,
  kHashLinkList,
};

/// How Bloom-filter memory is divided among levels (tutorial §2.1.3).
enum class FilterAllocation {
  /// Same bits-per-key at every level.
  kUniform,
  /// Monkey: exponentially more bits per key at shallower levels, minimizing
  /// the expected number of superfluous I/Os for a fixed memory budget.
  kMonkey,
};

/// Per-SSTable index structure over the data blocks (tutorial §2.1.3;
/// ROADMAP item 4). SSTables are immutable, so a learned model can be
/// fitted once at build time and never retrained.
enum class IndexType {
  /// Classic binary-searched fence pointers (the pinned index block).
  kBinarySearchFence,
  /// Epsilon-bounded piecewise-linear model (PGM/PLR-style) over a monotone
  /// key-to-number transform; falls back to fence pointers per table when
  /// the keyspace defeats the transform, and per lookup on digest ties, so
  /// correctness never depends on the model.
  kLearnedPLR,
};

/// How strictly WAL — and manifest — replay treats a corrupt record
/// (RocksDB-inspired). The manifest follows the same policy because it uses
/// the same log format and the same argument applies: acked records are
/// fsynced, so a checksum failure is a torn unacked tail after a crash.
enum class WalRecoveryMode {
  /// Any reported corruption fails the open. A cleanly truncated tail (the
  /// torn-write signature the WAL format detects as EOF) is still
  /// tolerated; a checksum mismatch anywhere is not.
  kAbsoluteConsistency,
  /// Replay stops at the first corrupt record: everything before it is
  /// recovered, everything after (including later WAL files) is dropped.
  /// This is the crash-consistent prefix semantics most deployments want.
  kPointInTimeRecovery,
};

/// Statistics-selection constants for DB::GetProperty-style inspection.
struct WriteStallCause {
  static constexpr const char* kNone = "none";
  static constexpr const char* kMemtableLimit = "memtable-limit";
  static constexpr const char* kL0Stall = "l0-stall";
};

/// Options is the knob board of lsmlab: every first-order design decision
/// called out by the tutorial is an independent field here.
struct Options {
  // --- Substrate -----------------------------------------------------------
  /// Environment used for all file I/O. Defaults to the POSIX filesystem.
  Env* env = nullptr;  // nullptr means Env::Default()
  /// Clock used for TTLs and throttling. Defaults to the system clock.
  Clock* clock = nullptr;  // nullptr means SystemClock()
  /// Total order over user keys.
  const Comparator* comparator = nullptr;  // nullptr means BytewiseComparator()
  /// Destination for info logging. Null disables logging.
  std::shared_ptr<Logger> info_log;

  bool create_if_missing = true;
  bool error_if_exists = false;

  // --- In-memory component (§2.2.1) ---------------------------------------
  /// Memtable implementation.
  MemTableRepType memtable_rep = MemTableRepType::kSkipList;
  /// Bytes buffered in memory before a flush is scheduled.
  size_t write_buffer_size = 4 << 20;
  /// Number of memtables (active + immutable) tolerated before write stalls;
  /// >= 2 absorbs ingestion bursts while a flush is in flight.
  int max_write_buffer_number = 2;
  /// Bucket count for the hashed memtable representations.
  size_t memtable_hash_bucket_count = 4096;

  // --- Disk data layout (§2.1.2, §2.2.2) -----------------------------------
  DataLayout data_layout = DataLayout::kOneLeveling;
  /// Size ratio T between adjacent levels; also the run count per tiered
  /// level. The single most influential LSM tuning knob.
  int size_ratio = 10;
  /// Number of runs in L0 that triggers a flush-into-L1 compaction.
  int level0_file_num_compaction_trigger = 4;
  /// Number of runs in L0 at which writes are slowed (soft stall).
  int level0_slowdown_writes_trigger = 12;
  /// Number of runs in L0 at which writes stop (hard stall).
  int level0_stop_writes_trigger = 20;
  /// Capacity of level 1 in bytes; level i holds base * T^(i-1).
  uint64_t max_bytes_for_level_base = 16 << 20;
  /// Target size of one SSTable file.
  uint64_t target_file_size = 2 << 20;
  /// Maximum number of levels.
  int num_levels = 7;

  // --- Compaction primitives (§2.2.3, §2.2.4) ------------------------------
  CompactionGranularity compaction_granularity =
      CompactionGranularity::kPartial;
  FilePickPolicy file_pick_policy = FilePickPolicy::kLeastOverlap;
  /// Background threads shared by flushes and compactions.
  int background_threads = 1;
  /// Maximum compactions admitted concurrently by the job scheduler; jobs
  /// run together only when their key ranges and levels are disjoint.
  /// 0 means "as many as background_threads".
  int max_background_compactions = 0;
  /// Maximum key-range shards a single large compaction may be split into
  /// and executed in parallel on the background pool (subcompactions).
  /// 1 disables splitting. Only compactions writing to a leveled level are
  /// ever split: a tiered output must stay one run.
  int max_subcompactions = 1;
  /// If > 0, background disk bandwidth (flush + compaction writes) is
  /// throttled to this many bytes/sec (SILK-style; flushes request at high
  /// priority, so under contention compactions yield to them).
  uint64_t compaction_rate_limit_bytes_per_sec = 0;
  /// FADE (Lethe): if > 0, a file whose oldest tombstone is older than this
  /// many microseconds becomes the top compaction priority, bounding delete
  /// persistence latency.
  uint64_t tombstone_ttl_micros = 0;
  /// Readahead window for compaction input readers, so merge work overlaps
  /// the sequential input reads. 0 disables compaction readahead.
  size_t compaction_readahead_bytes = 1 << 20;

  // --- Read path (§2.1.3) ---------------------------------------------------
  /// Point-query filter; nullptr disables filtering.
  std::shared_ptr<const FilterPolicy> filter_policy;
  /// How filter memory is split across levels.
  FilterAllocation filter_allocation = FilterAllocation::kUniform;
  /// Bits per key for the filter (average across tree for kMonkey).
  double filter_bits_per_key = 10.0;
  /// Block size for SSTable data blocks.
  size_t block_size = 4096;
  /// Restart interval for prefix compression within a block.
  int block_restart_interval = 16;
  /// Capacity in bytes of the shared block cache; 0 disables caching.
  size_t block_cache_capacity = 8 << 20;
  /// Lock stripes of the block cache. Must be a power of two (mask-indexed);
  /// 0 picks a default scaled to std::thread::hardware_concurrency, so
  /// concurrent readers rarely contend on one shard mutex.
  int block_cache_shards = 0;
  /// Re-warm block cache with the output of a compaction (Leaper-inspired).
  bool cache_rewarm_after_compaction = false;
  /// Verify block checksums whenever a table file is read (index, filter,
  /// properties, and data blocks). Per-read ReadOptions::verify_checksums
  /// additionally forces checksumming of data blocks for that read only.
  bool verify_checksums = false;
  /// Index structure new SSTables are built with. Existing tables keep the
  /// index they were written with; readers dispatch per table, so mixed
  /// trees (e.g. after changing this and reopening) are fully supported.
  IndexType index_type = IndexType::kBinarySearchFence;
  /// Error bound of the kLearnedPLR model: a prediction is at most this many
  /// blocks away from the true block for every fitted fence pointer. Larger
  /// epsilon -> fewer segments (smaller model) but a wider probe window.
  uint32_t learned_index_epsilon = 8;
  /// Per-level override of index_type: entry i applies to tables written for
  /// level i; levels past the end of the vector use index_type. Lets the
  /// tuner mix, e.g. fence pointers at L0 (short-lived runs, build cost
  /// dominates) and learned indexes at deep levels (long-lived runs, index
  /// residency dominates). Empty applies index_type everywhere.
  std::vector<IndexType> index_type_per_level;

  // --- Read-modify-write (§2.2.6) -------------------------------------------
  /// Combines merge operands with base values; required to use DB::Merge.
  std::shared_ptr<const MergeOperator> merge_operator;

  // --- Durability ----------------------------------------------------------
  /// Write-ahead logging; disable only for bulk loads that can be redone.
  bool enable_wal = true;
  /// fsync WAL on every write (vs. on flush only).
  bool sync_wal = false;
  /// How WAL replay reacts to a corrupt record (DESIGN.md, "Failure model
  /// & recovery").
  WalRecoveryMode wal_recovery_mode = WalRecoveryMode::kPointInTimeRecovery;

  // --- Background-error recovery -------------------------------------------
  /// How many times a failed flush or compaction (a *soft* error: nothing
  /// partially published) is retried with capped exponential backoff before
  /// being promoted to a hard error. 0 restores the old sticky behavior:
  /// the first background failure poisons the DB until Resume()/reopen.
  int max_background_error_retries = 6;
  /// Backoff before the first retry; doubles per attempt.
  uint64_t background_error_retry_initial_micros = 1000;
  /// Backoff cap.
  uint64_t background_error_retry_max_micros = 200000;

  // --- Range sharding (ROADMAP item 1) --------------------------------------
  /// Number of range-partitioned shards the DB is split into. Each shard is
  /// an independent LSM engine (own WAL, memtables, version set, background
  /// scheduling) behind one facade; process-wide resources (block cache,
  /// table cache, thread pool, rate limiter, statistics) are shared. 1 (the
  /// default) is the classic single-engine layout, byte-for-byte unchanged.
  /// The topology is fixed at creation (persisted in a SHARDS file) and
  /// wins over these options on reopen.
  int num_shards = 1;
  /// Shard key-range boundaries: shard k serves [shard_split_keys[k-1],
  /// shard_split_keys[k]). Must hold num_shards - 1 strictly increasing
  /// keys, or be empty to split the keyspace uniformly by first byte.
  std::vector<std::string> shard_split_keys;

  // --- Key-value separation (§2.2.2, WiscKey) -------------------------------
  /// If true, values >= kv_separation_threshold bytes are stored in a value
  /// log; the LSM keeps (key -> log pointer).
  bool kv_separation = false;
  size_t kv_separation_threshold = 128;
  /// Garbage ratio of the value log that triggers value-log GC.
  double vlog_gc_trigger_ratio = 0.5;

  /// Validates cross-field consistency (e.g. stall thresholds ordered).
  Status Validate() const;

  /// One-line description of the design point, for bench labelling.
  std::string DesignPointLabel() const;
};

/// Per-read options.
struct ReadOptions {
  /// Verify block checksums on read.
  bool verify_checksums = false;
  /// Populate the block cache with blocks read by this operation.
  bool fill_cache = true;
  /// If nonzero, read at this sequence number (snapshot read).
  uint64_t snapshot_seqno = 0;
  /// MultiGet only: collect the batch's candidate data-block reads after
  /// the memtable+filter pass into one Env::MultiRead submission instead of
  /// per-key serial reads (DESIGN.md, "Batched I/O"). Off restores the
  /// serial walk — the A/B baseline of experiment A6.
  bool batched_io = true;
  /// Iterators only: ceiling of the per-iterator readahead window. Data
  /// blocks are fetched through a buffer that doubles from one block up to
  /// this many bytes while the scan stays sequential. 0 disables readahead
  /// (every block is its own device read).
  size_t readahead_bytes = 256 << 10;
};

/// Per-write options.
struct WriteOptions {
  /// If true, fsync the WAL before acknowledging the write.
  bool sync = false;
  /// If true, never block on write stalls; return Status::Busy instead.
  bool no_slowdown = false;
};

const char* DataLayoutName(DataLayout layout);
const char* FilePickPolicyName(FilePickPolicy policy);
const char* MemTableRepTypeName(MemTableRepType type);
const char* IndexTypeName(IndexType type);

/// The index type tables written for `level` get, honouring the per-level
/// override (entries past the vector's end fall back to index_type).
IndexType ResolveIndexTypeForLevel(const Options& options, int level);

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_OPTIONS_H_
