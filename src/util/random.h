#ifndef LSMLAB_UTIL_RANDOM_H_
#define LSMLAB_UTIL_RANDOM_H_

#include <cstdint>

namespace lsmlab {

/// A small, fast, deterministic PRNG (xorshift64*). Deterministic seeds keep
/// workloads and property tests reproducible across runs and machines.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x2545f4914f6cdd1dull : seed) {}

  uint64_t Next64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Returns true with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Skewed: picks "base" uniformly from [0, max_log] and returns a uniform
  /// value in [0, 2^base). Favors small numbers.
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(static_cast<uint64_t>(max_log) + 1));
  }

 private:
  uint64_t state_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_RANDOM_H_
