#include "util/rate_limiter.h"

#include <algorithm>

namespace lsmlab {

namespace {
// Refill granularity; shorter intervals give smoother throttling.
constexpr uint64_t kRefillIntervalMicros = 10 * 1000;
}  // namespace

RateLimiter::RateLimiter(uint64_t bytes_per_second, Clock* clock)
    : clock_(clock),
      bytes_per_second_(bytes_per_second),
      available_bytes_(0),
      last_refill_micros_(clock->NowMicros()) {}

void RateLimiter::Refill(uint64_t now_micros) {
  if (now_micros <= last_refill_micros_) {
    return;
  }
  double elapsed_sec =
      static_cast<double>(now_micros - last_refill_micros_) / 1e6;
  double cap = static_cast<double>(bytes_per_second_) *
               (static_cast<double>(kRefillIntervalMicros) / 1e6);
  available_bytes_ = std::min(
      available_bytes_ + elapsed_sec * static_cast<double>(bytes_per_second_),
      std::max(cap, 1.0));
  last_refill_micros_ = now_micros;
}

void RateLimiter::Request(uint64_t bytes, bool high_priority) {
  // Explicit Lock/Unlock (not MutexLock): the debt sleep below drops the
  // mutex mid-function, which a scoped guard cannot express to the analysis.
  mu_.Lock();
  total_bytes_through_ += bytes;
  if (bytes_per_second_ == 0) {
    mu_.Unlock();
    return;
  }
  if (!high_priority) {
    // Yield to any flush currently paying off its debt; compactions take
    // tokens only once the high-priority traffic is through.
    while (high_priority_waiters_ != 0 && bytes_per_second_ != 0) {
      cv_.Wait(mu_);
    }
    if (bytes_per_second_ == 0) {
      mu_.Unlock();
      return;
    }
  }
  Refill(clock_->NowMicros());
  // Debt model: take the tokens immediately (possibly going negative) and
  // sleep off the deficit. This throttles the average rate without looping,
  // so single requests larger than the bucket cannot deadlock.
  available_bytes_ -= static_cast<double>(bytes);
  if (available_bytes_ < 0) {
    uint64_t wait_micros = static_cast<uint64_t>(
        -available_bytes_ / static_cast<double>(bytes_per_second_) * 1e6);
    uint64_t rate = bytes_per_second_;
    if (high_priority) {
      ++high_priority_waiters_;
    }
    mu_.Unlock();
    clock_->SleepForMicros(wait_micros);
    mu_.Lock();
    if (high_priority) {
      --high_priority_waiters_;
      if (high_priority_waiters_ == 0) {
        cv_.SignalAll();
      }
    }
    // Repay the debt for the time slept (Refill caps positive balance only).
    if (bytes_per_second_ == rate) {
      available_bytes_ +=
          static_cast<double>(wait_micros) / 1e6 * static_cast<double>(rate);
      last_refill_micros_ = clock_->NowMicros();
    }
  }
  mu_.Unlock();
}

void RateLimiter::SetBytesPerSecond(uint64_t bytes_per_second) {
  {
    MutexLock lock(&mu_);
    bytes_per_second_ = bytes_per_second;
    last_refill_micros_ = clock_->NowMicros();
  }
  cv_.SignalAll();
}

uint64_t RateLimiter::bytes_per_second() const {
  MutexLock lock(&mu_);
  return bytes_per_second_;
}

uint64_t RateLimiter::total_bytes_through() const {
  MutexLock lock(&mu_);
  return total_bytes_through_;
}

}  // namespace lsmlab
