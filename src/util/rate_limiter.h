#ifndef LSMLAB_UTIL_RATE_LIMITER_H_
#define LSMLAB_UTIL_RATE_LIMITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/clock.h"

namespace lsmlab {

/// Token-bucket byte rate limiter used to throttle compaction I/O (SILK-style
/// bandwidth scheduling, tutorial §2.2.3). Thread-safe. Flush traffic bypasses
/// the limiter entirely; only compactions call Request().
class RateLimiter {
 public:
  /// `bytes_per_second` == 0 means unlimited.
  RateLimiter(uint64_t bytes_per_second, Clock* clock);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `bytes` may proceed under the configured rate.
  void Request(uint64_t bytes);

  /// Dynamically adjusts the rate (0 = unlimited). Wakes all waiters.
  void SetBytesPerSecond(uint64_t bytes_per_second);

  uint64_t bytes_per_second() const;

  /// Total bytes that have passed through the limiter.
  uint64_t total_bytes_through() const;

 private:
  void Refill(uint64_t now_micros);

  Clock* const clock_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t bytes_per_second_;
  // Token bucket: capacity is one refill interval's worth of bytes.
  double available_bytes_;
  uint64_t last_refill_micros_;
  uint64_t total_bytes_through_ = 0;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_RATE_LIMITER_H_
