#ifndef LSMLAB_UTIL_RATE_LIMITER_H_
#define LSMLAB_UTIL_RATE_LIMITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/clock.h"

namespace lsmlab {

/// Token-bucket byte rate limiter used to cap background I/O (SILK-style
/// bandwidth scheduling, tutorial §2.2.3). Thread-safe. Both flushes and
/// compactions charge the same bucket so the cap covers total background
/// bandwidth, but flush traffic requests at high priority: while a
/// high-priority request is paying off its debt, low-priority requesters
/// queue behind it instead of competing for tokens.
class RateLimiter {
 public:
  /// `bytes_per_second` == 0 means unlimited.
  RateLimiter(uint64_t bytes_per_second, Clock* clock);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `bytes` may proceed under the configured rate.
  /// High-priority requests (flushes) are served ahead of low-priority ones
  /// (compactions) when both are throttled.
  void Request(uint64_t bytes, bool high_priority = false);

  /// Dynamically adjusts the rate (0 = unlimited). Wakes all waiters.
  void SetBytesPerSecond(uint64_t bytes_per_second);

  uint64_t bytes_per_second() const;

  /// Total bytes that have passed through the limiter.
  uint64_t total_bytes_through() const;

 private:
  void Refill(uint64_t now_micros);

  Clock* const clock_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t bytes_per_second_;
  // Token bucket: capacity is one refill interval's worth of bytes.
  double available_bytes_;
  uint64_t last_refill_micros_;
  uint64_t total_bytes_through_ = 0;
  /// High-priority requests currently sleeping off their debt; low-priority
  /// requests wait until this drops to zero before taking tokens.
  int high_priority_waiters_ = 0;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_RATE_LIMITER_H_
