#ifndef LSMLAB_UTIL_RATE_LIMITER_H_
#define LSMLAB_UTIL_RATE_LIMITER_H_

#include <cstdint>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Token-bucket byte rate limiter used to cap background I/O (SILK-style
/// bandwidth scheduling, tutorial §2.2.3). Thread-safe. Both flushes and
/// compactions charge the same bucket so the cap covers total background
/// bandwidth, but flush traffic requests at high priority: while a
/// high-priority request is paying off its debt, low-priority requesters
/// queue behind it instead of competing for tokens.
class RateLimiter {
 public:
  /// `bytes_per_second` == 0 means unlimited.
  RateLimiter(uint64_t bytes_per_second, Clock* clock);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `bytes` may proceed under the configured rate.
  /// High-priority requests (flushes) are served ahead of low-priority ones
  /// (compactions) when both are throttled.
  void Request(uint64_t bytes, bool high_priority = false) EXCLUDES(mu_);

  /// Dynamically adjusts the rate (0 = unlimited). Wakes all waiters.
  void SetBytesPerSecond(uint64_t bytes_per_second) EXCLUDES(mu_);

  uint64_t bytes_per_second() const EXCLUDES(mu_);

  /// Total bytes that have passed through the limiter.
  uint64_t total_bytes_through() const EXCLUDES(mu_);

 private:
  void Refill(uint64_t now_micros) REQUIRES(mu_);

  Clock* const clock_;
  mutable Mutex mu_{LockRank::kRateLimiter, "rate_limiter.mu"};
  CondVar cv_;
  uint64_t bytes_per_second_ GUARDED_BY(mu_);
  // Token bucket: capacity is one refill interval's worth of bytes.
  double available_bytes_ GUARDED_BY(mu_);
  uint64_t last_refill_micros_ GUARDED_BY(mu_);
  uint64_t total_bytes_through_ GUARDED_BY(mu_) = 0;
  /// High-priority requests currently sleeping off their debt; low-priority
  /// requests wait until this drops to zero before taking tokens.
  int high_priority_waiters_ GUARDED_BY(mu_) = 0;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_RATE_LIMITER_H_
