#ifndef LSMLAB_UTIL_STATUS_H_
#define LSMLAB_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace lsmlab {

/// Status reports the outcome of an operation. Success is represented by the
/// cheap-to-copy OK state; errors carry a code and a message. lsmlab does not
/// use exceptions: every fallible public API returns a Status (or Result<T>).
/// [[nodiscard]]: silently dropping an error turns an I/O failure into data
/// loss, so every caller must at least inspect ok(). Sites that genuinely
/// cannot act on a failure say so with an explicit cast to void.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kAborted = 7,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg,
                                const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }
  static Status Aborted(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kAborted, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }

  /// Human-readable form, e.g. "IO error: <msg>".
  std::string ToString() const;

 private:
  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

/// Result<T> couples a Status with a value; the value is only meaningful when
/// the status is OK. This avoids output parameters for value-producing APIs.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)), value_() {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_STATUS_H_
