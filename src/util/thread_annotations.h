#ifndef LSMLAB_UTIL_THREAD_ANNOTATIONS_H_
#define LSMLAB_UTIL_THREAD_ANNOTATIONS_H_

/// Wrappers around Clang's thread-safety attributes (-Wthread-safety).
///
/// These make the locking protocol a machine-checked artifact: every field
/// that must be accessed under a mutex is tagged GUARDED_BY(mu), every
/// helper that assumes the lock is held is tagged REQUIRES(mu), and the
/// build (under clang, see CMakeLists.txt and the CI `thread-safety` job)
/// turns any violation into a compile error instead of a flaky TSan repro.
///
/// Under compilers without the attributes (GCC) every macro expands to
/// nothing, so the annotations are zero-cost documentation there; the CI
/// clang job is what keeps them honest. Conventions are documented in
/// DESIGN.md ("Locking discipline").

#if defined(__clang__) && defined(__has_attribute)
#define LSMLAB_TSA(x) __attribute__((x))
#else
#define LSMLAB_TSA(x)  // no-op
#endif

/// Declares a type to be a capability (lockable). Applied to Mutex.
#define CAPABILITY(x) LSMLAB_TSA(capability(x))

/// Declares an RAII type whose lifetime equals a critical section.
#define SCOPED_CAPABILITY LSMLAB_TSA(scoped_lockable)

/// Field may only be read or written while holding the given mutex.
#define GUARDED_BY(x) LSMLAB_TSA(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) LSMLAB_TSA(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) LSMLAB_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) LSMLAB_TSA(acquired_after(__VA_ARGS__))

/// Function requires the mutex to be held by the caller (and does not
/// release it). The `...Locked()` naming convention maps to this.
#define REQUIRES(...) LSMLAB_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) LSMLAB_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the mutex itself.
#define ACQUIRE(...) LSMLAB_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) LSMLAB_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) LSMLAB_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) LSMLAB_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) LSMLAB_TSA(release_generic_capability(__VA_ARGS__))

/// Function may acquire the mutex; the boolean result says whether it did.
#define TRY_ACQUIRE(...) LSMLAB_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  LSMLAB_TSA(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the mutex held (it acquires it itself;
/// catches self-deadlock).
#define EXCLUDES(...) LSMLAB_TSA(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the mutex; teaches the
/// analysis the fact without acquiring.
#define ASSERT_CAPABILITY(x) LSMLAB_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) LSMLAB_TSA(assert_shared_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define RETURN_CAPABILITY(x) LSMLAB_TSA(lock_returned(x))

/// Escape hatch for code whose safety argument the analysis cannot see
/// (e.g. leader-exclusivity protocols). Always pair with a comment saying
/// why it is safe. Not permitted in src/db/, src/version/, src/compaction/.
#define NO_THREAD_SAFETY_ANALYSIS LSMLAB_TSA(no_thread_safety_analysis)

#endif  // LSMLAB_UTIL_THREAD_ANNOTATIONS_H_
