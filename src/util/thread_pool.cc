#include "util/thread_pool.h"

#include <cassert>

namespace lsmlab {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

std::deque<std::function<void()>>* ThreadPool::QueueFor(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return &high_queue_;
    case Priority::kMedium:
      return &medium_queue_;
    case Priority::kLow:
      return &low_queue_;
  }
  return &low_queue_;
}

void ThreadPool::Schedule(std::function<void()> task, Priority priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return;
    }
    QueueFor(priority)->push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TryRunTask(Priority priority) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto* queue = QueueFor(priority);
    if (queue->empty()) {
      return false;
    }
    task = std::move(queue->front());
    queue->pop_front();
    ++running_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    if (high_queue_.empty() && medium_queue_.empty() && low_queue_.empty() &&
        running_ == 0) {
      idle_cv_.notify_all();
    }
  }
  return true;
}

void ThreadPool::WaitForIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return high_queue_.empty() && medium_queue_.empty() &&
           low_queue_.empty() && running_ == 0;
  });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_queue_.size() + medium_queue_.size() + low_queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return shutting_down_ || !high_queue_.empty() ||
             !medium_queue_.empty() || !low_queue_.empty();
    });
    if (shutting_down_ && high_queue_.empty() && medium_queue_.empty() &&
        low_queue_.empty()) {
      return;
    }
    std::function<void()> task;
    if (!high_queue_.empty()) {
      task = std::move(high_queue_.front());
      high_queue_.pop_front();
    } else if (!medium_queue_.empty()) {
      task = std::move(medium_queue_.front());
      medium_queue_.pop_front();
    } else {
      task = std::move(low_queue_.front());
      low_queue_.pop_front();
    }
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    if (high_queue_.empty() && medium_queue_.empty() && low_queue_.empty() &&
        running_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace lsmlab
