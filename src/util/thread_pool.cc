#include "util/thread_pool.h"

#include <cassert>

namespace lsmlab {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_cv_.SignalAll();
  for (auto& t : threads_) {
    t.join();
  }
}

std::deque<std::function<void()>>* ThreadPool::QueueFor(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return &high_queue_;
    case Priority::kMedium:
      return &medium_queue_;
    case Priority::kLow:
      return &low_queue_;
  }
  return &low_queue_;
}

bool ThreadPool::AllQueuesEmpty() const {
  return high_queue_.empty() && medium_queue_.empty() && low_queue_.empty();
}

void ThreadPool::Schedule(std::function<void()> task, Priority priority) {
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      return;
    }
    QueueFor(priority)->push_back(std::move(task));
  }
  work_cv_.Signal();
}

bool ThreadPool::TryRunTask(Priority priority) {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    auto* queue = QueueFor(priority);
    if (queue->empty()) {
      return false;
    }
    task = std::move(queue->front());
    queue->pop_front();
    ++running_;
  }
  task();
  {
    MutexLock lock(&mu_);
    --running_;
    if (AllQueuesEmpty() && running_ == 0) {
      idle_cv_.SignalAll();
    }
  }
  return true;
}

void ThreadPool::WaitForIdle() {
  MutexLock lock(&mu_);
  while (!(AllQueuesEmpty() && running_ == 0)) {
    idle_cv_.Wait(mu_);
  }
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(&mu_);
  return high_queue_.size() + medium_queue_.size() + low_queue_.size();
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (!shutting_down_ && AllQueuesEmpty()) {
      work_cv_.Wait(mu_);
    }
    if (shutting_down_ && AllQueuesEmpty()) {
      mu_.Unlock();
      return;
    }
    std::function<void()> task;
    if (!high_queue_.empty()) {
      task = std::move(high_queue_.front());
      high_queue_.pop_front();
    } else if (!medium_queue_.empty()) {
      task = std::move(medium_queue_.front());
      medium_queue_.pop_front();
    } else {
      task = std::move(low_queue_.front());
      low_queue_.pop_front();
    }
    ++running_;
    mu_.Unlock();
    task();
    mu_.Lock();
    --running_;
    if (AllQueuesEmpty() && running_ == 0) {
      idle_cv_.SignalAll();
    }
  }
}

}  // namespace lsmlab
