#ifndef LSMLAB_UTIL_THREAD_POOL_H_
#define LSMLAB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsmlab {

/// Fixed-size background worker pool used for flushes and compactions
/// (tutorial §2.2.5). Tasks have two priorities: high-priority tasks
/// (flushes) always run before low-priority tasks (compactions), mirroring
/// the flush-first scheduling that prevents write stalls.
class ThreadPool {
 public:
  enum class Priority { kHigh, kLow };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Never blocks.
  void Schedule(std::function<void()> task,
                Priority priority = Priority::kLow);

  /// Blocks until all queued and running tasks have finished.
  void WaitForIdle();

  /// Number of tasks queued but not yet started.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> high_queue_;
  std::deque<std::function<void()>> low_queue_;
  int running_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_THREAD_POOL_H_
