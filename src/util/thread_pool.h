#ifndef LSMLAB_UTIL_THREAD_POOL_H_
#define LSMLAB_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lsmlab {

/// Fixed-size background worker pool used for flushes and compactions
/// (tutorial §2.2.5). Tasks have three priorities: flushes run at kHigh
/// (flush-first scheduling prevents write stalls), subcompaction shards at
/// kMedium (an admitted compaction should finish before new ones start),
/// and whole compaction jobs at kLow.
class ThreadPool {
 public:
  enum class Priority { kHigh, kMedium, kLow };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Never blocks.
  void Schedule(std::function<void()> task, Priority priority = Priority::kLow)
      EXCLUDES(mu_);

  /// Runs one queued task of exactly `priority` on the calling thread, if
  /// any is queued. Lets a task that blocks on other queued work (e.g. a
  /// compaction waiting for its subcompaction shards) help drain the queue
  /// instead of deadlocking when every worker is occupied.
  bool TryRunTask(Priority priority) EXCLUDES(mu_);

  /// Blocks until all queued and running tasks have finished.
  void WaitForIdle() EXCLUDES(mu_);

  /// Number of tasks queued but not yet started.
  size_t QueueDepth() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  std::deque<std::function<void()>>* QueueFor(Priority priority)
      REQUIRES(mu_);
  bool AllQueuesEmpty() const REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kThreadPool, "thread_pool.mu"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> high_queue_ GUARDED_BY(mu_);
  std::deque<std::function<void()>> medium_queue_ GUARDED_BY(mu_);
  std::deque<std::function<void()>> low_queue_ GUARDED_BY(mu_);
  int running_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // Written only by ctor/dtor.
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_THREAD_POOL_H_
