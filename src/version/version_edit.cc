#include "version/version_edit.h"

#include "util/coding.h"

namespace lsmlab {

namespace {
// Manifest record field tags.
enum Tag : uint32_t {
  kComparator = 1,
  kLogNumber = 2,
  kNextFileNumber = 3,
  kLastSequence = 4,
  kDeletedFile = 5,
  kNewFile = 6,
};
}  // namespace

void VersionEdit::Clear() {
  comparator_.clear();
  log_number_ = 0;
  next_file_number_ = 0;
  last_sequence_ = 0;
  has_comparator_ = false;
  has_log_number_ = false;
  has_next_file_number_ = false;
  has_last_sequence_ = false;
  deleted_files_.clear();
  new_files_.clear();
}

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_comparator_) {
    PutVarint32(dst, kComparator);
    PutLengthPrefixedSlice(dst, comparator_);
  }
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }
  for (const auto& [level, number] : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }
  for (const auto& [level, f] : new_files_) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, f.file_number);
    PutVarint64(dst, f.file_size);
    PutLengthPrefixedSlice(dst, f.smallest.Encode());
    PutLengthPrefixedSlice(dst, f.largest.Encode());
    PutVarint64(dst, f.num_entries);
    PutVarint64(dst, f.num_tombstones);
    PutVarint64(dst, f.creation_time_micros);
    PutVarint64(dst, f.oldest_tombstone_time_micros);
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  uint32_t tag;
  while (GetVarint32(&input, &tag)) {
    switch (tag) {
      case kComparator: {
        Slice name;
        if (!GetLengthPrefixedSlice(&input, &name)) {
          return Status::Corruption("bad comparator name in version edit");
        }
        SetComparatorName(name);
        break;
      }
      case kLogNumber:
        if (!GetVarint64(&input, &log_number_)) {
          return Status::Corruption("bad log number in version edit");
        }
        has_log_number_ = true;
        break;
      case kNextFileNumber:
        if (!GetVarint64(&input, &next_file_number_)) {
          return Status::Corruption("bad next file number in version edit");
        }
        has_next_file_number_ = true;
        break;
      case kLastSequence:
        if (!GetVarint64(&input, &last_sequence_)) {
          return Status::Corruption("bad last sequence in version edit");
        }
        has_last_sequence_ = true;
        break;
      case kDeletedFile: {
        uint32_t level;
        uint64_t number;
        if (!GetVarint32(&input, &level) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad deleted file in version edit");
        }
        deleted_files_.insert(
            std::make_pair(static_cast<int>(level), number));
        break;
      }
      case kNewFile: {
        uint32_t level;
        FileMetaData f;
        Slice smallest, largest;
        if (!GetVarint32(&input, &level) ||
            !GetVarint64(&input, &f.file_number) ||
            !GetVarint64(&input, &f.file_size) ||
            !GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest) ||
            !GetVarint64(&input, &f.num_entries) ||
            !GetVarint64(&input, &f.num_tombstones) ||
            !GetVarint64(&input, &f.creation_time_micros) ||
            !GetVarint64(&input, &f.oldest_tombstone_time_micros)) {
          return Status::Corruption("bad new file in version edit");
        }
        f.smallest.DecodeFrom(smallest);
        f.largest.DecodeFrom(largest);
        new_files_.emplace_back(static_cast<int>(level), f);
        break;
      }
      default:
        return Status::Corruption("unknown tag in version edit");
    }
  }
  // The loop exits when the next tag varint fails to parse; that is only
  // well-formed at exact end-of-input. Trailing bytes that don't form a tag
  // (e.g. a truncated varint with its continuation bit set) are damage, not
  // padding — accepting them would silently drop a suffix of the record.
  if (!input.empty()) {
    return Status::Corruption("trailing garbage in version edit");
  }
  return Status::OK();
}

}  // namespace lsmlab
