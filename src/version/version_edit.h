#ifndef LSMLAB_VERSION_VERSION_EDIT_H_
#define LSMLAB_VERSION_VERSION_EDIT_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "db/dbformat.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace lsmlab {

class TableReader;

/// Lazily resolved pin on a file's open TableReader, shared by every
/// Version (and FileMetaData copy) that references the file. The first
/// lookup resolves the reader through the sharded TableCache and publishes
/// it here; steady-state reads then copy the pin under this handle's own
/// pointer-sized lock and touch no cache shard at all — contention exists
/// only among readers of the same file, never across files. The pin dies
/// with the last Version that references the file (version GC), which is
/// what bounds its lifetime — TableCache::Evict removes only the cache's
/// own reference.
struct TableHandle {
  Mutex mu{LockRank::kTableHandle, "table_handle.mu"};
  std::shared_ptr<TableReader> reader GUARDED_BY(mu);
};

/// Metadata describing one sorted-run file. In leveled levels the files of a
/// level are disjoint and together form one run; in tiered levels (and L0)
/// each file is its own run and files may overlap.
struct FileMetaData {
  uint64_t file_number = 0;
  uint64_t file_size = 0;
  InternalKey smallest;
  InternalKey largest;
  uint64_t num_entries = 0;
  uint64_t num_tombstones = 0;
  /// Microsecond timestamp of creation; FADE derives tombstone age from the
  /// oldest_tombstone_time below.
  uint64_t creation_time_micros = 0;
  /// Creation time of the oldest ancestor run that contributed a tombstone
  /// still present in this file; 0 when the file holds no tombstones.
  uint64_t oldest_tombstone_time_micros = 0;
  /// Runtime-only reader pin (see TableHandle); never serialized. Assigned
  /// by VersionSetBuilder::Build, so every file in an installed Version has
  /// one, and copies of the metadata share it.
  std::shared_ptr<TableHandle> table_handle;
};

/// A delta between two versions of the tree, serialized as one manifest
/// record. Replaying all edits reconstructs the live file set exactly.
class VersionEdit {
 public:
  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFileNumber(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }

  void AddFile(int level, const FileMetaData& file) {
    new_files_.emplace_back(level, file);
  }
  void RemoveFile(int level, uint64_t file_number) {
    deleted_files_.insert(std::make_pair(level, file_number));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  // Accessors used by VersionSet during apply/recover.
  const std::vector<std::pair<int, FileMetaData>>& new_files() const {
    return new_files_;
  }
  const std::set<std::pair<int, uint64_t>>& deleted_files() const {
    return deleted_files_;
  }
  bool has_comparator() const { return has_comparator_; }
  const std::string& comparator() const { return comparator_; }
  bool has_log_number() const { return has_log_number_; }
  uint64_t log_number() const { return log_number_; }
  bool has_next_file_number() const { return has_next_file_number_; }
  uint64_t next_file_number() const { return next_file_number_; }
  bool has_last_sequence() const { return has_last_sequence_; }
  SequenceNumber last_sequence() const { return last_sequence_; }

 private:
  std::string comparator_;
  uint64_t log_number_ = 0;
  uint64_t next_file_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  bool has_comparator_ = false;
  bool has_log_number_ = false;
  bool has_next_file_number_ = false;
  bool has_last_sequence_ = false;

  std::set<std::pair<int, uint64_t>> deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace lsmlab

#endif  // LSMLAB_VERSION_VERSION_EDIT_H_
